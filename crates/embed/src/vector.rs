//! Dense-vector primitives.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product accumulated in 64 independent lanes.
///
/// [`dot`] folds into a single accumulator, which pins LLVM to a scalar
/// dependency chain (float addition is not reassociable, so the compiler
/// may not vectorize it). This variant accumulates each `i mod 64` lane
/// separately and reduces pairwise at the end — the explicit reassociation
/// lets the loop compile to wide SIMD with enough independent accumulator
/// chains to hide add latency, and is several times faster on
/// 256-dimension embeddings. The summation order *differs* from [`dot`],
/// so results may differ in the last bits; the k-NN indexes use this
/// function exclusively (for both stored norms and query scans), so all
/// distances they report are internally consistent.
///
/// The result is identical on every CPU: on `x86_64` with AVX2 the same
/// lane algorithm is compiled for the wider units (runtime-detected once),
/// and because each lane performs the same mul-then-add sequence — Rust
/// never contracts to FMA — the bits cannot differ between the paths.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_unrolled: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        return unsafe { dot_lanes_avx2(a, b) };
    }
    dot_lanes(a, b)
}

/// Dot `a` against many vectors in one call: `out[i] = dot_unrolled(a, bs[i])`.
///
/// Bit-identical to calling [`dot_unrolled`] per pair (same lane
/// arithmetic), but the AVX2 dispatch happens once per *call* instead of
/// once per pair — the k-NN scans call this once per stored row per query
/// tile, keeping the per-candidate cost to pure arithmetic.
///
/// # Panics
/// Panics if any `bs[i]` length differs from `a`, or if
/// `out.len() != bs.len()`.
pub fn dot_unrolled_many(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(
        bs.len(),
        out.len(),
        "dot_unrolled_many: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { dot_many_avx2(a, bs, out) };
        return;
    }
    dot_many_core(a, bs, out);
}

#[inline(always)]
fn dot_many_core(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    for (slot, b) in out.iter_mut().zip(bs) {
        assert_eq!(a.len(), b.len(), "dot_unrolled_many: dimension mismatch");
        *slot = dot_lanes(a, b);
    }
}

/// [`dot_many_core`] compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_many_avx2(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    dot_many_core(a, bs, out);
}

/// One-time runtime AVX2 detection, cached in an atomic.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = undetected, 1 = avx2, 2 = baseline.
    static AVX2: AtomicU8 = AtomicU8::new(0);
    match AVX2.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let detected = std::arch::is_x86_feature_detected!("avx2");
            AVX2.store(if detected { 1 } else { 2 }, Ordering::Relaxed);
            detected
        }
    }
}

/// The lane-accumulation kernel behind [`dot_unrolled`]; ISA-independent
/// arithmetic (64 independent lanes, pairwise reduction, scalar tail).
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 64;
    let mut acc = [0.0f32; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for lane in 0..LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let tail: f32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    let mut width = LANES / 2;
    while width > 0 {
        for lane in 0..width {
            acc[lane] += acc[lane + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// [`dot_lanes`] compiled with AVX2 enabled (the build baseline is SSE2;
/// this lets LLVM emit 8-wide `ymm` ops for the same lane arithmetic).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_lanes_avx2(a: &[f32], b: &[f32]) -> f32 {
    dot_lanes(a, b)
}

/// Integer dot product of two equal-length `u8` code vectors — the fused
/// kernel behind the IVF quantized-residual scan ([`crate::ivf`]).
///
/// Follows the same runtime-AVX2 kernel discipline as [`dot_unrolled`]:
/// one ISA-independent lane-accumulation core, compiled a second time with
/// AVX2 enabled and dispatched once per call via the cached CPU probe. The
/// arithmetic is pure integer (`u8 × u8` widened to `u32`, flushed to
/// `u64` block-wise), so the result is *exactly* identical on every CPU —
/// there is no floating-point reassociation to reason about at all.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "dot_u8: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        return unsafe { dot_u8_avx2(a, b) };
    }
    dot_u8_core(a, b)
}

/// Dot one `u8` code vector against many contiguous rows in one call:
/// `out[i] = dot_u8(a, flat[i*d..(i+1)*d])` where `d = a.len()`.
///
/// Bit-identical to calling [`dot_u8`] per row (same integer arithmetic);
/// the AVX2 dispatch happens once per *call* instead of once per row, so
/// the IVF scan pays one dispatch per probed inverted list.
///
/// # Panics
/// Panics if `flat.len() != a.len() * out.len()`.
pub fn dot_u8_many(a: &[u8], flat: &[u8], out: &mut [u64]) {
    let dims = a.len();
    assert_eq!(
        flat.len(),
        dims * out.len(),
        "dot_u8_many: flat buffer length mismatch"
    );
    if dims == 0 {
        out.fill(0);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { dot_u8_many_avx2(a, flat, out) };
        return;
    }
    dot_u8_many_core(a, flat, out);
}

#[inline(always)]
fn dot_u8_many_core(a: &[u8], flat: &[u8], out: &mut [u64]) {
    let dims = a.len();
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = dot_u8_core(a, &flat[i * dims..(i + 1) * dims]);
    }
}

/// [`dot_u8_many_core`] with the explicit AVX2 row kernel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_many_avx2(a: &[u8], flat: &[u8], out: &mut [u64]) {
    let dims = a.len();
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = unsafe { dot_u8_avx2(a, &flat[i * dims..(i + 1) * dims]) };
    }
}

/// The lane-accumulation kernel behind [`dot_u8`]: 16 independent `u32`
/// lanes of widened `u8` products, flushed into a `u64` total every
/// [`U8_BLOCK`] elements so the `u32` lanes can never overflow regardless
/// of dimensionality (each product is at most `255² = 65 025`, and a lane
/// absorbs at most `U8_BLOCK / 16` of them between flushes).
#[inline(always)]
fn dot_u8_core(a: &[u8], b: &[u8]) -> u64 {
    const LANES: usize = 16;
    let mut total = 0u64;
    let mut blocks_a = a.chunks(U8_BLOCK);
    let mut blocks_b = b.chunks(U8_BLOCK);
    for (ba, bb) in (&mut blocks_a).zip(&mut blocks_b) {
        let mut acc = [0u32; LANES];
        let mut chunks_a = ba.chunks_exact(LANES);
        let mut chunks_b = bb.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            for lane in 0..LANES {
                acc[lane] += u32::from(ca[lane]) * u32::from(cb[lane]);
            }
        }
        let tail: u64 = chunks_a
            .remainder()
            .iter()
            .zip(chunks_b.remainder())
            .map(|(x, y)| u64::from(*x) * u64::from(*y))
            .sum();
        total += acc.iter().map(|&x| u64::from(x)).sum::<u64>() + tail;
    }
    total
}

/// Flush interval for [`dot_u8_core`]'s `u32` lanes: `16 384 / 16` lane
/// entries × `65 025` max product ≈ `6.7 × 10⁷`, comfortably inside `u32`.
const U8_BLOCK: usize = 16 * 1024;

/// Explicit AVX2 kernel behind [`dot_u8`]: zero-extend 16 `u8`s of each
/// operand into `i16` lanes and let `vpmaddwd` multiply and pair-sum them
/// into `i32` lanes. Both operands are ≤ 255, so the signed 16-bit
/// multiply is exact (max product `65 025`) and each pair-sum is at most
/// `130 050`; lanes flush into the `u64` total every [`U8_BLOCK`]
/// elements (≤ 1024 pair-sums per lane per block, far below `u32`
/// overflow). Pure integer arithmetic: the result equals
/// [`dot_u8_core`]'s exactly on every input — recompiling the widening
/// `u8 → u32` core under AVX2 left LLVM with scalar widening multiplies
/// at ~3.5 GB/s, while this form runs at memory bandwidth.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_avx2(a: &[u8], b: &[u8]) -> u64 {
    use core::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut total = 0u64;
    let mut i = 0usize;
    while i + 16 <= n {
        let block_end = n.min(i + U8_BLOCK);
        let mut acc = _mm256_setzero_si256();
        while i + 16 <= block_end {
            // SAFETY: `i + 16 <= n` holds for both equal-length slices.
            let va = unsafe { _mm_loadu_si128(a.as_ptr().add(i).cast()) };
            let vb = unsafe { _mm_loadu_si128(b.as_ptr().add(i).cast()) };
            let wa = _mm256_cvtepu8_epi16(va);
            let wb = _mm256_cvtepu8_epi16(vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
            i += 16;
        }
        let mut lanes = [0u32; 8];
        // SAFETY: `lanes` is exactly 32 bytes.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
        total += lanes.iter().map(|&x| u64::from(x)).sum::<u64>();
    }
    for (&x, &y) in a[i..].iter().zip(&b[i..]) {
        total += u64::from(x) * u64::from(y);
    }
    total
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield `0.0`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: dimension mismatch");
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize a vector to unit L2 norm in place; zero vectors are unchanged.
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_dot_on_exact_values() {
        // Small integers are exactly representable, so lane reassociation
        // cannot change the sum: both paths must agree to the bit.
        for n in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 256] {
            let a: Vec<f32> = (0..n).map(|i| (i % 11) as f32 - 5.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
            assert_eq!(dot_unrolled(&a, &b), dot(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn dot_unrolled_close_to_dot_on_fractions() {
        let a: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..300).map(|i| (i as f32 * 0.61).cos()).collect();
        assert!((dot_unrolled(&a, &b) - dot(&a, &b)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_unrolled_dimension_mismatch_panics() {
        dot_unrolled(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_u8_matches_naive_sum() {
        for n in [0usize, 1, 15, 16, 17, 255, 256, 1000] {
            let a: Vec<u8> = (0..n).map(|i| (i * 37 % 256) as u8).collect();
            let b: Vec<u8> = (0..n).map(|i| (i * 91 + 13) as u8).collect();
            let naive: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| u64::from(*x) * u64::from(*y))
                .sum();
            assert_eq!(dot_u8(&a, &b), naive, "n = {n}");
        }
    }

    #[test]
    fn dot_u8_saturated_codes_do_not_overflow() {
        // Worst case: every product is 255² across a block boundary.
        let n = U8_BLOCK + 17;
        let a = vec![255u8; n];
        assert_eq!(dot_u8(&a, &a), 65_025 * n as u64);
    }

    #[test]
    fn dot_u8_many_matches_per_row() {
        let dims = 7;
        let a: Vec<u8> = (0..dims).map(|i| (i * 31) as u8).collect();
        let flat: Vec<u8> = (0..dims * 5).map(|i| (i * 3 + 1) as u8).collect();
        let mut out = vec![0u64; 5];
        dot_u8_many(&a, &flat, &mut out);
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got, dot_u8(&a, &flat[i * dims..(i + 1) * dims]));
        }
        // Zero-dimension codes: every dot is 0.
        let mut out = vec![7u64; 3];
        dot_u8_many(&[], &[], &mut out);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "flat buffer length mismatch")]
    fn dot_u8_many_length_mismatch_panics() {
        dot_u8_many(&[1, 2], &[1, 2, 3], &mut [0u64; 2]);
    }

    #[test]
    fn l2_basic() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert!((cosine_similarity(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
