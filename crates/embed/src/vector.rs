//! Dense-vector primitives.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield `0.0`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: dimension mismatch");
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize a vector to unit L2 norm in place; zero vectors are unchanged.
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn l2_basic() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert!((cosine_similarity(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
