//! Dense-vector primitives.

/// Dot product of two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product accumulated in 64 independent lanes.
///
/// [`dot`] folds into a single accumulator, which pins LLVM to a scalar
/// dependency chain (float addition is not reassociable, so the compiler
/// may not vectorize it). This variant accumulates each `i mod 64` lane
/// separately and reduces pairwise at the end — the explicit reassociation
/// lets the loop compile to wide SIMD with enough independent accumulator
/// chains to hide add latency, and is several times faster on
/// 256-dimension embeddings. The summation order *differs* from [`dot`],
/// so results may differ in the last bits; the k-NN indexes use this
/// function exclusively (for both stored norms and query scans), so all
/// distances they report are internally consistent.
///
/// The result is identical on every CPU: on `x86_64` with AVX2 the same
/// lane algorithm is compiled for the wider units (runtime-detected once),
/// and because each lane performs the same mul-then-add sequence — Rust
/// never contracts to FMA — the bits cannot differ between the paths.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_unrolled: dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        return unsafe { dot_lanes_avx2(a, b) };
    }
    dot_lanes(a, b)
}

/// Dot `a` against many vectors in one call: `out[i] = dot_unrolled(a, bs[i])`.
///
/// Bit-identical to calling [`dot_unrolled`] per pair (same lane
/// arithmetic), but the AVX2 dispatch happens once per *call* instead of
/// once per pair — the k-NN scans call this once per stored row per query
/// tile, keeping the per-candidate cost to pure arithmetic.
///
/// # Panics
/// Panics if any `bs[i]` length differs from `a`, or if
/// `out.len() != bs.len()`.
pub fn dot_unrolled_many(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    assert_eq!(
        bs.len(),
        out.len(),
        "dot_unrolled_many: output length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support was verified at runtime.
        unsafe { dot_many_avx2(a, bs, out) };
        return;
    }
    dot_many_core(a, bs, out);
}

#[inline(always)]
fn dot_many_core(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    for (slot, b) in out.iter_mut().zip(bs) {
        assert_eq!(a.len(), b.len(), "dot_unrolled_many: dimension mismatch");
        *slot = dot_lanes(a, b);
    }
}

/// [`dot_many_core`] compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_many_avx2(a: &[f32], bs: &[&[f32]], out: &mut [f32]) {
    dot_many_core(a, bs, out);
}

/// One-time runtime AVX2 detection, cached in an atomic.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = undetected, 1 = avx2, 2 = baseline.
    static AVX2: AtomicU8 = AtomicU8::new(0);
    match AVX2.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let detected = std::arch::is_x86_feature_detected!("avx2");
            AVX2.store(if detected { 1 } else { 2 }, Ordering::Relaxed);
            detected
        }
    }
}

/// The lane-accumulation kernel behind [`dot_unrolled`]; ISA-independent
/// arithmetic (64 independent lanes, pairwise reduction, scalar tail).
#[inline(always)]
fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 64;
    let mut acc = [0.0f32; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for lane in 0..LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let tail: f32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    let mut width = LANES / 2;
    while width > 0 {
        for lane in 0..width {
            acc[lane] += acc[lane + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// [`dot_lanes`] compiled with AVX2 enabled (the build baseline is SSE2;
/// this lets LLVM emit 8-wide `ymm` ops for the same lane arithmetic).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_lanes_avx2(a: &[f32], b: &[f32]) -> f32 {
    dot_lanes(a, b)
}

/// Euclidean (L2) distance between two equal-length vectors.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l2_distance: dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield `0.0`.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: dimension mismatch");
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalize a vector to unit L2 norm in place; zero vectors are unchanged.
pub fn normalize(v: &mut [f32]) {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_dot_on_exact_values() {
        // Small integers are exactly representable, so lane reassociation
        // cannot change the sum: both paths must agree to the bit.
        for n in [0usize, 1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 256] {
            let a: Vec<f32> = (0..n).map(|i| (i % 11) as f32 - 5.0).collect();
            let b: Vec<f32> = (0..n).map(|i| (i % 7) as f32 - 3.0).collect();
            assert_eq!(dot_unrolled(&a, &b), dot(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn dot_unrolled_close_to_dot_on_fractions() {
        let a: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..300).map(|i| (i as f32 * 0.61).cos()).collect();
        assert!((dot_unrolled(&a, &b) - dot(&a, &b)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_unrolled_dimension_mismatch_panics() {
        dot_unrolled(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn l2_basic() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(l2_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert!((cosine_similarity(&a, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((dot(&v, &v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
