//! Property tests for the embedding substrate.
//!
//! The `*_parity` properties pin the PR-2 rewrite to the seed semantics:
//! the heap/flat-storage brute-force index must return **byte-identical**
//! `Neighbor` lists to a replica of the seed's materialize-all-then-sort
//! reference over random corpora, the VP-tree must agree exactly with
//! brute force, and batched queries must equal their sequential forms
//! bit-for-bit at any worker count.

use crowdprompt_embed::{
    cosine_similarity, dot_unrolled, embed_all_with_workers, knn::batch_nearest_with_workers,
    l2_distance, BruteForceIndex, Embedder, Metric, NearestNeighbors, Neighbor, NgramEmbedder,
    VpTreeIndex,
};
use proptest::prelude::*;

fn vectors(n: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, dims..=dims), 1..n)
}

/// Replica of the seed `BruteForceIndex::nearest` *algorithm*: materialize
/// one scored entry per stored vector, fully sort ascending with ties by
/// insertion index, truncate to `k` — using the same canonical per-row
/// computation as the new index (fused dot product + rank key), so any
/// divergence is attributable to the heap/flat-storage rewrite itself.
fn seed_sort_reference(
    vectors: &[Vec<f32>],
    metric: Metric,
    query: &[f32],
    k: usize,
    exclude: Option<usize>,
) -> Vec<Neighbor> {
    if k == 0 {
        return Vec::new();
    }
    let qq = dot_unrolled(query, query);
    let mut keyed: Vec<(f32, usize)> = vectors
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != exclude)
        .map(|(i, v)| {
            (
                metric.rank_key(dot_unrolled(query, v), qq, dot_unrolled(v, v)),
                i,
            )
        })
        .filter(|(key, _)| !key.is_nan())
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.truncate(k);
    keyed
        .into_iter()
        .map(|(key, index)| Neighbor {
            index,
            distance: metric.key_to_distance(key),
        })
        .collect()
}

/// Bit-level equality for neighbor lists (f32 `==` would conflate
/// distinct NaN/zero encodings; parity here means *byte-identical*).
fn assert_bit_identical(a: &[Neighbor], b: &[Neighbor]) {
    assert_eq!(a.len(), b.len(), "hit count mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index);
        assert_eq!(
            x.distance.to_bits(),
            y.distance.to_bits(),
            "distance bits differ at index {}: {} vs {}",
            x.index,
            x.distance,
            y.distance
        );
    }
}

proptest! {
    #[test]
    fn brute_force_is_byte_identical_to_seed_sort_reference(
        vs in vectors(50, 8),
        query in prop::collection::vec(-10.0f32..10.0, 8..=8),
        k in 0usize..12
    ) {
        for metric in [Metric::L2, Metric::Cosine] {
            let idx = BruteForceIndex::new(vs.clone(), metric);
            assert_bit_identical(
                &idx.nearest(&query, k),
                &seed_sort_reference(&vs, metric, &query, k, None),
            );
            // Exclusion parity: the in-scan skip must equal filtering the
            // reference.
            let exclude = vs.len() / 2;
            assert_bit_identical(
                &idx.nearest_excluding(&query, k, exclude),
                &seed_sort_reference(&vs, metric, &query, k, Some(exclude)),
            );
        }
    }

    #[test]
    fn normalized_corpora_are_byte_identical_too(
        vs in vectors(40, 6),
        query in prop::collection::vec(-1.0f32..1.0, 6..=6),
        k in 1usize..6
    ) {
        // The blocking workloads always run over unit vectors; pin that
        // regime explicitly.
        let mut vs = vs;
        for v in &mut vs {
            crowdprompt_embed::normalize(v);
        }
        let idx = BruteForceIndex::new(vs.clone(), Metric::L2);
        assert_bit_identical(
            &idx.nearest(&query, k),
            &seed_sort_reference(&vs, Metric::L2, &query, k, None),
        );
    }

    #[test]
    fn vp_tree_is_exactly_brute_force(
        vs in vectors(60, 4),
        query in prop::collection::vec(-10.0f32..10.0, 4..=4),
        k in 1usize..9
    ) {
        let brute = BruteForceIndex::new(vs.clone(), Metric::L2);
        let vp = VpTreeIndex::new(vs, Metric::L2);
        assert_bit_identical(&vp.nearest(&query, k), &brute.nearest(&query, k));
    }

    #[test]
    fn batched_queries_match_sequential_at_any_worker_count(
        vs in vectors(30, 5),
        queries in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 5..=5), 1..20),
        k in 1usize..6,
        workers in 1usize..5
    ) {
        let idx = BruteForceIndex::new(vs, Metric::L2);
        let sequential: Vec<Vec<Neighbor>> =
            queries.iter().map(|q| idx.nearest(q, k)).collect();
        // The generic chunk-per-worker driver (what VP-tree batches use).
        let batched = batch_nearest_with_workers(&idx, &queries, k, None, workers);
        prop_assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_bit_identical(b, s);
        }
        // The brute-force tiled override (multiple queries per store pass).
        let tiled = idx.nearest_many_with_workers(&queries, k, None, workers);
        for (b, s) in tiled.iter().zip(&sequential) {
            assert_bit_identical(b, s);
        }
        // The excluding forms against their sequential counterparts.
        let excludes: Vec<Option<usize>> =
            (0..queries.len()).map(|i| (i % 2 == 0).then_some(i % idx.len())).collect();
        let batched = batch_nearest_with_workers(&idx, &queries, k, Some(&excludes), workers);
        let tiled = idx.nearest_many_with_workers(&queries, k, Some(&excludes), workers);
        for (i, (b, t)) in batched.iter().zip(&tiled).enumerate() {
            let s = match excludes[i] {
                Some(x) => idx.nearest_excluding(&queries[i], k, x),
                None => idx.nearest(&queries[i], k),
            };
            assert_bit_identical(b, &s);
            assert_bit_identical(t, &s);
        }
    }

    #[test]
    fn embed_all_matches_sequential_at_any_worker_count(
        texts in prop::collection::vec("[a-z ]{0,40}", 1..40),
        workers in 1usize..5
    ) {
        let e = NgramEmbedder::ada_like();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let sequential: Vec<Vec<f32>> = refs.iter().map(|t| e.embed(t)).collect();
        let parallel = embed_all_with_workers(&e, &refs, workers);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn fused_distance_tracks_seed_l2(
        a in prop::collection::vec(-10.0f32..10.0, 12..=12),
        b in prop::collection::vec(-10.0f32..10.0, 12..=12)
    ) {
        // The fused rank-key path must agree with the seed's pairwise
        // subtraction formula up to floating-point reassociation.
        let key = Metric::L2.rank_key(
            dot_unrolled(&a, &b),
            dot_unrolled(&a, &a),
            dot_unrolled(&b, &b),
        );
        let fused = Metric::L2.key_to_distance(key);
        let seed = l2_distance(&a, &b);
        prop_assert!(
            (fused - seed).abs() < 1e-2 + seed * 1e-4,
            "fused {fused} vs seed {seed}"
        );
    }

    #[test]
    fn vp_tree_agrees_with_brute_force(
        vs in vectors(40, 6),
        query in prop::collection::vec(-10.0f32..10.0, 6..=6),
        k in 1usize..8
    ) {
        let brute = BruteForceIndex::new(vs.clone(), Metric::L2);
        let vp = VpTreeIndex::new(vs, Metric::L2);
        let a = brute.nearest(&query, k);
        let b = vp.nearest(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            // Distances must agree; indexes may differ only on exact ties.
            prop_assert!((x.distance - y.distance).abs() < 1e-4,
                "distance mismatch {} vs {}", x.distance, y.distance);
        }
    }

    #[test]
    fn nearest_distances_are_sorted(
        vs in vectors(30, 4),
        query in prop::collection::vec(-10.0f32..10.0, 4..=4)
    ) {
        let idx = BruteForceIndex::new(vs, Metric::L2);
        let hits = idx.nearest(&query, 10);
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-6);
        }
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in prop::collection::vec(-10.0f32..10.0, 8..=8),
        b in prop::collection::vec(-10.0f32..10.0, 8..=8)
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert!((s - cosine_similarity(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn l2_triangle_inequality(
        a in prop::collection::vec(-10.0f32..10.0, 5..=5),
        b in prop::collection::vec(-10.0f32..10.0, 5..=5),
        c in prop::collection::vec(-10.0f32..10.0, 5..=5)
    ) {
        prop_assert!(
            l2_distance(&a, &c) <= l2_distance(&a, &b) + l2_distance(&b, &c) + 1e-4
        );
    }

    #[test]
    fn embedder_output_is_unit_or_zero(text in ".{0,120}") {
        let e = NgramEmbedder::ada_like();
        let v = e.embed(&text);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(
            norm < 1e-6 || (norm - 1.0).abs() < 1e-4,
            "norm {norm} for {text:?}"
        );
    }

    #[test]
    fn embedding_self_similarity_is_max(text in "[a-z ]{3,80}") {
        let e = NgramEmbedder::ada_like();
        let v = e.embed(&text);
        if v.iter().any(|x| *x != 0.0) {
            prop_assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-5);
        }
    }
}
