//! Property tests for the embedding substrate.

use crowdprompt_embed::{
    cosine_similarity, l2_distance, BruteForceIndex, Embedder, Metric, NearestNeighbors,
    NgramEmbedder, VpTreeIndex,
};
use proptest::prelude::*;

fn vectors(n: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec(-10.0f32..10.0, dims..=dims),
        1..n,
    )
}

proptest! {
    #[test]
    fn vp_tree_agrees_with_brute_force(
        vs in vectors(40, 6),
        query in prop::collection::vec(-10.0f32..10.0, 6..=6),
        k in 1usize..8
    ) {
        let brute = BruteForceIndex::new(vs.clone(), Metric::L2);
        let vp = VpTreeIndex::new(vs, Metric::L2);
        let a = brute.nearest(&query, k);
        let b = vp.nearest(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            // Distances must agree; indexes may differ only on exact ties.
            prop_assert!((x.distance - y.distance).abs() < 1e-4,
                "distance mismatch {} vs {}", x.distance, y.distance);
        }
    }

    #[test]
    fn nearest_distances_are_sorted(
        vs in vectors(30, 4),
        query in prop::collection::vec(-10.0f32..10.0, 4..=4)
    ) {
        let idx = BruteForceIndex::new(vs, Metric::L2);
        let hits = idx.nearest(&query, 10);
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-6);
        }
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(
        a in prop::collection::vec(-10.0f32..10.0, 8..=8),
        b in prop::collection::vec(-10.0f32..10.0, 8..=8)
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
        prop_assert!((s - cosine_similarity(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn l2_triangle_inequality(
        a in prop::collection::vec(-10.0f32..10.0, 5..=5),
        b in prop::collection::vec(-10.0f32..10.0, 5..=5),
        c in prop::collection::vec(-10.0f32..10.0, 5..=5)
    ) {
        prop_assert!(
            l2_distance(&a, &c) <= l2_distance(&a, &b) + l2_distance(&b, &c) + 1e-4
        );
    }

    #[test]
    fn embedder_output_is_unit_or_zero(text in ".{0,120}") {
        let e = NgramEmbedder::ada_like();
        let v = e.embed(&text);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(
            norm < 1e-6 || (norm - 1.0).abs() < 1e-4,
            "norm {norm} for {text:?}"
        );
    }

    #[test]
    fn embedding_self_similarity_is_max(text in "[a-z ]{3,80}") {
        let e = NgramEmbedder::ada_like();
        let v = e.embed(&text);
        if v.iter().any(|x| *x != 0.0) {
            prop_assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-5);
        }
    }
}
