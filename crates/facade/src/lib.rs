//! # crowdprompt
//!
//! Declarative prompt engineering via declarative crowdsourcing principles —
//! a full implementation of the research agenda in *"Revisiting Prompt
//! Engineering via Declarative Crowdsourcing"* (Parameswaran et al.,
//! CIDR 2024).
//!
//! Treat LLMs as noisy human oracles: declare data processing operations
//! (sort, resolve, impute, filter, count, …) plus a budget, and let the
//! engine decompose them into unit tasks, orchestrate the calls, enforce
//! cross-task consistency, mix in non-LLM proxies, and control quality.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use crowdprompt::data::FlavorDataset;
//! use crowdprompt::oracle::{LlmClient, ModelProfile, SimulatedLlm};
//! use crowdprompt::core::ops::sort::SortStrategy;
//! use crowdprompt::core::{Budget, Corpus, Session};
//! use crowdprompt::oracle::task::SortCriterion;
//!
//! // 20 ice-cream flavors with latent chocolateyness (Table 1's workload).
//! let data = FlavorDataset::paper(42);
//! let corpus = Corpus::from_world(&data.world, &data.items);
//! // A simulated gpt-3.5-turbo stands in for the real API.
//! let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 7);
//! let session = Session::builder()
//!     .client(Arc::new(LlmClient::new(Arc::new(llm))))
//!     .corpus(corpus)
//!     .budget(Budget::usd(1.0))
//!     .criterion("by how chocolatey they are")
//!     .try_build()
//!     .unwrap();
//!
//! // Declare *what* you want; the planner decides *how* (here it fuses
//! // sort+take(3) into a top-k node) and EXPLAINs its physical plan
//! // before a single LLM call is spent.
//! let query = session
//!     .query(&data.items)
//!     .sort(SortCriterion::LatentScore)
//!     .take(3);
//! let plan = session.plan(query).unwrap();
//! assert!(plan.explain().contains("top-k[3]"));
//!
//! let run = plan.execute(&session).unwrap();
//! assert_eq!(run.output.items().unwrap().len(), 3);
//! assert!(run.total_cost_usd() > 0.0);
//!
//! // Pinning a strategy: every Session operator method is a thin
//! // wrapper over a single-node plan with the strategy pinned.
//! let result = session
//!     .sort(&data.items, SortCriterion::LatentScore, &SortStrategy::Pairwise)
//!     .unwrap();
//! assert_eq!(result.value.order.len(), 20);
//! assert!(result.cost_usd > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`core`] | the declarative engine: session, operators, strategies, consistency, quality control, optimizer |
//! | [`oracle`] | the simulated-LLM substrate: model profiles, pricing, tokenizer, client |
//! | [`embed`] | deterministic embeddings + k-NN indexes |
//! | [`data`] | seeded dataset generators with latent ground truth |
//! | [`metrics`] | Kendall tau-β, classification metrics, report tables |
//!
//! ## Further reading
//!
//! * [README](https://github.com/crowdprompt/crowdprompt/blob/main/README.md)
//!   — building, testing, regenerating the paper's tables, benchmarks.
//! * [ARCHITECTURE](https://github.com/crowdprompt/crowdprompt/blob/main/ARCHITECTURE.md)
//!   — crate-to-paper-section map, the sharded coalescing client and the
//!   pipelined executor's queue design, and the offline dependency shims.

#![warn(missing_docs)]

pub use crowdprompt_core as core;
pub use crowdprompt_data as data;
pub use crowdprompt_embed as embed;
pub use crowdprompt_metrics as metrics;
pub use crowdprompt_oracle as oracle;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use crowdprompt_core::cascade::{CascadeTier, CascadeVerdict, ModelCascade};
    pub use crowdprompt_core::ops::count::CountStrategy;
    pub use crowdprompt_core::ops::filter::FilterStrategy;
    pub use crowdprompt_core::ops::impute::{ImputeStrategy, LabeledPool};
    pub use crowdprompt_core::ops::join::{JoinResult, JoinStrategy};
    pub use crowdprompt_core::ops::max::MaxStrategy;
    pub use crowdprompt_core::ops::resolve::{MentionIndex, ResolveStrategy};
    pub use crowdprompt_core::ops::sort::{SortResult, SortStrategy};
    pub use crowdprompt_core::plan::{
        ClusterProbe, Plan, PlanOptions, PlanOutput, PlanRun, Query, SortCalibration,
    };
    pub use crowdprompt_core::workflow::{Pipeline, PipelineResult};
    pub use crowdprompt_core::{
        BatchOutcome, BlockingHit, BlockingIndex, Budget, CacheConfig, Corpus, EngineError,
        FailurePolicy, OpSalvage, Outcome, Quarantine, ResilienceConfig, RoutingConfig, RunJournal,
        RunOutcome, RunSpec, ServeError, Server, ServerBuilder, Session, SessionBuilder, TenantRun,
        TenantSpec, TenantStats,
    };
    pub use crowdprompt_oracle::task::SortCriterion;
    pub use crowdprompt_oracle::{
        Backend, BackendRegistry, CompletionRequest, FaultKind, FaultSchedule, FaultWindow,
        LanguageModel, LatencyProfile, LlmClient, ModelProfile, RoutePolicy, SimBackend,
        SimulatedLlm,
    };
}
