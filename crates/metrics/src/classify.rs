//! Binary-classification metrics (entity resolution) and label accuracy
//! (imputation).

/// Confusion counts for a binary decision task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
}

impl BinaryConfusion {
    /// Empty confusion matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (predicted, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Build from parallel prediction / truth slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_pairs(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut c = Self::new();
        for (&p, &a) in predicted.iter().zip(actual) {
            c.record(p, a);
        }
        c
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; `None` with no positive predictions.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// Recall `tp / (tp + fn)`; `None` with no actual positives.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// F1 — harmonic mean of precision and recall; `None` if either is
    /// undefined or both are zero.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Overall accuracy; `None` with no observations.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| (self.tp + self.tn) as f64 / total as f64)
    }
}

/// Exact-match accuracy over paired predicted/gold labels.
///
/// Returns `None` for empty input.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn accuracy<T: PartialEq>(predicted: &[T], gold: &[T]) -> Option<f64> {
    assert_eq!(predicted.len(), gold.len(), "length mismatch");
    if predicted.is_empty() {
        return None;
    }
    let correct = predicted.iter().zip(gold).filter(|(p, g)| p == g).count();
    Some(correct as f64 / predicted.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_shape() {
        // Reconstruct something like the paper's baseline: precision 0.952,
        // recall 0.503.
        let mut c = BinaryConfusion::new();
        c.tp = 503;
        c.fn_ = 497;
        c.fp = 25;
        c.tn = 4000;
        assert!((c.precision().unwrap() - 0.9527).abs() < 1e-3);
        assert!((c.recall().unwrap() - 0.503).abs() < 1e-3);
        let f1 = c.f1().unwrap();
        assert!((f1 - 0.658).abs() < 0.01, "f1 {f1}");
    }

    #[test]
    fn record_routes_to_cells() {
        let mut c = BinaryConfusion::new();
        c.record(true, true);
        c.record(true, false);
        c.record(false, false);
        c.record(false, true);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (1, 1, 1, 1));
        assert_eq!(c.total(), 4);
        assert_eq!(c.accuracy(), Some(0.5));
    }

    #[test]
    fn degenerate_cases_are_none() {
        let c = BinaryConfusion::new();
        assert_eq!(c.precision(), None);
        assert_eq!(c.recall(), None);
        assert_eq!(c.f1(), None);
        assert_eq!(c.accuracy(), None);

        let mut only_negatives = BinaryConfusion::new();
        only_negatives.record(false, false);
        assert_eq!(only_negatives.precision(), None);
        assert_eq!(only_negatives.recall(), None);
        assert_eq!(only_negatives.accuracy(), Some(1.0));
    }

    #[test]
    fn from_pairs_matches_manual() {
        let pred = [true, false, true, true];
        let act = [true, true, false, true];
        let c = BinaryConfusion::from_pairs(&pred, &act);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 0, 1));
    }

    #[test]
    fn label_accuracy() {
        let pred = ["a", "b", "c"];
        let gold = ["a", "x", "c"];
        assert!((accuracy(&pred, &gold).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        let empty: [&str; 0] = [];
        assert_eq!(accuracy(&empty, &empty), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[1], &[1, 2]);
    }
}
