//! Evaluation metrics and reporting for `crowdprompt` experiments.
//!
//! * [`rank`] — Kendall tau-β (the paper's ranking metric), Spearman's rho,
//!   inversion counts.
//! * [`classify`] — precision / recall / F1 / accuracy and confusion counts
//!   for the entity-resolution and imputation studies.
//! * [`report`] — plain-text and markdown table rendering for the
//!   paper-vs-measured harnesses.
//! * [`stats`] — multi-trial summary statistics (mean, sd, bootstrap CIs).

#![warn(missing_docs)]

pub mod classify;
pub mod rank;
pub mod report;
pub mod stats;

pub use classify::{accuracy, BinaryConfusion};
pub use rank::{inversions, kendall_tau_b, kendall_tau_b_rankings, spearman_rho};
pub use report::Table;
