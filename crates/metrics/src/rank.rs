//! Rank-correlation statistics.
//!
//! The paper scores every sorting experiment with Kendall's tau-β, the
//! tie-aware variant of Kendall's tau. We implement Knight's O(n log n)
//! algorithm and property-test it against the quadratic definition.

use std::collections::HashMap;
use std::hash::Hash;

/// Kendall's tau-β between two paired score vectors.
///
/// ```
/// use crowdprompt_metrics::rank::kendall_tau_b;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let reversed = [4.0, 3.0, 2.0, 1.0];
/// assert_eq!(kendall_tau_b(&x, &x), Some(1.0));
/// assert_eq!(kendall_tau_b(&x, &reversed), Some(-1.0));
/// ```
///
/// Tie-aware: `tau_b = (C - D) / sqrt((n0 - t_x)(n0 - t_y))` where `C`/`D`
/// are concordant/discordant pair counts, `n0 = n(n-1)/2`, and `t_x`/`t_y`
/// are pairs tied in each input. Returns `None` when either input is
/// constant (the statistic is undefined) or lengths differ or `n < 2`.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len();
    let mut pairs: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
    // Sort by x, breaking ties by y (Knight's algorithm precondition).
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    });

    let n0 = (n * (n - 1) / 2) as i64;
    let xtie = tie_pair_count(pairs.iter().map(|p| p.0));
    let xytie = tie_pair_count_joint(&pairs);

    // Count discordant pairs = inversions in y once sorted by (x, y).
    let mut ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let dis = count_inversions(&mut ys) as i64;

    // y tie count is order-independent.
    let mut y_sorted: Vec<f64> = y.to_vec();
    y_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let ytie = tie_pair_count(y_sorted.iter().copied());

    let denom_x = n0 - xtie;
    let denom_y = n0 - ytie;
    if denom_x == 0 || denom_y == 0 {
        return None;
    }
    let con_minus_dis = n0 - xtie - ytie + xytie - 2 * dis;
    Some(con_minus_dis as f64 / ((denom_x as f64) * (denom_y as f64)).sqrt())
}

/// Kendall tau-β between two *orderings* of the same item set.
///
/// Items present in only one ordering are ignored. Returns `None` when
/// fewer than two items are shared.
pub fn kendall_tau_b_rankings<T: Eq + Hash>(observed: &[T], gold: &[T]) -> Option<f64> {
    let gold_rank: HashMap<&T, usize> = gold.iter().enumerate().map(|(i, t)| (t, i)).collect();
    let mut obs_ranks: Vec<f64> = Vec::new();
    let mut gold_ranks: Vec<f64> = Vec::new();
    for (i, item) in observed.iter().enumerate() {
        if let Some(&g) = gold_rank.get(item) {
            obs_ranks.push(i as f64);
            gold_ranks.push(g as f64);
        }
    }
    kendall_tau_b(&obs_ranks, &gold_ranks)
}

/// Spearman's rho with average ranks for ties. Returns `None` on length
/// mismatch, `n < 2`, or constant input.
pub fn spearman_rho(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Number of inversions in a sequence (pairs out of ascending order),
/// counting ties as ordered. O(n log n).
pub fn inversions(seq: &[f64]) -> u64 {
    let mut copy = seq.to_vec();
    count_inversions(&mut copy)
}

// ---------------------------------------------------------------------------

fn tie_pair_count(sorted: impl Iterator<Item = f64>) -> i64 {
    let mut total = 0i64;
    let mut run = 0i64;
    let mut prev: Option<f64> = None;
    for v in sorted {
        match prev {
            Some(p) if p == v => run += 1,
            _ => {
                total += run * (run + 1) / 2;
                run = 0;
            }
        }
        prev = Some(v);
    }
    total + run * (run + 1) / 2
}

fn tie_pair_count_joint(sorted_pairs: &[(f64, f64)]) -> i64 {
    let mut total = 0i64;
    let mut run = 0i64;
    let mut prev: Option<(f64, f64)> = None;
    for &pv in sorted_pairs {
        match prev {
            Some(p) if p == pv => run += 1,
            _ => {
                total += run * (run + 1) / 2;
                run = 0;
            }
        }
        prev = Some(pv);
    }
    total + run * (run + 1) / 2
}

/// Merge-sort inversion counting; ties are *not* inversions.
fn count_inversions(seq: &mut [f64]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut buf = vec![0.0f64; n];
    merge_count(seq, &mut buf)
}

fn merge_count(seq: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = merge_count(left, &mut buf[..mid]) + merge_count(right, &mut buf[mid..]);
    // Merge, counting how many left elements strictly exceed each right one.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            inv += (left.len() - i) as u64;
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    seq.copy_from_slice(&buf[..n]);
    inv
}

fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Quadratic reference implementation of tau-β, kept public for tests and
/// benchmarks (`#[doc(hidden)]` because it is not part of the stable API).
#[doc(hidden)]
pub fn kendall_tau_b_reference(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len();
    let (mut con, mut dis, mut tx, mut ty) = (0i64, 0i64, 0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither denominator term
            } else if dx == 0.0 {
                tx += 1;
            } else if dy == 0.0 {
                ty += 1;
            } else if dx * dy > 0.0 {
                con += 1;
            } else {
                dis += 1;
            }
        }
    }
    let denom = (((con + dis + tx) as f64) * ((con + dis + ty) as f64)).sqrt();
    if denom == 0.0 {
        return None;
    }
    Some((con - dis) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau_b(&x, &x).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&x, &x).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&x, &y).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman_rho(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_reference_with_ties() {
        let x = [1.0, 2.0, 2.0, 3.0, 5.0, 5.0, 7.0];
        let y = [2.0, 1.0, 3.0, 3.0, 4.0, 6.0, 5.0];
        let fast = kendall_tau_b(&x, &y).unwrap();
        let slow = kendall_tau_b_reference(&x, &y).unwrap();
        assert!((fast - slow).abs() < 1e-12, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn constant_input_is_undefined() {
        assert_eq!(kendall_tau_b(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(spearman_rho(&[2.0, 2.0], &[1.0, 3.0]), None);
    }

    #[test]
    fn length_mismatch_and_tiny_inputs() {
        assert_eq!(kendall_tau_b(&[1.0], &[1.0]), None);
        assert_eq!(kendall_tau_b(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(spearman_rho(&[], &[]), None);
    }

    #[test]
    fn rankings_helper_ignores_unshared_items() {
        let observed = ["a", "ghost", "b", "c"];
        let gold = ["a", "b", "c", "dropped"];
        let tau = kendall_tau_b_rankings(&observed, &gold).unwrap();
        assert!((tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rankings_helper_detects_swap() {
        let observed = ["b", "a", "c"];
        let gold = ["a", "b", "c"];
        let tau = kendall_tau_b_rankings(&observed, &gold).unwrap();
        let expected = kendall_tau_b(&[0.0, 1.0, 2.0], &[1.0, 0.0, 2.0]).unwrap();
        assert!((tau - expected).abs() < 1e-12);
    }

    #[test]
    fn inversion_counts() {
        assert_eq!(inversions(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(inversions(&[3.0, 2.0, 1.0]), 3);
        assert_eq!(inversions(&[2.0, 1.0, 3.0]), 1);
        assert_eq!(inversions(&[]), 0);
        assert_eq!(inversions(&[1.0, 1.0, 1.0]), 0, "ties are not inversions");
    }

    #[test]
    fn spearman_with_ties_uses_average_ranks() {
        let x = [1.0, 2.0, 2.0, 4.0];
        let y = [1.0, 3.0, 3.0, 4.0];
        let rho = spearman_rho(&x, &y).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_paper_values_are_representable() {
        // Sanity: a 20-item ranking with a handful of swaps lands mid-range,
        // like the paper's 0.526 baseline.
        let gold: Vec<f64> = (0..20).map(f64::from).collect();
        let mut obs = gold.clone();
        // Shuffle the tail badly.
        obs[8..20].reverse();
        let tau = kendall_tau_b(&obs, &gold).unwrap();
        assert!(tau > 0.2 && tau < 0.8, "tau {tau}");
    }
}
