//! Lightweight table rendering for experiment harnesses.
//!
//! Every `table*` binary in `crowdprompt-bench` prints a paper-vs-measured
//! table; this module does the column alignment so the harnesses stay
//! declarative.

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows are truncated.
    pub fn add_row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(ToString::to_string).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Format a float with the given number of decimal places, rendering `None`
/// as `"n/a"`. Convenience for metric cells.
pub fn fmt_opt(value: Option<f64>, places: usize) -> String {
    match value {
        Some(v) => format!("{v:.places$}"),
        None => "n/a".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "Score"]);
        t.add_row(&["baseline", "0.52"]);
        t.add_row(&["pairwise comparisons", "0.74"]);
        let text = t.render();
        assert!(text.contains("Demo"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        // Columns align: "Score"/"0.52" start at the same offset.
        let header_pos = lines[1].find("Score").unwrap();
        let row_pos = lines[3].find("0.52").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.add_row(&["1"]);
        t.add_row(&["1", "2", "3", "4"]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(!text.contains('4'));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("T1", &["Method", "Tau"]);
        t.add_row(&["baseline", "0.526"]);
        let md = t.render_markdown();
        assert!(md.starts_with("### T1"));
        assert!(md.contains("| Method | Tau |"));
        assert!(md.contains("| baseline | 0.526 |"));
    }

    #[test]
    fn fmt_opt_handles_none() {
        assert_eq!(fmt_opt(Some(0.12345), 3), "0.123");
        assert_eq!(fmt_opt(None, 3), "n/a");
    }

    #[test]
    fn empty_table() {
        let t = Table::new("x", &["col"]);
        assert!(t.is_empty());
        assert!(t.render().contains("col"));
    }
}
