//! Summary statistics for multi-trial experiment rows.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Arithmetic mean; 0 for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Seeded bootstrap percentile confidence interval for the mean.
///
/// Returns `(low, high)` at the given confidence level (e.g. `0.95`);
/// degenerate inputs collapse to `(mean, mean)`.
pub fn bootstrap_ci(values: &[f64], confidence: f64, resamples: usize, seed: u64) -> (f64, f64) {
    if values.len() < 2 || resamples == 0 {
        let m = mean(values);
        return (m, m);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let total: f64 = (0..values.len())
                .map(|_| values[rng.random_range(0..values.len())])
                .sum();
            total / values.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence.clamp(0.0, 1.0)) / 2.0;
    let lo_idx = ((means.len() as f64 * alpha) as usize).min(means.len() - 1);
    let hi_idx = ((means.len() as f64 * (1.0 - alpha)) as usize).min(means.len() - 1);
    (means[lo_idx], means[hi_idx])
}

/// Format `mean ± sd` with the given precision.
pub fn fmt_mean_sd(values: &[f64], places: usize) -> String {
    format!("{:.places$} ± {:.places$}", mean(values), std_dev(values),)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_contains_mean_for_tight_data() {
        let values = [0.50, 0.52, 0.49, 0.51, 0.50, 0.52, 0.48];
        let (lo, hi) = bootstrap_ci(&values, 0.95, 2000, 7);
        let m = mean(&values);
        assert!(lo <= m && m <= hi, "[{lo}, {hi}] should contain {m}");
        assert!(hi - lo < 0.05, "tight data gives a tight interval");
    }

    #[test]
    fn bootstrap_widens_with_spread() {
        let tight = [0.5, 0.51, 0.49, 0.5];
        let wide = [0.1, 0.9, 0.2, 0.8];
        let (tl, th) = bootstrap_ci(&tight, 0.95, 1000, 1);
        let (wl, wh) = bootstrap_ci(&wide, 0.95, 1000, 1);
        assert!(wh - wl > th - tl);
    }

    #[test]
    fn bootstrap_deterministic_per_seed() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            bootstrap_ci(&values, 0.9, 500, 42),
            bootstrap_ci(&values, 0.9, 500, 42)
        );
    }

    #[test]
    fn degenerate_inputs_collapse() {
        assert_eq!(bootstrap_ci(&[3.0], 0.95, 100, 1), (3.0, 3.0));
        assert_eq!(bootstrap_ci(&[], 0.95, 100, 1), (0.0, 0.0));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mean_sd(&[1.0, 3.0], 1), "2.0 ± 1.4");
    }
}
