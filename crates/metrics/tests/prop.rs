//! Property tests for the metrics crate.

use crowdprompt_metrics::rank::{inversions, kendall_tau_b, kendall_tau_b_reference, spearman_rho};
use proptest::prelude::*;

fn score_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    // Small integer-valued scores generate plenty of ties.
    prop::collection::vec((-5i32..=5).prop_map(f64::from), 2..max_len)
}

proptest! {
    #[test]
    fn tau_fast_matches_quadratic_reference(
        pairs in score_vec(60).prop_flat_map(|x| {
            let n = x.len();
            (Just(x), prop::collection::vec((-5i32..=5).prop_map(f64::from), n..=n))
        })
    ) {
        let (x, y) = pairs;
        let fast = kendall_tau_b(&x, &y);
        let slow = kendall_tau_b_reference(&x, &y);
        match (fast, slow) {
            (Some(f), Some(s)) => prop_assert!((f - s).abs() < 1e-9, "fast {f} slow {s}"),
            (None, None) => {}
            other => prop_assert!(false, "definedness mismatch: {other:?}"),
        }
    }

    #[test]
    fn tau_is_bounded(x in score_vec(40), ) {
        let n = x.len();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 7.0) % 11.0).collect();
        if let Some(t) = kendall_tau_b(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&t), "tau {t}");
        }
    }

    #[test]
    fn tau_symmetric(x in score_vec(40)) {
        let n = x.len();
        let y: Vec<f64> = (0..n).map(|i| ((i * i) % 13) as f64).collect();
        let a = kendall_tau_b(&x, &y);
        let b = kendall_tau_b(&y, &x);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-12),
            (None, None) => {}
            other => prop_assert!(false, "symmetry definedness mismatch: {other:?}"),
        }
    }

    #[test]
    fn tau_of_identical_permutation_is_one(n in 2usize..100) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert!((kendall_tau_b(&x, &x).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_bounded(x in score_vec(40)) {
        let n = x.len();
        let y: Vec<f64> = (0..n).map(|i| ((i * 5) % 9) as f64).collect();
        if let Some(r) = spearman_rho(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "rho {r}");
        }
    }

    #[test]
    fn inversions_zero_iff_sorted(mut x in score_vec(50)) {
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(inversions(&x), 0);
    }

    #[test]
    fn inversions_bounded_by_pair_count(x in score_vec(50)) {
        let n = x.len() as u64;
        prop_assert!(inversions(&x) <= n * (n - 1) / 2);
    }

    #[test]
    fn reversing_negates_tau(n in 2usize..60) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let rev: Vec<f64> = x.iter().rev().copied().collect();
        let t = kendall_tau_b(&x, &rev).unwrap();
        prop_assert!((t + 1.0).abs() < 1e-12);
    }
}
