//! Heterogeneous serving backends for one model tier.
//!
//! A production deployment of the paper's engine does not talk to "an LLM" —
//! it talks to several *backends* serving the same model: different
//! providers, regions, or reserved-capacity pools, each with its own latency
//! distribution, price multiplier, concurrency slots, and failure behaviour.
//! This module gives the simulator that shape:
//!
//! * [`Backend`] — the trait the router dispatches through: identity, tier,
//!   pricing, advertised slots, and a cancellable `complete`.
//! * [`SimBackend`] — wraps any [`LanguageModel`] (typically one shared
//!   [`crate::SimulatedLlm`], so every backend returns *identical answers*)
//!   with a transport layer: seeded latency injection with stragglers,
//!   slot-based rate limiting, transient-error/timeout injection, and a
//!   price multiplier applied to the inner model's billing schedule.
//! * [`BackendRegistry`] — a validated, ordered set of backends serving one
//!   tier, consumed by [`crate::route::Router`].
//!
//! Determinism: every latency and failure draw is a pure function of
//! `(backend seed, request fingerprint, sample index)`, so reruns reproduce
//! the same stragglers and the same transient failures — which is what makes
//! the routing layer's behaviour testable.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::LlmError;
use crate::hash;
use crate::model::NoiseProfile;
use crate::pricing::Pricing;
use crate::types::{CompletionRequest, CompletionResponse, LanguageModel};

/// Cooperative cancellation handle for an in-flight backend call.
///
/// Hedged dispatch hands every launched attempt its own token; when one
/// attempt wins, the loser's token is cancelled and a well-behaved backend
/// abandons its remaining work (the [`SimBackend`] latency sleep polls the
/// token) and returns [`LlmError::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signal cancellation to the call holding this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been signalled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Latency model of a simulated backend: a base per-call cost with
/// multiplicative jitter, plus an occasional straggler tail — the regime of
/// a real chat-completion API, where p50 and p99 differ by an order of
/// magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Typical per-call latency, in microseconds.
    pub base_us: u64,
    /// Uniform multiplicative jitter around the base, as a fraction (e.g.
    /// `0.2` draws latencies in `[0.8, 1.2] × base`).
    pub jitter: f64,
    /// Probability a call is a straggler.
    pub tail_prob: f64,
    /// Straggler latency multiplier (applied to the jittered base).
    pub tail_mult: f64,
}

impl LatencyProfile {
    /// No injected latency at all (unit tests, parity baselines).
    pub const fn zero() -> Self {
        LatencyProfile {
            base_us: 0,
            jitter: 0.0,
            tail_prob: 0.0,
            tail_mult: 1.0,
        }
    }

    /// A fixed per-call latency with no jitter and no tail.
    pub const fn fixed(base_us: u64) -> Self {
        LatencyProfile {
            base_us,
            jitter: 0.0,
            tail_prob: 0.0,
            tail_mult: 1.0,
        }
    }

    /// A latency profile with a straggler tail: `tail_prob` of calls take
    /// `tail_mult × base_us`.
    pub const fn with_tail(base_us: u64, tail_prob: f64, tail_mult: f64) -> Self {
        LatencyProfile {
            base_us,
            jitter: 0.0,
            tail_prob,
            tail_mult,
        }
    }

    /// Draw this profile's latency for one `(request, attempt)` coordinate.
    fn draw(&self, rng: &mut ChaCha8Rng) -> Duration {
        if self.base_us == 0 {
            return Duration::ZERO;
        }
        let mut us = self.base_us as f64;
        if self.jitter > 0.0 {
            us *= 1.0 + self.jitter * (rng.random::<f64>() * 2.0 - 1.0);
        }
        if self.tail_prob > 0.0 && rng.random_bool(self.tail_prob.clamp(0.0, 1.0)) {
            us *= self.tail_mult.max(1.0);
        }
        Duration::from_micros(us.max(0.0) as u64)
    }
}

/// The fault regime a scripted window imposes on a backend.
///
/// Unlike the i.i.d. per-call draws of a [`NoiseProfile`], scripted faults
/// are *correlated*: every call inside the window suffers the same fate.
/// That is the failure shape that actually breaks batch pipelines — a
/// provider region going dark for minutes, a tenant-wide rate-limit storm,
/// a congested path inflating every latency — and the shape chaos tests
/// need to carve deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every call in the window fails with [`LlmError::ServiceUnavailable`].
    Outage,
    /// Every call in the window is rejected with [`LlmError::RateLimited`]
    /// carrying this `Retry-After` hint.
    RateLimitStorm {
        /// The hint each rejected call carries, in milliseconds.
        retry_after_ms: u64,
    },
    /// Every call in the window serves normally but with its drawn latency
    /// multiplied (a congested path; multipliers below 1 are clamped to 1).
    LatencySpike {
        /// Latency multiplier applied to the profile's drawn latency.
        mult: f64,
    },
}

/// One scripted fault window: calls with arrival ordinal in
/// `[from_call, to_call)` on the owning backend suffer `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// First affected call ordinal (0-based arrival count, inclusive).
    pub from_call: u64,
    /// First unaffected call ordinal (exclusive).
    pub to_call: u64,
    /// What happens to calls inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// A window covering call ordinals `[from_call, to_call)`.
    pub const fn new(from_call: u64, to_call: u64, kind: FaultKind) -> Self {
        FaultWindow {
            from_call,
            to_call,
            kind,
        }
    }

    fn contains(&self, call: u64) -> bool {
        call >= self.from_call && call < self.to_call
    }
}

/// A deterministic scripted fault schedule over a backend's call arrivals.
///
/// The backend counts arrivals (its "call ordinal"); each call is checked
/// against the windows in order and the first match decides its fate. With
/// serial dispatch the ordinal is exactly the arrival index, making chaos
/// scenarios like "backend A dead for calls 100..200" fully reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// A schedule from explicit windows (first matching window wins).
    pub fn new(windows: Vec<FaultWindow>) -> Self {
        FaultSchedule { windows }
    }

    /// The schedule's windows, in priority order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the schedule has no windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The fault (if any) governing the call with this arrival ordinal.
    fn fault_for(&self, call: u64) -> Option<FaultKind> {
        self.windows
            .iter()
            .find(|w| w.contains(call))
            .map(|w| w.kind)
    }
}

/// One serving backend for a model tier.
///
/// Object safe; the router holds `Arc<dyn Backend>`. Implementations must
/// be cheap to call concurrently — the router dispatches hedged duplicates
/// from freshly spawned threads.
pub trait Backend: Send + Sync {
    /// Stable backend identifier, unique within a registry (e.g.
    /// `"us-east"`, `"provider-b"`).
    fn id(&self) -> &str;
    /// The model tier this backend serves (the underlying model name).
    /// Backends in one registry must agree on this.
    fn tier(&self) -> &str;
    /// The backend's context window (the tier minimum is what the engine
    /// sees through the router).
    fn context_window(&self) -> u32;
    /// This backend's billing schedule (the tier pricing with any
    /// per-backend multiplier already applied).
    fn pricing(&self) -> Pricing;
    /// Advertised concurrency slots (`0` = unbounded). The router's
    /// least-loaded selection normalizes in-flight load by this.
    fn slots(&self) -> usize;
    /// Execute one completion. `cancel` is cooperative: an implementation
    /// should abandon work and return [`LlmError::Cancelled`] promptly once
    /// the token fires, but is free to ignore it.
    fn complete(
        &self,
        request: &CompletionRequest,
        cancel: &CancelToken,
    ) -> Result<CompletionResponse, LlmError>;
}

/// How often a cancellable sleep polls its token.
const SLEEP_SLICE: Duration = Duration::from_micros(200);

/// Sleep for `total`, polling `cancel`; returns `false` if cancelled early.
fn cancellable_sleep(total: Duration, cancel: &CancelToken) -> bool {
    let deadline = Instant::now() + total; // lint: allow(clock) — sleep deadline anchor
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now(); // lint: allow(clock) — cancellation poll tick
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(SLEEP_SLICE));
    }
}

/// A simulated serving backend over any [`LanguageModel`].
///
/// Layers transport behaviour on top of the wrapped model:
///
/// * **Latency** — seeded draws from a [`LatencyProfile`], slept
///   cooperatively so hedged losers can be cancelled mid-wait.
/// * **Slots** — at most [`Backend::slots`] calls in flight; excess calls
///   fail immediately with [`LlmError::RateLimited`] (a provider 429).
/// * **Transient failures** — `rate_limit_prob` / `unavailable_prob` /
///   `timeout_prob` draws from a [`NoiseProfile`]'s transport fields, keyed
///   by the backend seed so two backends over the same model fail
///   independently. Timeouts burn the full straggler latency before
///   failing.
/// * **Pricing** — the inner model's schedule scaled by a price
///   multiplier; responses carry the scaled schedule in
///   [`CompletionResponse::pricing`].
///
/// Answers (and token usage) come from the inner model unchanged, so
/// backends sharing one simulator return bit-identical completions.
pub struct SimBackend {
    id: String,
    inner: Arc<dyn LanguageModel>,
    latency: LatencyProfile,
    price_multiplier: f64,
    slots: usize,
    transport: NoiseProfile,
    seed: u64,
    schedule: FaultSchedule,
    in_flight: AtomicUsize,
    calls_seen: AtomicU64,
}

impl SimBackend {
    /// A transparent backend over `model`: zero latency, multiplier 1,
    /// unbounded slots, no injected failures. Routing through a registry of
    /// exactly one such backend is bit-identical to calling `model`
    /// directly.
    pub fn new(id: impl Into<String>, model: Arc<dyn LanguageModel>) -> Self {
        SimBackend {
            id: id.into(),
            inner: model,
            latency: LatencyProfile::zero(),
            price_multiplier: 1.0,
            slots: 0,
            transport: NoiseProfile::perfect(),
            seed: 0,
            schedule: FaultSchedule::default(),
            in_flight: AtomicUsize::new(0),
            calls_seen: AtomicU64::new(0),
        }
    }

    /// Set the latency profile (builder style).
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyProfile) -> Self {
        self.latency = latency;
        self
    }

    /// Set the price multiplier applied to the inner model's schedule
    /// (builder style).
    #[must_use]
    pub fn with_price_multiplier(mut self, multiplier: f64) -> Self {
        self.price_multiplier = multiplier.max(0.0);
        self
    }

    /// Set advertised concurrency slots; `0` = unbounded (builder style).
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Set the transport-failure profile (builder style). Only the
    /// transport fields — `rate_limit_prob`, `unavailable_prob`,
    /// `timeout_prob` — are consulted; answer noise stays with the inner
    /// model.
    #[must_use]
    pub fn with_transport_noise(mut self, noise: NoiseProfile) -> Self {
        self.transport = noise;
        self
    }

    /// Set the seed driving this backend's latency and failure draws
    /// (builder style). Distinct seeds make backends fail independently.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set a scripted fault schedule keyed by call arrival ordinal
    /// (builder style). Scripted windows are checked before the i.i.d.
    /// transport draws, so a schedule composes with (and overrides inside
    /// its windows) any configured [`NoiseProfile`].
    #[must_use]
    pub fn with_fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Calls that have arrived at this backend so far (its fault-schedule
    /// clock). Chaos and resume tests assert against this to prove work
    /// did — or did not — reach the backend.
    pub fn calls_seen(&self) -> u64 {
        self.calls_seen.load(Ordering::Acquire)
    }

    fn transport_rng(&self, request: &CompletionRequest, tag: &str) -> ChaCha8Rng {
        // Folds the sample index in explicitly (temperature-0 fingerprints
        // exclude it), so each routing attempt re-rolls its transport fate.
        let key = hash::combine(
            self.seed,
            hash::combine(
                request.fingerprint(),
                hash::combine(hash::fnv1a_str(tag), u64::from(request.sample_index)),
            ),
        );
        ChaCha8Rng::seed_from_u64(key)
    }
}

/// RAII in-flight slot: decrements on every exit path.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Backend for SimBackend {
    fn id(&self) -> &str {
        &self.id
    }

    fn tier(&self) -> &str {
        self.inner.name()
    }

    fn context_window(&self) -> u32 {
        self.inner.context_window()
    }

    fn pricing(&self) -> Pricing {
        let base = self.inner.pricing();
        Pricing::new(
            base.usd_per_1k_input * self.price_multiplier,
            base.usd_per_1k_output * self.price_multiplier,
        )
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn complete(
        &self,
        request: &CompletionRequest,
        cancel: &CancelToken,
    ) -> Result<CompletionResponse, LlmError> {
        // Every arrival ticks the fault-schedule clock, including calls a
        // full backend is about to 429 — an outage window covers *arrivals*.
        let call = self.calls_seen.fetch_add(1, Ordering::AcqRel);
        // Slot admission: a full backend answers 429 immediately, like a
        // provider rejecting over-limit traffic at the edge.
        let concurrent = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        let _guard = InFlightGuard(&self.in_flight);
        if self.slots > 0 && concurrent > self.slots {
            return Err(LlmError::RateLimited { retry_after_ms: 10 });
        }

        // Scripted faults trump the i.i.d. transport draws inside their
        // windows: the schedule is the experiment, the noise is background.
        let mut latency_mult = 1.0;
        match self.schedule.fault_for(call) {
            Some(FaultKind::Outage) => return Err(LlmError::ServiceUnavailable),
            Some(FaultKind::RateLimitStorm { retry_after_ms }) => {
                return Err(LlmError::RateLimited { retry_after_ms })
            }
            Some(FaultKind::LatencySpike { mult }) => latency_mult = mult.max(1.0),
            None => {}
        }

        let mut rng = self.transport_rng(request, "backend-transport");
        let latency = self.latency.draw(&mut rng).mul_f64(latency_mult);

        // Timeouts hang for a full straggler duration (base × tail_mult,
        // or the drawn latency if that came out longer) before failing —
        // the expensive failure mode hedging is designed around.
        if self.transport.timeout_prob > 0.0
            && rng.random_bool(self.transport.timeout_prob.clamp(0.0, 1.0))
        {
            let straggler = Duration::from_micros(
                (self.latency.base_us as f64 * self.latency.tail_mult.max(1.0)) as u64,
            );
            let hang = latency.max(straggler);
            if !cancellable_sleep(hang, cancel) {
                return Err(LlmError::Cancelled);
            }
            return Err(LlmError::Timeout {
                elapsed_ms: hang.as_millis() as u64,
            });
        }
        // Fast-fail transient errors (the provider rejects before serving).
        if self.transport.rate_limit_prob > 0.0
            && rng.random_bool(self.transport.rate_limit_prob.clamp(0.0, 1.0))
        {
            return Err(LlmError::RateLimited { retry_after_ms: 50 });
        }
        if self.transport.unavailable_prob > 0.0
            && rng.random_bool(self.transport.unavailable_prob.clamp(0.0, 1.0))
        {
            return Err(LlmError::ServiceUnavailable);
        }

        if !cancellable_sleep(latency, cancel) {
            return Err(LlmError::Cancelled);
        }
        let mut response = self.inner.complete(request)?;
        response.pricing = self.pricing();
        Ok(response)
    }
}

/// A validated, ordered set of backends serving one model tier.
#[derive(Clone)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn Backend>>,
    tier: String,
}

impl BackendRegistry {
    /// Build a registry. Fails with [`LlmError::InvalidRequest`] when the
    /// set is empty, two backends share an id, or the backends disagree on
    /// the model tier they serve.
    pub fn new(backends: Vec<Arc<dyn Backend>>) -> Result<Self, LlmError> {
        let Some(first) = backends.first() else {
            return Err(LlmError::InvalidRequest(
                "backend registry requires at least one backend".into(),
            ));
        };
        let tier = first.tier().to_owned();
        for (i, backend) in backends.iter().enumerate() {
            if backend.tier() != tier {
                return Err(LlmError::InvalidRequest(format!(
                    "backend '{}' serves tier '{}' but the registry serves '{}'",
                    backend.id(),
                    backend.tier(),
                    tier
                )));
            }
            if backends[..i].iter().any(|b| b.id() == backend.id()) {
                return Err(LlmError::InvalidRequest(format!(
                    "duplicate backend id '{}'",
                    backend.id()
                )));
            }
        }
        Ok(BackendRegistry { backends, tier })
    }

    /// A registry of exactly one transparent backend over `model` — the
    /// parity configuration whose routed results are bit-identical to
    /// calling `model` directly.
    pub fn single(model: Arc<dyn LanguageModel>) -> Self {
        let backend: Arc<dyn Backend> = Arc::new(SimBackend::new("default", model));
        // lint: allow(no-unwrap) — invariant: one-element roster passes validation
        BackendRegistry::new(vec![backend]).expect("one transparent backend is always valid")
    }

    /// The model tier every backend in this registry serves.
    pub fn tier(&self) -> &str {
        &self.tier
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the registry is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The backends, in registration order.
    pub fn backends(&self) -> &[Arc<dyn Backend>] {
        &self.backends
    }

    /// Look up a backend by id.
    pub fn by_id(&self, id: &str) -> Option<&Arc<dyn Backend>> {
        self.backends.iter().find(|b| b.id() == id)
    }

    /// The smallest context window across backends — the conservative
    /// window the engine plans prompts against.
    pub fn min_context_window(&self) -> u32 {
        self.backends
            .iter()
            .map(|b| b.context_window())
            .min()
            .unwrap_or(0)
    }

    /// Index of the cheapest backend (by summed per-1k rates) — the
    /// reference pricing for planner estimates.
    pub fn cheapest(&self) -> usize {
        let rate = |p: Pricing| p.usd_per_1k_input + p.usd_per_1k_output;
        self.backends
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| rate(a.pricing()).total_cmp(&rate(b.pricing())))
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelProfile;
    use crate::sim::SimulatedLlm;
    use crate::task::TaskDescriptor;
    use crate::world::WorldModel;

    fn sim_model(seed: u64) -> Arc<dyn LanguageModel> {
        let mut w = WorldModel::new();
        let id = w.add_item("item zero");
        w.set_flag(id, "p", true);
        Arc::new(SimulatedLlm::new(
            ModelProfile::gpt35_like(),
            Arc::new(w),
            seed,
        ))
    }

    fn req() -> CompletionRequest {
        CompletionRequest::new(
            "Does item 0 satisfy p?",
            TaskDescriptor::CheckPredicate {
                item: crate::world::ItemId(0),
                predicate: "p".into(),
            },
        )
    }

    #[test]
    fn transparent_backend_matches_model() {
        let model = sim_model(3);
        let direct = model.complete(&req()).unwrap();
        let backend = SimBackend::new("a", Arc::clone(&model));
        let routed = backend.complete(&req(), &CancelToken::new()).unwrap();
        assert_eq!(direct, routed);
        assert_eq!(routed.pricing, model.pricing());
    }

    #[test]
    fn price_multiplier_scales_response_pricing() {
        let model = sim_model(3);
        let backend = SimBackend::new("b", Arc::clone(&model)).with_price_multiplier(2.5);
        let resp = backend.complete(&req(), &CancelToken::new()).unwrap();
        let base = model.pricing();
        assert!((resp.pricing.usd_per_1k_input - base.usd_per_1k_input * 2.5).abs() < 1e-12);
        assert!((resp.pricing.usd_per_1k_output - base.usd_per_1k_output * 2.5).abs() < 1e-12);
    }

    #[test]
    fn latency_draw_is_deterministic_per_request() {
        let profile = LatencyProfile {
            base_us: 1000,
            jitter: 0.3,
            tail_prob: 0.1,
            tail_mult: 10.0,
        };
        let backend = SimBackend::new("c", sim_model(1))
            .with_latency(LatencyProfile::zero())
            .with_seed(9);
        let a = profile.draw(&mut backend.transport_rng(&req(), "latency"));
        let b = profile.draw(&mut backend.transport_rng(&req(), "latency"));
        assert_eq!(a, b, "same coordinates draw the same latency");
    }

    #[test]
    fn transient_failures_injected_per_backend_seed() {
        let model = sim_model(2);
        let flaky = SimBackend::new("flaky", Arc::clone(&model))
            .with_transport_noise(NoiseProfile {
                unavailable_prob: 1.0,
                ..NoiseProfile::perfect()
            })
            .with_seed(4);
        let steady = SimBackend::new("steady", model).with_seed(5);
        assert!(matches!(
            flaky.complete(&req(), &CancelToken::new()),
            Err(LlmError::ServiceUnavailable)
        ));
        assert!(steady.complete(&req(), &CancelToken::new()).is_ok());
    }

    #[test]
    fn timeout_burns_latency_then_fails_retryably() {
        let backend = SimBackend::new("t", sim_model(2))
            .with_latency(LatencyProfile::fixed(500))
            .with_transport_noise(NoiseProfile {
                timeout_prob: 1.0,
                ..NoiseProfile::perfect()
            });
        let started = Instant::now();
        let err = backend.complete(&req(), &CancelToken::new()).unwrap_err();
        assert!(err.is_retryable());
        assert!(matches!(err, LlmError::Timeout { .. }));
        assert!(started.elapsed() >= Duration::from_micros(500));
    }

    #[test]
    fn timeout_hang_is_one_straggler_duration() {
        // base 1 ms, tail 10x: a timeout must hang ~10 ms (one straggler),
        // not tail_mult x an already-tailed draw (which would be 100 ms).
        let backend = SimBackend::new("tt", sim_model(2))
            .with_latency(LatencyProfile::with_tail(1_000, 1.0, 10.0))
            .with_transport_noise(NoiseProfile {
                timeout_prob: 1.0,
                ..NoiseProfile::perfect()
            });
        let started = Instant::now();
        let err = backend.complete(&req(), &CancelToken::new()).unwrap_err();
        let elapsed = started.elapsed();
        assert!(matches!(err, LlmError::Timeout { .. }));
        assert!(
            elapsed >= Duration::from_millis(10),
            "hangs a full straggler"
        );
        assert!(
            elapsed < Duration::from_millis(60),
            "must not compound the tail multiplier: {elapsed:?}"
        );
    }

    #[test]
    fn cancellation_aborts_latency_sleep() {
        let backend = Arc::new(
            SimBackend::new("slow", sim_model(2)).with_latency(LatencyProfile::fixed(1_000_000)),
        );
        let cancel = CancelToken::new();
        let handle = {
            let backend = Arc::clone(&backend);
            let cancel = cancel.clone();
            std::thread::spawn(move || backend.complete(&req(), &cancel))
        };
        std::thread::sleep(Duration::from_millis(2));
        let started = Instant::now();
        cancel.cancel();
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(LlmError::Cancelled)));
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "cancel must cut the 1 s sleep short"
        );
    }

    #[test]
    fn slots_reject_excess_concurrency() {
        let backend = Arc::new(
            SimBackend::new("small", sim_model(2))
                .with_latency(LatencyProfile::fixed(200_000))
                .with_slots(1),
        );
        let first = {
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || backend.complete(&req(), &CancelToken::new()))
        };
        // Wait until the first call occupies the slot.
        while backend.in_flight.load(Ordering::Acquire) == 0 {
            std::thread::sleep(Duration::from_micros(100));
        }
        let second = backend.complete(&req(), &CancelToken::new());
        assert!(matches!(second, Err(LlmError::RateLimited { .. })));
        assert!(first.join().unwrap().is_ok());
        // Slot released: a fresh call succeeds.
        assert!(backend.complete(&req(), &CancelToken::new()).is_ok());
    }

    #[test]
    fn fault_schedule_windows_apply_by_call_ordinal() {
        let backend = SimBackend::new("scripted", sim_model(2)).with_fault_schedule(
            FaultSchedule::new(vec![FaultWindow::new(1, 3, FaultKind::Outage)]),
        );
        let cancel = CancelToken::new();
        assert!(backend.complete(&req(), &cancel).is_ok(), "call 0 is clean");
        assert!(matches!(
            backend.complete(&req(), &cancel),
            Err(LlmError::ServiceUnavailable)
        ));
        assert!(matches!(
            backend.complete(&req(), &cancel),
            Err(LlmError::ServiceUnavailable)
        ));
        assert!(
            backend.complete(&req(), &cancel).is_ok(),
            "call 3 is past the window"
        );
        assert_eq!(backend.calls_seen(), 4);
    }

    #[test]
    fn rate_limit_storm_carries_its_hint() {
        let backend =
            SimBackend::new("stormy", sim_model(2)).with_fault_schedule(FaultSchedule::new(vec![
                FaultWindow::new(0, 1, FaultKind::RateLimitStorm { retry_after_ms: 77 }),
            ]));
        match backend.complete(&req(), &CancelToken::new()) {
            Err(LlmError::RateLimited { retry_after_ms }) => assert_eq!(retry_after_ms, 77),
            other => panic!("expected storm 429, got {other:?}"),
        }
    }

    #[test]
    fn latency_spike_inflates_the_drawn_latency() {
        let backend = SimBackend::new("spiky", sim_model(2))
            .with_latency(LatencyProfile::fixed(500))
            .with_fault_schedule(FaultSchedule::new(vec![FaultWindow::new(
                0,
                1,
                FaultKind::LatencySpike { mult: 20.0 },
            )]));
        let started = Instant::now();
        backend.complete(&req(), &CancelToken::new()).unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(10),
            "spiked call must sleep 20 x 500 us"
        );
        // The next call is outside the window: back to the plain 500 us.
        let started = Instant::now();
        backend.complete(&req(), &CancelToken::new()).unwrap();
        assert!(started.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn registry_validation() {
        let model = sim_model(1);
        assert!(BackendRegistry::new(Vec::new()).is_err());
        let dup: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("x", Arc::clone(&model))),
            Arc::new(SimBackend::new("x", Arc::clone(&model))),
        ];
        assert!(BackendRegistry::new(dup).is_err());
        let other_tier: Arc<dyn LanguageModel> = {
            let mut w = WorldModel::new();
            w.add_item("y");
            Arc::new(SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w), 1))
        };
        let mixed: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("a", Arc::clone(&model))),
            Arc::new(SimBackend::new("b", other_tier)),
        ];
        assert!(BackendRegistry::new(mixed).is_err());
        let ok = BackendRegistry::single(model);
        assert_eq!(ok.len(), 1);
        assert_eq!(ok.tier(), "sim-gpt-3.5-turbo");
    }

    #[test]
    fn registry_cheapest_and_window() {
        let model = sim_model(1);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("pricey", Arc::clone(&model)).with_price_multiplier(2.0)),
            Arc::new(SimBackend::new("cheap", Arc::clone(&model)).with_price_multiplier(0.5)),
        ];
        let registry = BackendRegistry::new(backends).unwrap();
        assert_eq!(registry.cheapest(), 1);
        assert_eq!(registry.min_context_window(), model.context_window());
        assert!(registry.by_id("pricey").is_some());
        assert!(registry.by_id("absent").is_none());
    }
}
