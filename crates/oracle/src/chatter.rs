//! Free-text "chatter" rendering around answers.
//!
//! Real chat models rarely emit a bare `Yes`; they wrap answers in prose, and
//! occasionally in *contradictory* prose — the paper reports seeing
//! `"They are not the same...[explanation]...They are the same."` in its
//! entity-resolution study. The simulator routes every answer through this
//! module so the extraction layer in `crowdprompt-core` is exercised against
//! realistic response surfaces.

/// Style knobs resolved from a per-response hash.
#[derive(Debug, Clone, Copy)]
pub struct ChatterStyle {
    /// Verbosity in `[0,1]` — 0 renders the bare answer.
    pub level: f64,
    /// Which phrasing family to use (derived from the response hash).
    pub variant: u64,
    /// Emit the contradictory malformed pattern.
    pub malformed: bool,
}

/// Wrap a yes/no answer in chatter.
///
/// When `style.malformed` is set, the output leads with the *opposite*
/// polarity before settling on the answer, reproducing the extraction hazard
/// described in §4 of the paper.
pub fn wrap_yes_no(answer: bool, style: ChatterStyle) -> String {
    let word = if answer { "Yes" } else { "No" };
    let opposite = if answer { "No" } else { "Yes" };
    if style.malformed {
        let (a, b) = if answer {
            ("They are not the same", "They are the same")
        } else {
            ("They are the same", "They are not the same")
        };
        return format!("{a}... on closer inspection of the fields, {b}. {word}.");
    }
    if style.level < 0.2 {
        return format!("{word}.");
    }
    match style.variant % 4 {
        0 => format!("{word}."),
        1 => format!("{word}, based on the information provided."),
        2 => format!("After comparing the two, my answer is {word}. (Not {opposite}.)"),
        _ => format!("{word} — the records appear to support this conclusion."),
    }
}

/// Wrap a numeric rating in chatter, e.g. `"I would rate this a 5 out of 7."`.
pub fn wrap_rating(rating: u8, scale_max: u8, style: ChatterStyle) -> String {
    if style.level < 0.2 {
        return rating.to_string();
    }
    match style.variant % 3 {
        0 => format!("{rating}"),
        1 => format!("Rating: {rating}/{scale_max}"),
        _ => format!("I would rate this a {rating} out of {scale_max}."),
    }
}

/// Wrap a chosen value (imputation / classification answer) in chatter.
pub fn wrap_value(value: &str, style: ChatterStyle) -> String {
    if style.level < 0.2 {
        return value.to_owned();
    }
    match style.variant % 4 {
        0 => value.to_owned(),
        1 => format!("Answer: {value}"),
        2 => format!("The missing value is most likely \"{value}\"."),
        _ => format!("Based on the record, I believe it is {value}."),
    }
}

/// Render a sorted list as a numbered block, the way chat models answer
/// "return the sorted list" prompts.
pub fn wrap_list(items: &[&str], style: ChatterStyle) -> String {
    let mut out = String::with_capacity(items.len() * 16 + 64);
    if style.level >= 0.2 && style.variant.is_multiple_of(2) {
        out.push_str("Here is the sorted list:\n");
    }
    for (i, item) in items.iter().enumerate() {
        out.push_str(&format!("{}. {}\n", i + 1, item));
    }
    out
}

/// Render duplicate groups, one group per line.
pub fn wrap_groups(groups: &[Vec<&str>], style: ChatterStyle) -> String {
    let mut out = String::new();
    if style.level >= 0.2 {
        out.push_str("I grouped the records as follows:\n");
    }
    for (i, group) in groups.iter().enumerate() {
        out.push_str(&format!("Group {}: {}\n", i + 1, group.join(" | ")));
    }
    out
}

/// Render a count estimate.
pub fn wrap_count(count: usize, total: usize, style: ChatterStyle) -> String {
    if style.level < 0.2 {
        return count.to_string();
    }
    match style.variant % 2 {
        0 => format!("{count}"),
        _ => format!("Approximately {count} of the {total} items satisfy the condition."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn style(level: f64, variant: u64, malformed: bool) -> ChatterStyle {
        ChatterStyle {
            level,
            variant,
            malformed,
        }
    }

    #[test]
    fn bare_answers_at_low_level() {
        assert_eq!(wrap_yes_no(true, style(0.0, 3, false)), "Yes.");
        assert_eq!(wrap_rating(5, 7, style(0.0, 2, false)), "5");
        assert_eq!(wrap_value("Berkeley", style(0.0, 2, false)), "Berkeley");
    }

    #[test]
    fn malformed_contains_both_polarities_but_ends_with_answer() {
        let s = wrap_yes_no(true, style(0.9, 0, true));
        assert!(s.contains("not the same"));
        assert!(s.trim_end().ends_with("Yes."));
        let s = wrap_yes_no(false, style(0.9, 0, true));
        assert!(s.trim_end().ends_with("No."));
    }

    #[test]
    fn all_yes_no_variants_contain_answer_word() {
        for v in 0..8 {
            let s = wrap_yes_no(true, style(0.9, v, false));
            assert!(s.contains("Yes"), "variant {v}: {s}");
        }
    }

    #[test]
    fn list_rendering_is_numbered() {
        let s = wrap_list(&["b", "a"], style(0.0, 1, false));
        assert_eq!(s, "1. b\n2. a\n");
    }

    #[test]
    fn rating_variants_contain_number() {
        for v in 0..6 {
            let s = wrap_rating(4, 7, style(0.9, v, false));
            assert!(s.contains('4'), "variant {v}: {s}");
        }
    }

    #[test]
    fn groups_render_each_group() {
        let s = wrap_groups(&[vec!["a", "a'"], vec!["b"]], style(0.0, 0, false));
        assert!(s.contains("Group 1: a | a'"));
        assert!(s.contains("Group 2: b"));
    }

    #[test]
    fn count_variants_contain_count() {
        for v in 0..4 {
            let s = wrap_count(12, 40, style(0.9, v, false));
            assert!(s.contains("12"), "variant {v}: {s}");
        }
    }
}
