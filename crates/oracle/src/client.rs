//! Client-side wrapper over a [`LanguageModel`]: retries, a sharded response
//! cache with in-flight request coalescing, cost accounting, and parallel
//! dispatch.
//!
//! This is the layer a production deployment would point at a network
//! backend; the declarative engine only ever talks to an [`LlmClient`].
//!
//! # Concurrency design
//!
//! The paper's engine treats LLMs as noisy crowd workers, so every operator
//! funnels through this client from many threads at once. Two mechanisms
//! keep that hot path scalable:
//!
//! * **Sharded cache** — the temperature-0 response cache is split across
//!   N shards (N a power of two, default [`DEFAULT_CACHE_SHARDS`]), each
//!   behind its own mutex, so lookups of different keys contend on
//!   different locks instead of serializing on one global mutex. The hit
//!   path is deliberately lean: one lock acquisition performs both the
//!   lookup and the hit accounting (a plain in-lock counter — a shared
//!   atomic hit counter measurably dragged the hot-cache path), and the
//!   whole miss/coalescing machinery is outlined behind a cold call.
//! * **In-flight coalescing** — when two workers issue the *same*
//!   temperature-0 request concurrently, the second does not hit the
//!   backend: it registers as a joiner on the first request's "flight" and
//!   waits for the leader's result. Coalesced joins are free — they are
//!   never charged to the [`CostLedger`] and their responses are marked
//!   [`CompletionResponse::cached`], so budget guards skip them too.
//!
//! Both mechanisms are transparent to callers: [`LlmClient::complete`] has
//! the same signature and semantics as before, just with more throughput
//! under contention (see `crates/bench/benches/exec.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::LlmError;
use crate::pricing::CostLedger;
use crate::route::{RoutePolicy, Router};
use crate::store::ResponseStore;
use crate::types::{CompletionRequest, CompletionResponse, LanguageModel};

/// Default number of cache shards (must be a power of two).
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Retry behaviour for transient (retryable) errors.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per call (>= 1).
    pub max_attempts: u32,
    /// Base backoff per retry in milliseconds; `0` disables sleeping, which
    /// keeps simulated experiments fast while preserving retry *logic*.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        }
    }
}

/// Counters describing client behaviour, for traces and tests.
///
/// Cache hits are counted *inside* the shard lock the lookup already holds
/// (a plain `u64` bump on an L1-hot line) rather than on a shared atomic —
/// a dedicated atomic increment per hit measurably dragged the hot-cache
/// path below the seed's stats-free global-mutex client (see
/// `BENCH_exec.json`, `client_hot_cache`). [`LlmClient::stats`] folds the
/// shard counters into `cache_hits` before returning, so reads through a
/// freshly obtained reference are exact.
#[derive(Debug, Default)]
pub struct ClientStats {
    calls: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    store_hits: AtomicU64,
    semantic_hits: AtomicU64,
}

impl ClientStats {
    /// Completed (non-cached) backend calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
    /// Requests served from the response cache (synced from the shard
    /// counters by [`LlmClient::stats`]).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
    /// Requests that joined another thread's identical in-flight request
    /// instead of hitting the backend.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
    /// Retry attempts performed (beyond first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
    /// Calls that ultimately failed.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
    /// Requests served from the persistent store's exact tier (a
    /// [`crate::store::ResponseStore`] attached via
    /// [`LlmClient::attach_store`]). Like cache hits, these charge nothing.
    pub fn store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }
    /// Requests answered by the store's opt-in semantic tier from a
    /// near-duplicate prompt's stored response. Free like cache hits, but
    /// approximate — the accuracy cost is the caller's to meter.
    pub fn semantic_hits(&self) -> u64 {
        self.semantic_hits.load(Ordering::Relaxed)
    }
}

/// One in-flight temperature-0 request: the leader executes the backend
/// call, joiners block on [`Flight::wait`] until the result is published.
struct Flight {
    state: Mutex<Option<Result<CompletionResponse, LlmError>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<CompletionResponse, LlmError>) {
        let mut state = self.state.lock();
        *state = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<CompletionResponse, LlmError> {
        let mut state = self.state.lock();
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            self.cv.wait(&mut state);
        }
    }
}

/// A shard's lock-protected state: the response map plus a plain (non-
/// atomic) hit counter — bumping it under the already-held lock makes hit
/// accounting cost one L1-hot increment instead of a contended atomic RMW.
///
/// Responses are stored behind an `Arc`: a hit clones the `Arc` under the
/// shard lock (a refcount bump) and materializes the body *outside* the
/// critical section, so same-key hit storms no longer serialize on body
/// clones inside the lock. An earlier revision stored bodies inline after
/// the `Arc` measured ~4pp worse on the hot-cache bench; re-measured when
/// the persistent store landed (which shares `Arc`'d bodies with this
/// tier), the `Arc` layout is now at parity single-threaded
/// (`client_hot_cache`, `BENCH_exec.json`) and strictly better under
/// same-key contention, so the trade was re-taken — see the PR 9 notes in
/// ARCHITECTURE.md.
#[derive(Default)]
struct ShardState {
    map: HashMap<u64, Arc<CompletionResponse>>,
    hits: u64,
}

/// One cache shard: the response map plus the in-flight table for keys
/// that hash into this shard.
struct Shard {
    responses: Mutex<ShardState>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            responses: Mutex::new(ShardState::default()),
            flights: Mutex::new(HashMap::new()),
        }
    }
}

/// What a thread should do after consulting the coalescing table.
enum Claim {
    /// Result was already cached (second-chance hit under the flight lock).
    Cached(Arc<CompletionResponse>),
    /// Another thread is executing this request; wait on its flight.
    Join(Arc<Flight>),
    /// This thread is the leader and must execute the backend call.
    Lead(Arc<Flight>),
}

/// An N-way sharded temperature-0 response cache with per-key in-flight
/// request coalescing.
struct ShardedCache {
    shards: Box<[Shard]>,
    mask: usize,
}

impl ShardedCache {
    fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        ShardedCache {
            shards: (0..n).map(|_| Shard::new()).collect(),
            mask: n - 1,
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &Shard {
        // The key is already a fingerprint hash; its low bits pick the shard.
        &self.shards[(key as usize) & self.mask]
    }

    /// Fast path: one lock acquisition does lookup *and* hit accounting.
    /// Returns the shared body; the caller clones it outside the lock.
    #[inline]
    fn get(&self, key: u64) -> Option<Arc<CompletionResponse>> {
        let mut state = self.shard(key).responses.lock();
        let hit = state.map.get(&key).map(Arc::clone);
        if hit.is_some() {
            state.hits += 1;
        }
        hit
    }

    /// Total cache hits across shards (cold path; sums under each lock).
    fn total_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.responses.lock().hits)
            .sum()
    }

    /// Claim the right to execute `key`, or discover someone else has.
    ///
    /// Holding the shard's flight lock, the cache is checked once more (the
    /// leader may have finished between our cache miss and this claim), then
    /// either an existing flight is joined or a new one is installed with
    /// the caller as leader.
    fn claim(&self, key: u64) -> Claim {
        let shard = self.shard(key);
        let mut flights = shard.flights.lock();
        {
            let mut state = shard.responses.lock();
            if let Some(hit) = state.map.get(&key) {
                let hit = Arc::clone(hit);
                state.hits += 1;
                return Claim::Cached(hit);
            }
        }
        if let Some(flight) = flights.get(&key) {
            return Claim::Join(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        Claim::Lead(flight)
    }

    /// Leader path: store a successful result, retire the flight, and wake
    /// all joiners.
    ///
    /// The cache insert happens before the flight is removed so that no
    /// window exists in which a new thread misses both the cache and the
    /// flight table and re-executes the backend call.
    fn publish(
        &self,
        key: u64,
        flight: &Arc<Flight>,
        result: Result<CompletionResponse, LlmError>,
    ) {
        let shard = self.shard(key);
        if let Ok(response) = &result {
            // The body is cloned (into its Arc) before the lock is taken.
            let body = Arc::new(response.clone());
            shard.responses.lock().map.insert(key, body);
        }
        shard.flights.lock().remove(&key);
        flight.publish(result);
    }
}

/// A caching, coalescing, retrying client over any [`LanguageModel`].
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    router: Option<Arc<Router>>,
    retry: RetryPolicy,
    cache: ShardedCache,
    ledger: CostLedger,
    stats: ClientStats,
    cache_enabled: bool,
    coalesce_enabled: bool,
    /// Persistent tier below the shards; attach-once
    /// ([`LlmClient::attach_store`]).
    store: std::sync::OnceLock<Arc<ResponseStore>>,
}

impl LlmClient {
    /// Wrap a model with the default retry policy, caching enabled, and the
    /// default shard count.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            model,
            router: None,
            retry: RetryPolicy::default(),
            cache: ShardedCache::new(DEFAULT_CACHE_SHARDS),
            ledger: CostLedger::new(),
            stats: ClientStats::default(),
            cache_enabled: true,
            coalesce_enabled: true,
            store: std::sync::OnceLock::new(),
        }
    }

    /// A client dispatching through a multi-backend [`Router`] instead of a
    /// single model.
    ///
    /// The router sits *below* this client's cache and coalescing: a
    /// request that is retried across backends or hedged onto two backends
    /// still surfaces exactly one response here, so the ledger charges
    /// exactly one call — priced at the serving backend's schedule via
    /// [`CompletionResponse::pricing`]. Client-level retries are disabled
    /// (the router owns retry policy); router behaviour counters are
    /// reachable through [`LlmClient::router`].
    pub fn routed(registry: crate::backend::BackendRegistry, policy: RoutePolicy) -> Self {
        let router = Arc::new(Router::new(registry, policy));
        let mut client = LlmClient::new(Arc::clone(&router) as Arc<dyn LanguageModel>);
        client.retry = RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0,
        };
        client.router = Some(router);
        client
    }

    /// The router behind this client, when built with [`LlmClient::routed`].
    pub fn router(&self) -> Option<&Arc<Router>> {
        self.router.as_ref()
    }

    /// Override the retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the cache shard count (builder style). Rounded up to a power of
    /// two; `1` reproduces a single-lock cache, useful for benchmarking the
    /// sharding win.
    #[must_use]
    pub fn with_cache_shards(mut self, shards: usize) -> Self {
        self.cache = ShardedCache::new(shards);
        self
    }

    /// Disable in-flight request coalescing (builder style). Used by
    /// benchmarks to isolate the coalescing win; production callers should
    /// leave it on.
    #[must_use]
    pub fn without_coalescing(mut self) -> Self {
        self.coalesce_enabled = false;
        self
    }

    /// Disable the temperature-0 response cache (builder style). This also
    /// disables coalescing, which is keyed on cacheability.
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Layer a persistent [`ResponseStore`] under the in-memory shards
    /// (builder style). See [`LlmClient::attach_store`] for the layering
    /// semantics.
    #[must_use]
    pub fn with_store(self, store: Arc<ResponseStore>) -> Self {
        let _ = self.store.set(store);
        self
    }

    /// Attach a persistent [`ResponseStore`] below the in-memory shards.
    ///
    /// Attach-once: returns `false` (and changes nothing) if a store is
    /// already attached. Once attached, cacheable (temperature-0) misses
    /// probe the store's exact tier — and, when the store has a semantic
    /// tier, near-duplicate prompts — before dispatching to the backend;
    /// hits seed the shard cache, are marked [`CompletionResponse::cached`],
    /// charge nothing to the ledger (exactly like in-memory cache hits, so
    /// meter == ledger == budget accounting is unchanged), and are counted
    /// in [`ClientStats::store_hits`] / [`ClientStats::semantic_hits`].
    /// Freshly paid backend responses are admitted to the store subject to
    /// its capacity and cost-aware admission policy.
    pub fn attach_store(&self, store: Arc<ResponseStore>) -> bool {
        self.store.set(store).is_ok()
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<ResponseStore>> {
        self.store.get()
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn LanguageModel> {
        &self.model
    }

    /// Accumulated usage and spend across all calls on this client.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Behaviour counters. Folds the shard-local hit counters into
    /// [`ClientStats::cache_hits`] before returning; read counters through
    /// a fresh `stats()` call rather than a long-held reference.
    pub fn stats(&self) -> &ClientStats {
        self.stats
            .cache_hits
            .store(self.cache.total_hits(), Ordering::Relaxed);
        &self.stats
    }

    /// Fast-path cache probe: the response if this request is already
    /// cached — in the in-memory shards or the attached store's exact
    /// tier — `None` otherwise (including for uncacheable requests).
    ///
    /// A `Some` return is a real hit — counted in
    /// [`ClientStats::cache_hits`] (or [`ClientStats::store_hits`]) and
    /// marked [`CompletionResponse::cached`] exactly as
    /// [`LlmClient::complete`] would. Dispatchers use this to skip
    /// concurrency gates for requests that need no backend call. The
    /// semantic tier is *not* probed here (embedding a prompt is too heavy
    /// for a peek); it is consulted on the full miss path.
    pub fn peek_cached(&self, request: &CompletionRequest) -> Option<CompletionResponse> {
        if !(self.cache_enabled && request.temperature == 0.0) {
            return None;
        }
        let key = request.fingerprint();
        if let Some(arc) = self.cache.get(key) {
            let mut hit = (*arc).clone();
            hit.cached = true;
            return Some(hit);
        }
        self.probe_store_exact(key)
    }

    /// Exact-tier store probe for a cacheable miss: on a hit the shared
    /// body is seeded into the owning shard (so repeats stay in memory) and
    /// a copy marked [`CompletionResponse::cached`] is returned.
    fn probe_store_exact(&self, key: u64) -> Option<CompletionResponse> {
        let arc = self.store.get()?.lookup(key)?;
        self.cache
            .shard(key)
            .responses
            .lock()
            .map
            .insert(key, Arc::clone(&arc));
        self.stats.store_hits.fetch_add(1, Ordering::Relaxed);
        let mut hit = (*arc).clone();
        hit.cached = true;
        Some(hit)
    }

    /// Semantic-tier store probe: answer a temperature-0 miss from the
    /// nearest stored near-duplicate prompt within the configured distance
    /// threshold. The hit is seeded into the shard cache under *this*
    /// request's key, so repeats of the same near-duplicate are in-memory
    /// hits; the store's exact tier is never polluted with approximate
    /// answers.
    fn probe_store_semantic(
        &self,
        request: &CompletionRequest,
        key: u64,
    ) -> Option<CompletionResponse> {
        let store = self.store.get()?;
        store.semantic_threshold()?;
        let hit = store.lookup_semantic(&request.prompt)?;
        self.cache
            .shard(key)
            .responses
            .lock()
            .map
            .insert(key, Arc::clone(&hit.response));
        self.stats.semantic_hits.fetch_add(1, Ordering::Relaxed);
        let mut response = (*hit.response).clone();
        response.cached = true;
        Some(response)
    }

    /// Offer a freshly paid completion to the attached store (no-op when
    /// none is attached; the store applies its own admission policy).
    fn admit_to_store(&self, request: &CompletionRequest, response: &CompletionResponse) {
        if let Some(store) = self.store.get() {
            store.admit(request, response);
        }
    }

    /// Seed the temperature-0 response cache with an externally produced
    /// response — the journal-replay path: a resumed run re-injects
    /// completions recorded by a previous process so identical requests
    /// are served without re-dispatch.
    ///
    /// No ledger or stats effect here (replay accounting is the caller's
    /// job); a later lookup returns a copy marked
    /// [`CompletionResponse::cached`] like any other hit. No-op when the
    /// request is uncacheable (cache disabled, or temperature > 0).
    pub fn seed_cache(&self, request: &CompletionRequest, response: &CompletionResponse) {
        if !(self.cache_enabled && request.temperature == 0.0) {
            return;
        }
        let key = request.fingerprint();
        let body = Arc::new(response.clone());
        self.cache.shard(key).responses.lock().map.insert(key, body);
    }

    /// Execute one request with caching, coalescing, and retries.
    ///
    /// Only temperature-0 requests are cached (they are deterministic), and
    /// only they are coalesced: if an identical temperature-0 request is
    /// already executing on another thread, this call waits for that result
    /// instead of dispatching a duplicate backend call. Coalesced responses
    /// are marked [`CompletionResponse::cached`] and incur no ledger spend.
    ///
    /// Retryable errors are retried up to the policy's `max_attempts`, with
    /// the request's `sample_index` bumped per attempt so the simulator's
    /// transport-failure draw is re-rolled (matching how a real retry hits a
    /// different server moment).
    pub fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let cacheable = self.cache_enabled && request.temperature == 0.0;
        if !cacheable {
            return self.call_backend(request);
        }
        let key = request.fingerprint();
        if let Some(arc) = self.cache.get(key) {
            let mut hit = (*arc).clone();
            hit.cached = true;
            return Ok(hit);
        }
        self.complete_miss(request, key)
    }

    /// The cache-miss path: coalescing claim, leader backend call, joiner
    /// wait. Outlined (and marked cold) so the hit fast-lane above compiles
    /// to a handful of instructions with no spill pressure from the claim
    /// machinery — on a hot cache this function is never entered.
    #[cold]
    fn complete_miss(
        &self,
        request: &CompletionRequest,
        key: u64,
    ) -> Result<CompletionResponse, LlmError> {
        // The persistent tier sits under the shards: an exact store hit is
        // served (and re-seeded into its shard) before any backend or
        // coalescing machinery runs.
        if let Some(hit) = self.probe_store_exact(key) {
            return Ok(hit);
        }
        if !self.coalesce_enabled {
            if let Some(hit) = self.probe_store_semantic(request, key) {
                return Ok(hit);
            }
            let result = self.call_backend(request);
            if let Ok(response) = &result {
                self.admit_to_store(request, response);
                let body = Arc::new(response.clone());
                self.cache.shard(key).responses.lock().map.insert(key, body);
            }
            return result;
        }
        match self.cache.claim(key) {
            Claim::Cached(arc) => {
                let mut hit = (*arc).clone();
                hit.cached = true;
                Ok(hit)
            }
            Claim::Join(flight) => {
                // Registered as a joiner: counted before waiting so tests
                // (and metrics scrapes) can observe pending joins.
                self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                let mut result = flight.wait()?;
                result.cached = true;
                Ok(result)
            }
            Claim::Lead(flight) => {
                // If the backend panics, the drop guard publishes an error
                // and retires the flight so joiners (and all future
                // requests for this key) are not wedged forever.
                struct AbortGuard<'a> {
                    cache: &'a ShardedCache,
                    key: u64,
                    flight: &'a Arc<Flight>,
                    armed: bool,
                }
                impl Drop for AbortGuard<'_> {
                    fn drop(&mut self) {
                        if self.armed {
                            self.cache.publish(
                                self.key,
                                self.flight,
                                Err(LlmError::ServiceUnavailable),
                            );
                        }
                    }
                }
                let mut guard = AbortGuard {
                    cache: &self.cache,
                    key,
                    flight: &flight,
                    armed: true,
                };
                // Leader-side semantic probe: embedding the prompt is too
                // heavy to do per-thread, so only the leader pays it, and a
                // hit is published to joiners like any other result.
                if let Some(hit) = self.probe_store_semantic(request, key) {
                    guard.armed = false;
                    self.cache.publish(key, &flight, Ok(hit.clone()));
                    return Ok(hit);
                }
                let result = self.call_backend(request);
                guard.armed = false;
                if let Ok(response) = &result {
                    self.admit_to_store(request, response);
                }
                self.cache.publish(key, &flight, result.clone());
                result
            }
        }
    }

    /// The raw backend path: retries, stats, and ledger accounting.
    fn call_backend(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        // Backend latency must never be spent under a shim lock (the
        // lock_diagnostics build enforces this marker).
        parking_lot::blocking_region("backend dispatch");
        let mut attempt = 0u32;
        let mut last_err: Option<LlmError> = None;
        while attempt < self.retry.max_attempts.max(1) {
            let mut req = request.clone();
            req.sample_index = request.sample_index.wrapping_add(attempt);
            match self.model.complete(&req) {
                Ok(resp) => {
                    self.stats.calls.fetch_add(1, Ordering::Relaxed);
                    // Priced at the serving backend's schedule (the
                    // response carries it), not the model's reference
                    // pricing — with routing these can differ per call.
                    self.ledger.record(resp.usage, resp.pricing);
                    return Ok(resp);
                }
                Err(e) if e.is_retryable() => {
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    // Shared delay policy: linear ramp floored by the
                    // server's Retry-After hint, seeded jitter, clipped to
                    // the request deadline ([`crate::retry::retry_delay`]).
                    match crate::retry::retry_delay(
                        self.retry.backoff_ms,
                        attempt,
                        e.retry_hint_ms(),
                        request.fingerprint(),
                        request.deadline,
                        std::time::Instant::now(), // lint: allow(clock) — retry backoff anchor
                    ) {
                        Some(delay) => {
                            if !delay.is_zero() {
                                parking_lot::blocking_region("retry backoff sleep");
                                std::thread::sleep(delay);
                            }
                            last_err = Some(e);
                        }
                        // Deadline passed: stop chasing this call.
                        None => {
                            self.stats.failures.fetch_add(1, Ordering::Relaxed);
                            return Err(LlmError::RetriesExhausted {
                                attempts: attempt,
                                last: Box::new(e),
                            });
                        }
                    }
                }
                Err(e) => {
                    self.stats.failures.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        self.stats.failures.fetch_add(1, Ordering::Relaxed);
        Err(LlmError::RetriesExhausted {
            attempts: self.retry.max_attempts,
            last: Box::new(last_err.unwrap_or(LlmError::ServiceUnavailable)),
        })
    }

    /// Execute a batch of requests across `parallelism` worker threads,
    /// preserving input order in the output.
    ///
    /// This models the fan-out a production orchestrator performs against a
    /// rate-limited API; with the simulator it also meaningfully speeds up
    /// the O(n²) pairwise experiments. Duplicate temperature-0 requests in
    /// the same batch coalesce: only one backend call is made per distinct
    /// fingerprint.
    pub fn complete_many(
        &self,
        requests: &[CompletionRequest],
        parallelism: usize,
    ) -> Vec<Result<CompletionResponse, LlmError>> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = parallelism.clamp(1, n);
        if workers == 1 {
            return requests.iter().map(|r| self.complete(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<CompletionResponse, LlmError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = self.complete(&requests[i]);
                    *results[i].lock() = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled")) // lint: allow(no-unwrap)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelProfile, NoiseProfile};
    use crate::pricing::Pricing;
    use crate::sim::SimulatedLlm;
    use crate::task::TaskDescriptor;
    use crate::world::WorldModel;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;

    fn world_and_ids(n: usize) -> (Arc<WorldModel>, Vec<crate::world::ItemId>) {
        let mut w = WorldModel::new();
        let ids = (0..n)
            .map(|i| {
                let id = w.add_item(format!("item {i}"));
                w.set_flag(id, "p", i % 2 == 0);
                id
            })
            .collect();
        (Arc::new(w), ids)
    }

    fn check_req(id: crate::world::ItemId) -> CompletionRequest {
        CompletionRequest::new(
            format!("Does item {} satisfy p?", id.0),
            TaskDescriptor::CheckPredicate {
                item: id,
                predicate: "p".into(),
            },
        )
    }

    #[test]
    fn cache_hits_deterministic_requests() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let req = check_req(ids[0]);
        let a = client.complete(&req).unwrap();
        let b = client.complete(&req).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.usage, b.usage);
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(client.stats().calls(), 1);
        assert_eq!(client.stats().cache_hits(), 1);
        // Ledger only charged once.
        assert_eq!(client.ledger().calls(), 1);
    }

    #[test]
    fn no_cache_for_positive_temperature() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let req = check_req(ids[0]).with_temperature(0.7);
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        assert_eq!(client.stats().calls(), 2);
        assert_eq!(client.stats().cache_hits(), 0);
    }

    #[test]
    fn retries_transient_failures_then_succeeds() {
        let (world, ids) = world_and_ids(1);
        // ~50% rate-limit probability: with 5 attempts success is near-certain.
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            rate_limit_prob: 0.5,
            ..NoiseProfile::perfect()
        });
        let llm = Arc::new(SimulatedLlm::new(profile, world, 42));
        let client = LlmClient::new(llm).with_retry(RetryPolicy {
            max_attempts: 10,
            backoff_ms: 0,
        });
        let mut succeeded = 0;
        for i in 0..20 {
            let req = check_req(ids[0]).with_sample_index(i * 100);
            if client.complete(&req).is_ok() {
                succeeded += 1;
            }
        }
        assert!(succeeded >= 19, "succeeded {succeeded}/20");
        assert!(client.stats().retries() > 0);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let (world, _) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(
            ModelProfile::perfect().with_context_window(4),
            world,
            1,
        ));
        let client = LlmClient::new(llm);
        let req = CompletionRequest::new(
            "a prompt that is definitely longer than four tokens in total",
            TaskDescriptor::CheckPredicate {
                item: crate::world::ItemId(0),
                predicate: "p".into(),
            },
        );
        assert!(matches!(
            client.complete(&req),
            Err(LlmError::ContextOverflow { .. })
        ));
        assert_eq!(client.stats().retries(), 0);
        assert_eq!(client.stats().failures(), 1);
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let (world, ids) = world_and_ids(1);
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            rate_limit_prob: 1.0,
            ..NoiseProfile::perfect()
        });
        let llm = Arc::new(SimulatedLlm::new(profile, world, 1));
        let client = LlmClient::new(llm).with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        });
        match client.complete(&check_req(ids[0])) {
            Err(LlmError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, LlmError::RateLimited { .. }));
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn complete_many_preserves_order() {
        let (world, ids) = world_and_ids(50);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let reqs: Vec<CompletionRequest> = ids.iter().map(|id| check_req(*id)).collect();
        let parallel = client.complete_many(&reqs, 8);
        let serial: Vec<_> = reqs.iter().map(|r| client.complete(r)).collect();
        for (p, s) in parallel.iter().zip(serial.iter()) {
            assert_eq!(p.as_ref().unwrap().text, s.as_ref().unwrap().text);
        }
    }

    #[test]
    fn complete_many_empty_and_single_worker() {
        let (world, ids) = world_and_ids(3);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        assert!(client.complete_many(&[], 4).is_empty());
        let reqs: Vec<CompletionRequest> = ids.iter().map(|id| check_req(*id)).collect();
        let out = client.complete_many(&reqs, 1);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
    }

    /// A backend whose `complete` blocks until released, so tests can hold a
    /// request in flight while other threads pile onto it.
    struct GatedModel {
        inner: SimulatedLlm,
        release: AtomicBool,
        entered: AtomicU64,
    }

    impl LanguageModel for GatedModel {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn context_window(&self) -> u32 {
            self.inner.context_window()
        }
        fn pricing(&self) -> Pricing {
            self.inner.pricing()
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
            self.entered.fetch_add(1, Ordering::SeqCst);
            while !self.release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            self.inner.complete(request)
        }
    }

    #[test]
    fn concurrent_identical_requests_coalesce_to_one_backend_call() {
        const THREADS: usize = 16;
        let (world, ids) = world_and_ids(1);
        let gated = Arc::new(GatedModel {
            inner: SimulatedLlm::new(ModelProfile::gpt35_like(), world, 9),
            release: AtomicBool::new(false),
            entered: AtomicU64::new(0),
        });
        let client = LlmClient::new(Arc::clone(&gated) as Arc<dyn LanguageModel>);
        let req = check_req(ids[0]);
        let barrier = Barrier::new(THREADS + 1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    client.complete(&req).unwrap()
                }));
            }
            barrier.wait();
            // Deterministic rendezvous: joiners register their coalesced
            // join *before* blocking, so once N-1 joins are visible every
            // non-leader thread is parked on the flight. Only then is the
            // leader's backend call released.
            while client.stats().coalesced() < (THREADS as u64) - 1 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            gated.release.store(true, Ordering::SeqCst);
            let texts: Vec<String> = handles
                .into_iter()
                .map(|h| h.join().unwrap().text)
                .collect();
            assert!(
                texts.windows(2).all(|w| w[0] == w[1]),
                "all joiners share one result"
            );
        });
        assert_eq!(client.stats().calls(), 1, "exactly one backend call");
        assert_eq!(gated.entered.load(Ordering::SeqCst), 1);
        assert_eq!(client.stats().coalesced(), (THREADS as u64) - 1);
        assert_eq!(client.stats().cache_hits(), 0);
        assert_eq!(client.ledger().calls(), 1, "joiners are free in the ledger");
    }

    #[test]
    fn leader_panic_releases_joiners_with_error() {
        const THREADS: usize = 4;

        /// Panics on the first (released) call, succeeds afterwards.
        struct PanicOnceModel {
            inner: SimulatedLlm,
            release: AtomicBool,
            panicked: AtomicBool,
        }
        impl LanguageModel for PanicOnceModel {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn context_window(&self) -> u32 {
                self.inner.context_window()
            }
            fn pricing(&self) -> Pricing {
                self.inner.pricing()
            }
            fn complete(
                &self,
                request: &CompletionRequest,
            ) -> Result<CompletionResponse, LlmError> {
                while !self.release.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                if !self.panicked.swap(true, Ordering::SeqCst) {
                    panic!("backend exploded mid-flight");
                }
                self.inner.complete(request)
            }
        }

        let (world, ids) = world_and_ids(1);
        let model = Arc::new(PanicOnceModel {
            inner: SimulatedLlm::new(ModelProfile::perfect(), world, 3),
            release: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
        });
        let client = LlmClient::new(Arc::clone(&model) as Arc<dyn LanguageModel>);
        let req = check_req(ids[0]);
        let mut joiner_results = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THREADS {
                handles.push(scope.spawn(|| client.complete(&req)));
            }
            // All non-leaders are parked on the flight before the leader's
            // backend call is released (and panics).
            while client.stats().coalesced() < (THREADS as u64) - 1 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            model.release.store(true, Ordering::SeqCst);
            for h in handles {
                // The leader's panic propagates to its own thread; only
                // joiners land a result here.
                if let Ok(result) = h.join() {
                    joiner_results.push(result);
                }
            }
        });
        assert_eq!(
            joiner_results.len(),
            THREADS - 1,
            "leader panicked, joiners returned"
        );
        for r in &joiner_results {
            assert!(
                matches!(r, Err(LlmError::ServiceUnavailable)),
                "joiners get the abort error, got {r:?}"
            );
        }
        // The flight was retired: a fresh request executes and succeeds.
        let retry = client.complete(&req);
        assert!(retry.is_ok(), "flight retired after panic, got {retry:?}");
    }

    #[test]
    fn sharded_cache_stress_executes_each_key_once() {
        const THREADS: usize = 8;
        const OPS_PER_THREAD: usize = 2_000;
        const KEYS: usize = 64;
        let (world, ids) = world_and_ids(KEYS);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::gpt35_like(), world, 3));
        let client = LlmClient::new(llm);
        let reqs: Vec<CompletionRequest> = ids.iter().map(|id| check_req(*id)).collect();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let reqs = &reqs;
                let client = &client;
                scope.spawn(move || {
                    for i in 0..OPS_PER_THREAD {
                        let req = &reqs[(i * 31 + t * 7) % KEYS];
                        let resp = client.complete(req).unwrap();
                        assert!(!resp.text.is_empty());
                    }
                });
            }
        });
        let total = (THREADS * OPS_PER_THREAD) as u64;
        let stats = client.stats();
        assert_eq!(
            stats.calls() + stats.cache_hits() + stats.coalesced(),
            total,
            "every request is accounted exactly once"
        );
        assert_eq!(
            stats.calls(),
            KEYS as u64,
            "each distinct key executes once"
        );
        assert_eq!(client.ledger().calls(), KEYS as u64);
    }

    #[test]
    fn single_shard_still_correct() {
        let (world, ids) = world_and_ids(8);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm).with_cache_shards(1);
        for _ in 0..3 {
            for id in &ids {
                client.complete(&check_req(*id)).unwrap();
            }
        }
        assert_eq!(client.stats().calls(), 8);
        assert_eq!(client.stats().cache_hits(), 16);
    }

    #[test]
    fn seeded_cache_serves_without_backend_calls() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let req = check_req(ids[0]);
        assert!(client.peek_cached(&req).is_none());
        let canned = CompletionResponse {
            text: "yes.".into(),
            usage: crate::types::Usage {
                prompt_tokens: 7,
                completion_tokens: 2,
            },
            finish_reason: crate::types::FinishReason::Stop,
            model: "sim-gpt-3.5-turbo".into(),
            cached: false,
            pricing: Pricing::free(),
            confidence: None,
        };
        client.seed_cache(&req, &canned);
        let hit = client.complete(&req).unwrap();
        assert_eq!(hit.text, "yes.");
        assert!(hit.cached, "seeded entries serve as cache hits");
        assert_eq!(client.stats().calls(), 0, "no backend dispatch");
        assert_eq!(client.ledger().calls(), 0, "seeding charges nothing");
        // Uncacheable requests are ignored.
        let hot = check_req(ids[0]).with_temperature(0.9);
        client.seed_cache(&hot, &canned);
        assert!(client.peek_cached(&hot).is_none());
    }

    #[test]
    fn coalescing_disabled_still_caches() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm).without_coalescing();
        let req = check_req(ids[0]);
        client.complete(&req).unwrap();
        let b = client.complete(&req).unwrap();
        assert!(b.cached);
        assert_eq!(client.stats().calls(), 1);
        assert_eq!(client.stats().coalesced(), 0);
    }

    fn store_temp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "crowdprompt-client-store-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    fn store_cleanup(path: &std::path::Path) {
        std::fs::remove_file(path).ok();
        let mut lock = path.as_os_str().to_os_string();
        lock.push(".lock");
        std::fs::remove_file(std::path::PathBuf::from(lock)).ok();
    }

    #[test]
    fn store_warm_start_serves_without_backend_and_bit_identical() {
        use crate::store::{ResponseStore, StoreConfig};
        let path = store_temp_path("warm");
        let (world, ids) = world_and_ids(8);
        let requests: Vec<CompletionRequest> = ids.iter().map(|&id| check_req(id)).collect();

        // Process 1: cold run populates the store through the miss path.
        let cold_responses: Vec<CompletionResponse> = {
            let llm = Arc::new(SimulatedLlm::new(
                ModelProfile::perfect(),
                Arc::clone(&world),
                1,
            ));
            let client = LlmClient::new(llm).with_store(Arc::new(
                ResponseStore::open(&path, StoreConfig::default()).unwrap(),
            ));
            let out: Vec<CompletionResponse> = requests
                .iter()
                .map(|r| client.complete(r).unwrap())
                .collect();
            assert_eq!(client.stats().calls(), requests.len() as u64);
            assert_eq!(client.store().unwrap().len(), requests.len());
            out
        };

        // Process 2 (simulated): fresh client, fresh in-memory cache, same
        // store file — every request is a store hit, zero backend calls,
        // zero ledger spend, results bit-identical apart from the cached
        // marking.
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm).with_store(Arc::new(
            ResponseStore::open(&path, StoreConfig::default()).unwrap(),
        ));
        for (req, cold) in requests.iter().zip(&cold_responses) {
            let warm = client.complete(req).unwrap();
            assert!(warm.cached, "store hits are marked cached");
            assert_eq!(warm.text, cold.text);
            assert_eq!(warm.usage, cold.usage);
            assert_eq!(warm.model, cold.model);
            assert_eq!(warm.confidence, cold.confidence);
        }
        assert_eq!(client.stats().calls(), 0, "warm start: no backend calls");
        assert_eq!(client.stats().store_hits(), requests.len() as u64);
        assert_eq!(client.ledger().calls(), 0, "store hits charge nothing");
        assert!(client.ledger().spend_usd() < f64::EPSILON);
        // Second pass is served by the re-seeded in-memory shards.
        for req in &requests {
            assert!(client.complete(req).unwrap().cached);
        }
        assert_eq!(client.stats().store_hits(), requests.len() as u64);
        assert!(client.stats().cache_hits() >= requests.len() as u64);
        store_cleanup(&path);
    }

    #[test]
    fn peek_cached_consults_store_exact_tier() {
        use crate::store::{ResponseStore, StoreConfig};
        let path = store_temp_path("peek");
        let (world, ids) = world_and_ids(1);
        let req = check_req(ids[0]);
        {
            let llm = Arc::new(SimulatedLlm::new(
                ModelProfile::perfect(),
                Arc::clone(&world),
                1,
            ));
            let client = LlmClient::new(llm).with_store(Arc::new(
                ResponseStore::open(&path, StoreConfig::default()).unwrap(),
            ));
            client.complete(&req).unwrap();
        }
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm).with_store(Arc::new(
            ResponseStore::open(&path, StoreConfig::default()).unwrap(),
        ));
        let peeked = client.peek_cached(&req).expect("exact store hit via peek");
        assert!(peeked.cached);
        assert_eq!(client.stats().calls(), 0);
        assert_eq!(client.stats().store_hits(), 1);
        store_cleanup(&path);
    }

    #[test]
    fn semantic_tier_answers_near_duplicate_prompts() {
        use crate::store::{ResponseStore, SemanticConfig, StoreConfig};
        let path = store_temp_path("semantic");
        let config = StoreConfig {
            semantic: Some(SemanticConfig::new(0.4)),
            ..StoreConfig::default()
        };
        let (world, ids) = world_and_ids(1);
        let base = check_req(ids[0]);
        {
            let llm = Arc::new(SimulatedLlm::new(
                ModelProfile::perfect(),
                Arc::clone(&world),
                1,
            ));
            let client = LlmClient::new(llm).with_store(Arc::new(
                ResponseStore::open(&path, config.clone()).unwrap(),
            ));
            client.complete(&base).unwrap();
        }
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client =
            LlmClient::new(llm).with_store(Arc::new(ResponseStore::open(&path, config).unwrap()));
        // A near-duplicate prompt: different fingerprint, close embedding.
        let near = CompletionRequest::new(
            format!("Does item {} satisfy p??", ids[0].0),
            TaskDescriptor::CheckPredicate {
                item: ids[0],
                predicate: "p".into(),
            },
        );
        let expect = {
            // What the exact tier stored for the base request.
            client.store().unwrap().lookup(base.fingerprint()).unwrap()
        };
        let hit = client.complete(&near).unwrap();
        assert!(hit.cached, "semantic hits serve as cache hits");
        assert_eq!(hit.text, expect.text);
        assert_eq!(client.stats().calls(), 0);
        assert_eq!(client.stats().semantic_hits(), 1);
        assert_eq!(client.ledger().calls(), 0);
        // Repeat of the same near-duplicate is now an in-memory hit.
        assert!(client.complete(&near).unwrap().cached);
        assert_eq!(client.stats().semantic_hits(), 1);
        store_cleanup(&path);
    }

    #[test]
    fn semantic_misses_fall_through_to_backend_and_admit() {
        use crate::store::{ResponseStore, SemanticConfig, StoreConfig};
        let path = store_temp_path("fallthrough");
        let config = StoreConfig {
            semantic: Some(SemanticConfig::new(0.05)),
            ..StoreConfig::default()
        };
        let (world, ids) = world_and_ids(2);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client =
            LlmClient::new(llm).with_store(Arc::new(ResponseStore::open(&path, config).unwrap()));
        client.complete(&check_req(ids[0])).unwrap();
        // A clearly different prompt under a tight threshold: backend call.
        client.complete(&check_req(ids[1])).unwrap();
        assert_eq!(client.stats().calls(), 2);
        assert_eq!(client.stats().semantic_hits(), 0);
        assert_eq!(client.store().unwrap().len(), 2, "both admitted");
        store_cleanup(&path);
    }

    #[test]
    fn attach_store_is_attach_once() {
        use crate::store::{ResponseStore, StoreConfig};
        let (path_a, path_b) = (store_temp_path("once-a"), store_temp_path("once-b"));
        let (world, _) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        assert!(client.store().is_none());
        let first = Arc::new(ResponseStore::open(&path_a, StoreConfig::default()).unwrap());
        assert!(client.attach_store(Arc::clone(&first)));
        let second = Arc::new(ResponseStore::open(&path_b, StoreConfig::default()).unwrap());
        assert!(!client.attach_store(second), "second attach refused");
        assert!(Arc::ptr_eq(client.store().unwrap(), &first));
        store_cleanup(&path_a);
        store_cleanup(&path_b);
    }
}
