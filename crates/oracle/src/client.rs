//! Client-side wrapper over a [`LanguageModel`]: retries, response caching,
//! cost accounting, and parallel dispatch.
//!
//! This is the layer a production deployment would point at a network
//! backend; the declarative engine only ever talks to an [`LlmClient`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use std::collections::HashMap;

use crate::error::LlmError;
use crate::pricing::CostLedger;
use crate::types::{CompletionRequest, CompletionResponse, LanguageModel};

/// Retry behaviour for transient (retryable) errors.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per call (>= 1).
    pub max_attempts: u32,
    /// Base backoff per retry in milliseconds; `0` disables sleeping, which
    /// keeps simulated experiments fast while preserving retry *logic*.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        }
    }
}

/// Counters describing client behaviour, for traces and tests.
#[derive(Debug, Default)]
pub struct ClientStats {
    calls: AtomicU64,
    cache_hits: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
}

impl ClientStats {
    /// Completed (non-cached) backend calls.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
    /// Requests served from the response cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }
    /// Retry attempts performed (beyond first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
    /// Calls that ultimately failed.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

/// A caching, retrying client over any [`LanguageModel`].
pub struct LlmClient {
    model: Arc<dyn LanguageModel>,
    retry: RetryPolicy,
    cache: Mutex<HashMap<u64, CompletionResponse>>,
    ledger: CostLedger,
    stats: ClientStats,
    cache_enabled: bool,
}

impl LlmClient {
    /// Wrap a model with the default retry policy and caching enabled.
    pub fn new(model: Arc<dyn LanguageModel>) -> Self {
        LlmClient {
            model,
            retry: RetryPolicy::default(),
            cache: Mutex::new(HashMap::new()),
            ledger: CostLedger::new(),
            stats: ClientStats::default(),
            cache_enabled: true,
        }
    }

    /// Override the retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Disable the temperature-0 response cache (builder style).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<dyn LanguageModel> {
        &self.model
    }

    /// Accumulated usage and spend across all calls on this client.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Execute one request with caching and retries.
    ///
    /// Only temperature-0 requests are cached (they are deterministic).
    /// Retryable errors are retried up to the policy's `max_attempts`, with
    /// the request's `sample_index` bumped per attempt so the simulator's
    /// transport-failure draw is re-rolled (matching how a real retry hits a
    /// different server moment).
    pub fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let cacheable = self.cache_enabled && request.temperature == 0.0;
        let key = request.fingerprint();
        if cacheable {
            if let Some(mut hit) = self.cache.lock().get(&key).cloned() {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                hit.cached = true;
                return Ok(hit);
            }
        }

        let mut attempt = 0u32;
        let mut last_err: Option<LlmError> = None;
        while attempt < self.retry.max_attempts.max(1) {
            let mut req = request.clone();
            req.sample_index = request.sample_index.wrapping_add(attempt);
            match self.model.complete(&req) {
                Ok(resp) => {
                    self.stats.calls.fetch_add(1, Ordering::Relaxed);
                    self.ledger.record(resp.usage, self.model.pricing());
                    if cacheable {
                        self.cache.lock().insert(key, resp.clone());
                    }
                    return Ok(resp);
                }
                Err(e) if e.is_retryable() => {
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    if self.retry.backoff_ms > 0 {
                        let wait = self.retry.backoff_ms.saturating_mul(u64::from(attempt));
                        std::thread::sleep(std::time::Duration::from_millis(wait));
                    }
                    last_err = Some(e);
                }
                Err(e) => {
                    self.stats.failures.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            }
        }
        self.stats.failures.fetch_add(1, Ordering::Relaxed);
        Err(LlmError::RetriesExhausted {
            attempts: self.retry.max_attempts,
            last: Box::new(last_err.unwrap_or(LlmError::ServiceUnavailable)),
        })
    }

    /// Execute a batch of requests across `parallelism` worker threads,
    /// preserving input order in the output.
    ///
    /// This models the fan-out a production orchestrator performs against a
    /// rate-limited API; with the simulator it also meaningfully speeds up
    /// the O(n²) pairwise experiments.
    pub fn complete_many(
        &self,
        requests: &[CompletionRequest],
        parallelism: usize,
    ) -> Vec<Result<CompletionResponse, LlmError>> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = parallelism.clamp(1, n);
        if workers == 1 {
            return requests.iter().map(|r| self.complete(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<CompletionResponse, LlmError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = self.complete(&requests[i]);
                    *results[i].lock() = Some(out);
                });
            }
        })
        .expect("worker thread panicked");
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every slot filled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelProfile, NoiseProfile};
    use crate::sim::SimulatedLlm;
    use crate::task::TaskDescriptor;
    use crate::world::WorldModel;

    fn world_and_ids(n: usize) -> (Arc<WorldModel>, Vec<crate::world::ItemId>) {
        let mut w = WorldModel::new();
        let ids = (0..n)
            .map(|i| {
                let id = w.add_item(format!("item {i}"));
                w.set_flag(id, "p", i % 2 == 0);
                id
            })
            .collect();
        (Arc::new(w), ids)
    }

    fn check_req(id: crate::world::ItemId) -> CompletionRequest {
        CompletionRequest::new(
            format!("Does item {} satisfy p?", id.0),
            TaskDescriptor::CheckPredicate {
                item: id,
                predicate: "p".into(),
            },
        )
    }

    #[test]
    fn cache_hits_deterministic_requests() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let req = check_req(ids[0]);
        let a = client.complete(&req).unwrap();
        let b = client.complete(&req).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.usage, b.usage);
        assert!(!a.cached);
        assert!(b.cached);
        assert_eq!(client.stats().calls(), 1);
        assert_eq!(client.stats().cache_hits(), 1);
        // Ledger only charged once.
        assert_eq!(client.ledger().calls(), 1);
    }

    #[test]
    fn no_cache_for_positive_temperature() {
        let (world, ids) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let req = check_req(ids[0]).with_temperature(0.7);
        client.complete(&req).unwrap();
        client.complete(&req).unwrap();
        assert_eq!(client.stats().calls(), 2);
        assert_eq!(client.stats().cache_hits(), 0);
    }

    #[test]
    fn retries_transient_failures_then_succeeds() {
        let (world, ids) = world_and_ids(1);
        // ~50% rate-limit probability: with 5 attempts success is near-certain.
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            rate_limit_prob: 0.5,
            ..NoiseProfile::perfect()
        });
        let llm = Arc::new(SimulatedLlm::new(profile, world, 42));
        let client = LlmClient::new(llm).with_retry(RetryPolicy {
            max_attempts: 10,
            backoff_ms: 0,
        });
        let mut succeeded = 0;
        for i in 0..20 {
            let req = check_req(ids[0]).with_sample_index(i * 100);
            if client.complete(&req).is_ok() {
                succeeded += 1;
            }
        }
        assert!(succeeded >= 19, "succeeded {succeeded}/20");
        assert!(client.stats().retries() > 0);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let (world, _) = world_and_ids(1);
        let llm = Arc::new(SimulatedLlm::new(
            ModelProfile::perfect().with_context_window(4),
            world,
            1,
        ));
        let client = LlmClient::new(llm);
        let req = CompletionRequest::new(
            "a prompt that is definitely longer than four tokens in total",
            TaskDescriptor::CheckPredicate {
                item: crate::world::ItemId(0),
                predicate: "p".into(),
            },
        );
        assert!(matches!(
            client.complete(&req),
            Err(LlmError::ContextOverflow { .. })
        ));
        assert_eq!(client.stats().retries(), 0);
        assert_eq!(client.stats().failures(), 1);
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let (world, ids) = world_and_ids(1);
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            rate_limit_prob: 1.0,
            ..NoiseProfile::perfect()
        });
        let llm = Arc::new(SimulatedLlm::new(profile, world, 1));
        let client = LlmClient::new(llm).with_retry(RetryPolicy {
            max_attempts: 3,
            backoff_ms: 0,
        });
        match client.complete(&check_req(ids[0])) {
            Err(LlmError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, LlmError::RateLimited { .. }));
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn complete_many_preserves_order() {
        let (world, ids) = world_and_ids(50);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        let reqs: Vec<CompletionRequest> = ids.iter().map(|id| check_req(*id)).collect();
        let parallel = client.complete_many(&reqs, 8);
        let serial: Vec<_> = reqs.iter().map(|r| client.complete(r)).collect();
        for (p, s) in parallel.iter().zip(serial.iter()) {
            assert_eq!(p.as_ref().unwrap().text, s.as_ref().unwrap().text);
        }
    }

    #[test]
    fn complete_many_empty_and_single_worker() {
        let (world, ids) = world_and_ids(3);
        let llm = Arc::new(SimulatedLlm::new(ModelProfile::perfect(), world, 1));
        let client = LlmClient::new(llm);
        assert!(client.complete_many(&[], 4).is_empty());
        let reqs: Vec<CompletionRequest> = ids.iter().map(|id| check_req(*id)).collect();
        let out = client.complete_many(&reqs, 1);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(Result::is_ok));
    }
}
