//! Error types surfaced by language-model backends and clients.

use std::fmt;

/// Errors produced when invoking a language model.
///
/// These mirror the failure modes of production LLM APIs so that client code
/// (retry loops, budget guards, extraction fallbacks) exercises realistic
/// paths even against the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The rendered prompt exceeds the model's context window.
    ContextOverflow {
        /// Tokens in the offending prompt.
        prompt_tokens: u32,
        /// The model's maximum context size.
        context_window: u32,
    },
    /// The provider rejected the request due to rate limiting.
    ///
    /// Carries a suggested backoff in milliseconds, like a `Retry-After`
    /// header would.
    RateLimited {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Transient provider-side failure (HTTP 5xx equivalent).
    ServiceUnavailable,
    /// The call hung past its deadline and was abandoned (client-side
    /// timeout). Retryable: a retry hits a different server moment.
    Timeout {
        /// How long the call waited before being abandoned, in milliseconds.
        elapsed_ms: u64,
    },
    /// The call was cancelled by its dispatcher (e.g. a hedged request whose
    /// twin answered first). Not retryable — cancellation is deliberate.
    Cancelled,
    /// Every backend serving the model tier is circuit-broken (failing
    /// repeatedly and cooling down); no call was attempted.
    CircuitOpen {
        /// The model tier whose backends are all open.
        model: String,
        /// Milliseconds until the *earliest* breaker admits a half-open
        /// probe. Callers can schedule around the cooldown (sleep this
        /// long, then retry) instead of blind-retrying into a tier that is
        /// guaranteed to reject them. `0` when a probe is already
        /// admissible (e.g. the half-open slot was momentarily claimed).
        retry_in_ms: u64,
    },
    /// The request referenced an unknown model name.
    UnknownModel(String),
    /// A budget guard refused to admit the call.
    BudgetExhausted {
        /// Cost the call would have incurred, in USD.
        needed_usd: f64,
        /// Budget remaining at refusal time, in USD.
        remaining_usd: f64,
    },
    /// The request payload was structurally invalid (e.g. empty item list).
    InvalidRequest(String),
    /// Retries were exhausted without a successful response.
    RetriesExhausted {
        /// Number of attempts made.
        attempts: u32,
        /// The final error encountered.
        last: Box<LlmError>,
    },
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ContextOverflow {
                prompt_tokens,
                context_window,
            } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds context window of {context_window}"
            ),
            LlmError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited; retry after {retry_after_ms} ms")
            }
            LlmError::ServiceUnavailable => write!(f, "service temporarily unavailable"),
            LlmError::Timeout { elapsed_ms } => {
                write!(f, "call timed out after {elapsed_ms} ms")
            }
            LlmError::Cancelled => write!(f, "call cancelled by dispatcher"),
            LlmError::CircuitOpen { model, retry_in_ms } => {
                write!(
                    f,
                    "all backends for model '{model}' are circuit-broken; earliest probe in {retry_in_ms} ms"
                )
            }
            LlmError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            LlmError::BudgetExhausted {
                needed_usd,
                remaining_usd,
            } => write!(
                f,
                "budget exhausted: call needs ${needed_usd:.6} but only ${remaining_usd:.6} remains"
            ),
            LlmError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            LlmError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts; last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for LlmError {}

impl LlmError {
    /// Whether a retry of the identical request could plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            LlmError::RateLimited { .. } | LlmError::ServiceUnavailable | LlmError::Timeout { .. }
        )
    }

    /// The server's (or breaker's) own suggestion for when a retry could
    /// succeed, in milliseconds: a 429's `Retry-After` or an open circuit's
    /// earliest half-open probe time. `None` for errors that carry no
    /// scheduling hint.
    pub fn retry_hint_ms(&self) -> Option<u64> {
        match self {
            LlmError::RateLimited { retry_after_ms } => Some(*retry_after_ms),
            LlmError::CircuitOpen { retry_in_ms, .. } => Some(*retry_in_ms),
            LlmError::RetriesExhausted { last, .. } => last.retry_hint_ms(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(LlmError::RateLimited { retry_after_ms: 10 }.is_retryable());
        assert!(LlmError::ServiceUnavailable.is_retryable());
        assert!(LlmError::Timeout { elapsed_ms: 100 }.is_retryable());
        assert!(!LlmError::Cancelled.is_retryable());
        assert!(!LlmError::CircuitOpen {
            model: "m".into(),
            retry_in_ms: 5
        }
        .is_retryable());
        assert!(!LlmError::ContextOverflow {
            prompt_tokens: 10,
            context_window: 5
        }
        .is_retryable());
        assert!(!LlmError::UnknownModel("x".into()).is_retryable());
        assert!(!LlmError::InvalidRequest("empty".into()).is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = LlmError::ContextOverflow {
            prompt_tokens: 9000,
            context_window: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("9000"));
        assert!(s.contains("4096"));

        let e = LlmError::RetriesExhausted {
            attempts: 3,
            last: Box::new(LlmError::ServiceUnavailable),
        };
        assert!(e.to_string().contains("3 attempts"));
    }

    #[test]
    fn retry_hints_surface_scheduling_information() {
        assert_eq!(
            LlmError::RateLimited { retry_after_ms: 75 }.retry_hint_ms(),
            Some(75)
        );
        assert_eq!(
            LlmError::CircuitOpen {
                model: "m".into(),
                retry_in_ms: 40
            }
            .retry_hint_ms(),
            Some(40)
        );
        // The hint tunnels through an exhaustion wrapper.
        assert_eq!(
            LlmError::RetriesExhausted {
                attempts: 3,
                last: Box::new(LlmError::RateLimited { retry_after_ms: 20 }),
            }
            .retry_hint_ms(),
            Some(20)
        );
        assert_eq!(LlmError::ServiceUnavailable.retry_hint_ms(), None);
    }

    #[test]
    fn budget_error_reports_amounts() {
        let e = LlmError::BudgetExhausted {
            needed_usd: 0.5,
            remaining_usd: 0.25,
        };
        let s = e.to_string();
        assert!(s.contains("0.5"));
        assert!(s.contains("0.25"));
    }
}
