//! Small deterministic hashing utilities.
//!
//! Experiment reproducibility requires that every pseudo-random decision be a
//! pure function of (seed, request content). The standard library's `Hasher`
//! is randomly keyed per process, so we implement FNV-1a and a splitmix-style
//! mixer here and use them everywhere a stable fingerprint is needed.

/// 64-bit FNV-1a over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a over a string.
#[inline]
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// Combine two hashes into one (order-sensitive).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    // splitmix64 finalizer over the xor-rotated pair; cheap and well mixed.
    mix(a ^ b.rotate_left(32))
}

/// splitmix64 finalizer: turns a counter or weak hash into a well-mixed value.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Format a 64-bit value as fixed-width lowercase hex — the canonical
/// on-disk rendering of fingerprints, checksums, and `f64` bit patterns
/// in the record logs ([`crate::recordlog`], [`crate::store`]).
#[inline]
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Parse a [`hex64`]-formatted field: exactly 16 hex digits, nothing
/// else. Stricter than raw `u64::from_str_radix` (no sign, no width
/// variance), so a corrupted or truncated log field never aliases a
/// valid one.
#[inline]
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// An incremental FNV-1a hasher for fingerprinting structured values.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// Start a fresh fingerprint.
    pub fn new() -> Self {
        Fingerprint(0xcbf29ce484222325)
    }

    /// Fold raw bytes into the fingerprint.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        const PRIME: u64 = 0x100000001b3;
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Fold a string (length-prefixed, so `"ab","c"` differs from `"a","bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Fold an `f64` (by bit pattern; NaN payloads are preserved).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Finish, returning the mixed 64-bit digest.
    pub fn finish(&self) -> u64 {
        mix(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_is_length_prefixed() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_deterministic() {
        let digest = |payload: &str| {
            let mut f = Fingerprint::new();
            f.write_str(payload).write_u64(7).write_f64(0.25);
            f.finish()
        };
        assert_eq!(digest("hello"), digest("hello"));
        assert_ne!(digest("hello"), digest("hellp"));
    }

    #[test]
    fn combine_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn hex64_roundtrips_and_parse_is_strict() {
        for v in [0, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v));
        }
        assert_eq!(hex64(0xff).len(), 16);
        assert_eq!(parse_hex64("ff"), None); // width-variant
        assert_eq!(parse_hex64("+00000000000000ff"), None); // signed
        assert_eq!(parse_hex64("00000000000000fg"), None); // non-hex
        assert_eq!(parse_hex64("00000000000000ff0"), None); // too long
    }

    #[test]
    fn mix_spreads_counters() {
        // Consecutive counters should produce wildly different values.
        let a = mix(1);
        let b = mix(2);
        assert_ne!(a >> 32, b >> 32);
    }
}
