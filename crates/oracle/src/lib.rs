//! Simulated LLM oracle substrate for `crowdprompt`.
//!
//! The paper's experiments call commercial chat-completion APIs. This crate
//! provides the same *shape* of API — a [`LanguageModel`] trait with requests,
//! responses, token usage, pricing, context-window limits, and failure modes —
//! backed by a deterministic, seeded **noisy oracle** ([`SimulatedLlm`])
//! instead of a network service.
//!
//! The simulator executes the *structured* payload of each unit task (a
//! [`TaskDescriptor`]) against a latent [`WorldModel`] with noise models
//! calibrated to the behaviours the paper names:
//!
//! * distance-dependent pairwise-comparison errors (Thurstone-style),
//! * rating quantization noise,
//! * list-task omissions and hallucinations that grow with list length,
//! * positional "lost in the middle" bias,
//! * false-negative-heavy duplicate detection,
//! * formatting-variant imputation answers, and
//! * free-text chatter around answers (exercising downstream extraction).
//!
//! Client-side concerns — retries, caching, rate limiting, parallel dispatch,
//! and cost accounting — live in [`LlmClient`].

#![warn(missing_docs)]

pub mod backend;
pub mod chatter;
pub mod client;
pub mod error;
pub mod hash;
pub mod model;
pub mod pricing;
pub mod recordlog;
pub mod retry;
pub mod route;
pub mod sim;
pub mod store;
pub mod task;
pub mod tokenizer;
pub mod types;
pub mod world;

pub use backend::{
    Backend, BackendRegistry, CancelToken, FaultKind, FaultSchedule, FaultWindow, LatencyProfile,
    SimBackend,
};
pub use client::{ClientStats, LlmClient, RetryPolicy};
pub use error::LlmError;
pub use model::{ModelProfile, NoiseProfile};
pub use pricing::{CostLedger, Pricing};
pub use route::{
    BreakerConfig, HedgeConfig, LeaseTable, RoutePolicy, Router, RouterStats, SlotLease,
};
pub use sim::SimulatedLlm;
pub use store::{ResponseStore, SemanticConfig, SemanticHit, StoreConfig};
pub use task::{CountMode, SortCriterion, TaskDescriptor};
pub use tokenizer::count_tokens;
pub use types::{CompletionRequest, CompletionResponse, FinishReason, LanguageModel, Usage};
pub use world::{ItemId, WorldModel};
