//! Model profiles: context window, pricing, and the calibrated noise model.

use crate::pricing::Pricing;

/// Noise characteristics of a simulated model.
///
/// Each field maps to a failure mode the paper observes in real LLMs. The
/// presets below are calibrated so the four case-study tables come out with
/// the same *shape* as the paper's numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseProfile {
    // -- pairwise comparisons ------------------------------------------------
    /// Thurstone noise scale for latent-score comparisons: the probability of
    /// ordering a pair correctly is `sigmoid(|Δscore| / compare_sigma)`.
    /// Smaller values mean a sharper, more reliable comparator.
    pub compare_sigma: f64,
    /// Base error probability for lexicographic comparisons.
    pub compare_lex_error: f64,
    /// Extra lexicographic error proportional to the common-prefix ratio of
    /// the two keys (words sharing long prefixes are harder to order).
    pub compare_lex_prefix_penalty: f64,
    /// Additive bias toward preferring the first-listed item (the paper's
    /// sort-then-insert runs each comparison in both orders to cancel this).
    pub position_bias: f64,
    /// Per-extra-pair multiplicative inflation of `compare_sigma` (and of
    /// the lexicographic error) when comparisons are batched into one
    /// prompt: a batch of `b` pairs behaves like a comparator with noise
    /// scale `sigma * (1 + batch_penalty * (b - 1))`.
    pub compare_batch_penalty: f64,

    // -- ratings -------------------------------------------------------------
    /// Standard deviation of noise added to the normalized (0..1) latent
    /// score before quantizing onto the rating scale.
    pub rate_sigma: f64,

    // -- whole-list sorting --------------------------------------------------
    /// Rank jitter for low-salience items in a single-prompt sort, as a
    /// fraction of the list length.
    pub sort_jitter: f64,
    /// Salience threshold above which an item is placed confidently.
    pub sort_salience_threshold: f64,
    /// Per-item omission probability for a list of `sort_drop_ref_len` items;
    /// scales linearly with list length.
    pub sort_drop_rate: f64,
    /// Reference list length at which `sort_drop_rate` applies.
    pub sort_drop_ref_len: usize,
    /// Multiplier (>= 1) applied to the drop rate for items in the middle
    /// third of the prompt ("lost in the middle").
    pub sort_middle_bias: f64,
    /// Per-item probability of emitting a hallucinated (mutated) entry.
    pub sort_halluc_rate: f64,

    // -- entity resolution ---------------------------------------------------
    /// P(say "yes" | true duplicates) for a maximally *easy* pair
    /// (near-identical strings).
    pub er_recall_easy: f64,
    /// P(say "yes" | true duplicates) for a maximally *hard* pair.
    pub er_recall_hard: f64,
    /// P(say "yes" | true non-duplicates) for dissimilar pairs.
    pub er_fp_base: f64,
    /// Extra false-positive probability for highly similar non-duplicates.
    pub er_fp_similar: f64,
    /// Probability a coarse grouping task wrongly merges two clusters.
    pub group_merge_error: f64,
    /// Probability a coarse grouping task wrongly splits a cluster.
    pub group_split_error: f64,

    // -- imputation ----------------------------------------------------------
    /// Probability of producing the *semantically* correct attribute value
    /// with zero few-shot examples.
    pub impute_base_acc: f64,
    /// Additive accuracy per few-shot example (saturating at
    /// `impute_max_acc`).
    pub impute_shot_bonus: f64,
    /// Accuracy ceiling with examples.
    pub impute_max_acc: f64,
    /// Probability that a semantically correct answer is rendered as a
    /// formatting variant ("TomTom" for "Tom Tom") — penalized by
    /// exact-match scoring, as the paper notes. Halves with each example.
    pub impute_format_variant_rate: f64,

    // -- counting / predicates / classification ------------------------------
    /// Noise (std dev, as a fraction) on eyeballed proportion estimates.
    pub eyeball_sigma: f64,
    /// Accuracy of fine-grained per-item predicate checks.
    pub check_accuracy: f64,
    /// Accuracy of classification tasks.
    pub classify_accuracy: f64,
    /// Accuracy of verification tasks (saying whether an answer is right).
    pub verify_accuracy: f64,

    // -- response surface ----------------------------------------------------
    /// Probability of wrapping an answer in contradictory chatter (the
    /// paper's "They are not the same... They are the same." failure).
    pub malformed_rate: f64,
    /// How verbose the chatter around answers is, in `[0,1]`.
    pub chatter_level: f64,
    /// Probability that a multi-item packed prompt's numbered answer list
    /// comes back unusable (a dropped or duplicated line — the numbered-list
    /// failure mode long prompts exhibit), forcing the dispatcher to bisect
    /// the pack and retry. Applies only to packs of more than one item.
    pub packed_dropout_rate: f64,

    // -- transport failure injection ------------------------------------------
    /// Probability a call fails with `RateLimited` (retryable).
    pub rate_limit_prob: f64,
    /// Probability a call fails with `ServiceUnavailable` (retryable).
    pub unavailable_prob: f64,
    /// Probability a call hangs past its deadline and fails with `Timeout`
    /// (retryable). When injected at the transport layer
    /// ([`crate::backend::SimBackend`]) the call burns its full straggler
    /// latency before failing, so timeouts cost wall-clock as well as a
    /// retry — the failure mode hedged dispatch exists for.
    pub timeout_prob: f64,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        NoiseProfile {
            compare_sigma: 0.15,
            compare_lex_error: 0.02,
            compare_lex_prefix_penalty: 0.10,
            position_bias: 0.04,
            compare_batch_penalty: 0.06,
            rate_sigma: 0.24,
            sort_jitter: 0.72,
            sort_salience_threshold: 0.75,
            sort_drop_rate: 0.05,
            sort_drop_ref_len: 100,
            sort_middle_bias: 1.8,
            sort_halluc_rate: 0.006,
            er_recall_easy: 0.95,
            er_recall_hard: 0.33,
            er_fp_base: 0.008,
            er_fp_similar: 0.15,
            group_merge_error: 0.08,
            group_split_error: 0.12,
            impute_base_acc: 0.80,
            impute_shot_bonus: 0.04,
            impute_max_acc: 0.93,
            impute_format_variant_rate: 0.18,
            eyeball_sigma: 0.08,
            check_accuracy: 0.92,
            classify_accuracy: 0.90,
            verify_accuracy: 0.85,
            malformed_rate: 0.01,
            chatter_level: 0.4,
            packed_dropout_rate: 0.02,
            rate_limit_prob: 0.0,
            unavailable_prob: 0.0,
            timeout_prob: 0.0,
        }
    }
}

impl NoiseProfile {
    /// A noiseless oracle: every answer is correct, no chatter, no failures.
    /// Useful for testing engine plumbing in isolation.
    pub fn perfect() -> Self {
        NoiseProfile {
            compare_sigma: 1e-9,
            compare_lex_error: 0.0,
            compare_lex_prefix_penalty: 0.0,
            position_bias: 0.0,
            compare_batch_penalty: 0.0,
            rate_sigma: 0.0,
            sort_jitter: 0.0,
            sort_salience_threshold: 0.0,
            sort_drop_rate: 0.0,
            sort_drop_ref_len: 100,
            sort_middle_bias: 1.0,
            sort_halluc_rate: 0.0,
            er_recall_easy: 1.0,
            er_recall_hard: 1.0,
            er_fp_base: 0.0,
            er_fp_similar: 0.0,
            group_merge_error: 0.0,
            group_split_error: 0.0,
            impute_base_acc: 1.0,
            impute_shot_bonus: 0.0,
            impute_max_acc: 1.0,
            impute_format_variant_rate: 0.0,
            eyeball_sigma: 0.0,
            check_accuracy: 1.0,
            classify_accuracy: 1.0,
            verify_accuracy: 1.0,
            malformed_rate: 0.0,
            chatter_level: 0.0,
            packed_dropout_rate: 0.0,
            rate_limit_prob: 0.0,
            unavailable_prob: 0.0,
            timeout_prob: 0.0,
        }
    }
}

/// Full description of a simulated model: identity, limits, billing, noise.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Stable model name.
    pub name: String,
    /// Context window in tokens.
    pub context_window: u32,
    /// Billing schedule.
    pub pricing: Pricing,
    /// Default completion-token cap when a request does not set one.
    pub default_max_tokens: u32,
    /// Calibrated noise model.
    pub noise: NoiseProfile,
}

impl ModelProfile {
    /// A gpt-3.5-turbo-like chat model: 4k context, cheap, moderately noisy.
    ///
    /// Used for the T1 (flavor sorting) and T3 (entity resolution) studies.
    pub fn gpt35_like() -> Self {
        ModelProfile {
            name: "sim-gpt-3.5-turbo".into(),
            context_window: 4096,
            pricing: Pricing::new(0.0015, 0.002),
            default_max_tokens: 1024,
            noise: NoiseProfile::default(),
        }
    }

    /// A Claude-2-like model: 100k context, pricier, calibrated so a
    /// 100-item single-prompt sort drops ~4–7 items and hallucinates 0–1
    /// (matching Table 2 of the paper).
    pub fn claude2_like() -> Self {
        ModelProfile {
            name: "sim-claude-2".into(),
            context_window: 100_000,
            pricing: Pricing::new(0.008, 0.024),
            default_max_tokens: 4096,
            noise: NoiseProfile {
                compare_lex_error: 0.04,
                compare_lex_prefix_penalty: 0.18,
                sort_drop_rate: 0.055,
                sort_drop_ref_len: 100,
                sort_halluc_rate: 0.005,
                sort_jitter: 0.02,
                sort_salience_threshold: 0.0,
                ..NoiseProfile::default()
            },
        }
    }

    /// A small, cheap, noisier open model — the kind of low-cost proxy §3.4
    /// suggests routing easy cases to.
    pub fn small_proxy() -> Self {
        ModelProfile {
            name: "sim-small-proxy".into(),
            context_window: 2048,
            pricing: Pricing::new(0.0002, 0.0004),
            default_max_tokens: 512,
            noise: NoiseProfile {
                compare_sigma: 0.35,
                rate_sigma: 0.22,
                er_recall_easy: 0.85,
                er_recall_hard: 0.15,
                er_fp_base: 0.03,
                impute_base_acc: 0.6,
                impute_max_acc: 0.75,
                check_accuracy: 0.8,
                classify_accuracy: 0.78,
                verify_accuracy: 0.7,
                malformed_rate: 0.04,
                ..NoiseProfile::default()
            },
        }
    }

    /// A perfect oracle for tests.
    pub fn perfect() -> Self {
        ModelProfile {
            name: "sim-perfect".into(),
            context_window: 1_000_000,
            pricing: Pricing::free(),
            default_max_tokens: 100_000,
            noise: NoiseProfile::perfect(),
        }
    }

    /// Replace the noise profile (builder style).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Replace the context window (builder style).
    #[must_use]
    pub fn with_context_window(mut self, tokens: u32) -> Self {
        self.context_window = tokens;
        self
    }

    /// Replace the name (builder style).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names() {
        let names = [
            ModelProfile::gpt35_like().name,
            ModelProfile::claude2_like().name,
            ModelProfile::small_proxy().name,
            ModelProfile::perfect().name,
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn claude_preset_matches_table2_calibration() {
        let m = ModelProfile::claude2_like();
        // Expected drops at n=100: rate * middle-bias-weighted ~ 4..7.
        let expected = 100.0 * m.noise.sort_drop_rate;
        assert!((3.0..=8.0).contains(&expected));
        assert!(m.context_window >= 50_000);
    }

    #[test]
    fn perfect_noise_is_quiet() {
        let n = NoiseProfile::perfect();
        assert_eq!(n.malformed_rate, 0.0);
        assert_eq!(n.sort_drop_rate, 0.0);
        assert_eq!(n.er_recall_hard, 1.0);
    }

    #[test]
    fn builder_methods() {
        let m = ModelProfile::perfect()
            .with_name("custom")
            .with_context_window(123);
        assert_eq!(m.name, "custom");
        assert_eq!(m.context_window, 123);
    }

    #[test]
    fn proxy_is_cheaper_than_gpt35() {
        let proxy = ModelProfile::small_proxy();
        let gpt = ModelProfile::gpt35_like();
        assert!(proxy.pricing.usd_per_1k_input < gpt.pricing.usd_per_1k_input);
    }
}
