//! Per-token pricing and thread-safe cost accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::types::Usage;

/// Per-1000-token USD rates, with separate input and output prices, mirroring
/// how commercial providers bill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// USD per 1000 prompt (input) tokens.
    pub usd_per_1k_input: f64,
    /// USD per 1000 completion (output) tokens.
    pub usd_per_1k_output: f64,
}

impl Pricing {
    /// A pricing schedule with the given per-1k rates.
    pub const fn new(usd_per_1k_input: f64, usd_per_1k_output: f64) -> Self {
        Pricing {
            usd_per_1k_input,
            usd_per_1k_output,
        }
    }

    /// Zero-cost pricing (useful for free local proxies in hybrid plans).
    pub const fn free() -> Self {
        Pricing::new(0.0, 0.0)
    }

    /// Cost in USD of the given usage under this schedule.
    pub fn cost_usd(&self, usage: Usage) -> f64 {
        f64::from(usage.prompt_tokens) / 1000.0 * self.usd_per_1k_input
            + f64::from(usage.completion_tokens) / 1000.0 * self.usd_per_1k_output
    }
}

/// A thread-safe accumulator of token usage and spend across many calls.
///
/// Internally stores microdollars in an atomic so concurrent workers can
/// record costs without a lock.
#[derive(Debug, Default)]
pub struct CostLedger {
    calls: AtomicU64,
    prompt_tokens: AtomicU64,
    completion_tokens: AtomicU64,
    /// Spend in nano-dollars to keep integer atomics precise.
    nanodollars: AtomicU64,
}

impl CostLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call's usage at the given pricing.
    pub fn record(&self, usage: Usage, pricing: Pricing) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.prompt_tokens
            .fetch_add(u64::from(usage.prompt_tokens), Ordering::Relaxed);
        self.completion_tokens
            .fetch_add(u64::from(usage.completion_tokens), Ordering::Relaxed);
        let nanos = (pricing.cost_usd(usage) * 1e9).round() as u64;
        self.nanodollars.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of calls recorded.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total prompt tokens recorded.
    pub fn prompt_tokens(&self) -> u64 {
        self.prompt_tokens.load(Ordering::Relaxed)
    }

    /// Total completion tokens recorded.
    pub fn completion_tokens(&self) -> u64 {
        self.completion_tokens.load(Ordering::Relaxed)
    }

    /// Total tokens (prompt + completion).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens() + self.completion_tokens()
    }

    /// Total spend in USD.
    pub fn spend_usd(&self) -> f64 {
        self.nanodollars.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Snapshot the ledger as a plain [`Usage`] total.
    pub fn usage(&self) -> Usage {
        Usage {
            prompt_tokens: self.prompt_tokens().min(u64::from(u32::MAX)) as u32,
            completion_tokens: self.completion_tokens().min(u64::from(u32::MAX)) as u32,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.prompt_tokens.store(0, Ordering::Relaxed);
        self.completion_tokens.store(0, Ordering::Relaxed);
        self.nanodollars.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_computation() {
        let p = Pricing::new(0.0015, 0.002);
        let cost = p.cost_usd(Usage {
            prompt_tokens: 1000,
            completion_tokens: 500,
        });
        assert!((cost - (0.0015 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn free_pricing_costs_nothing() {
        let cost = Pricing::free().cost_usd(Usage {
            prompt_tokens: 1_000_000,
            completion_tokens: 1_000_000,
        });
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn ledger_accumulates() {
        let ledger = CostLedger::new();
        let p = Pricing::new(0.001, 0.002);
        for _ in 0..10 {
            ledger.record(
                Usage {
                    prompt_tokens: 100,
                    completion_tokens: 50,
                },
                p,
            );
        }
        assert_eq!(ledger.calls(), 10);
        assert_eq!(ledger.prompt_tokens(), 1000);
        assert_eq!(ledger.completion_tokens(), 500);
        assert!((ledger.spend_usd() - (0.001 + 0.001)).abs() < 1e-9);
        ledger.reset();
        assert_eq!(ledger.calls(), 0);
        assert_eq!(ledger.spend_usd(), 0.0);
    }

    #[test]
    fn ledger_concurrent_records() {
        let ledger = std::sync::Arc::new(CostLedger::new());
        let p = Pricing::new(0.001, 0.001);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = std::sync::Arc::clone(&ledger);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    l.record(
                        Usage {
                            prompt_tokens: 10,
                            completion_tokens: 10,
                        },
                        p,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ledger.calls(), 800);
        assert_eq!(ledger.total_tokens(), 16_000);
    }
}
