//! Shared checksummed line-record codec for append-only logs.
//!
//! Two durable artifacts use the same on-disk discipline: the engine's run
//! journal (`core::journal`) and the persistent response store
//! ([`crate::store::ResponseStore`]). Both are text files of single-line,
//! tab-separated records where every line carries its own FNV-1a checksum,
//! floats are stored as exact bit patterns, appends are single flushed
//! `write_all` calls, and opening verifies the checksummed prefix and
//! truncates a torn tail. This module is the single implementation of that
//! discipline:
//!
//! * [`escape`] / [`unescape`] — single-line framing of arbitrary text,
//! * [`seal_line`] / [`open_line`] — per-line FNV-1a checksum framing,
//! * [`encode_f64_bits`] / [`decode_f64_bits`] — exact float round-trips,
//! * [`encode_response_fields`] / [`decode_response_fields`] — the
//!   fingerprint-keyed [`CompletionResponse`] field codec shared verbatim by
//!   journal and store records,
//! * [`LogFile`] — open-with-recovery, replay, and flushed append.
//!
//! # Crash safety
//!
//! Appends are complete lines flushed per record, so a crash can only lose
//! or tear the *final* line. [`LogFile::open`] walks the file in order,
//! hands each checksum-valid payload to the caller, and truncates at the
//! first torn, corrupt, or structurally rejected line — a damaged tail never
//! poisons a reopen, it merely costs re-deriving the lost records.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::hash::{fnv1a_str, hex64, parse_hex64};
use crate::pricing::Pricing;
use crate::types::{CompletionResponse, FinishReason, Usage};

/// Escape a string for single-line storage (`\` `\t` `\n` `\r`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]; `None` on a malformed escape sequence.
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Frame a payload as one checksummed record line (trailing newline
/// included): `payload \t fnv1a(payload) \n`.
pub fn seal_line(payload: &str) -> String {
    format!("{payload}\t{}\n", hex64(fnv1a_str(payload)))
}

/// Verify and strip a record line's checksum (the line must not include its
/// newline); returns the payload, or `None` on any corruption.
pub fn open_line(line: &str) -> Option<&str> {
    let (payload, checksum) = line.rsplit_once('\t')?;
    if parse_hex64(checksum)? != fnv1a_str(payload) {
        return None;
    }
    Some(payload)
}

/// Render an `f64` as its exact bit pattern in hex — decodes bit-identically,
/// so replayed pricing math reproduces the original run's.
pub fn encode_f64_bits(v: f64) -> String {
    hex64(v.to_bits())
}

/// Invert [`encode_f64_bits`].
pub fn decode_f64_bits(s: &str) -> Option<f64> {
    Some(f64::from_bits(parse_hex64(s)?))
}

/// Number of fields produced by [`encode_response_fields`].
pub const RESPONSE_FIELDS: usize = 9;

/// Encode a fingerprint-keyed [`CompletionResponse`] as the shared
/// tab-separated field sequence (no checksum, no newline):
///
/// ```text
/// fingerprint  text  prompt_tok  completion_tok  finish  model  in_rate  out_rate  confidence
/// ```
///
/// `finish` is `S`top or `L`ength; rates and confidence are f64 bit patterns
/// (`-` for an absent confidence). The `cached` flag is deliberately not
/// stored: a decoded record always starts `cached: false` and the consumer
/// decides how to charge it.
pub fn encode_response_fields(fingerprint: u64, response: &CompletionResponse) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        hex64(fingerprint),
        escape(&response.text),
        response.usage.prompt_tokens,
        response.usage.completion_tokens,
        match response.finish_reason {
            FinishReason::Stop => 'S',
            FinishReason::Length => 'L',
        },
        escape(&response.model),
        encode_f64_bits(response.pricing.usd_per_1k_input),
        encode_f64_bits(response.pricing.usd_per_1k_output),
        match response.confidence {
            Some(c) => encode_f64_bits(c),
            None => "-".to_string(),
        },
    )
}

/// Decode the field sequence produced by [`encode_response_fields`]. Expects
/// exactly [`RESPONSE_FIELDS`] fields; `None` on any structural corruption.
pub fn decode_response_fields(fields: &[&str]) -> Option<(u64, CompletionResponse)> {
    if fields.len() != RESPONSE_FIELDS {
        return None;
    }
    let fingerprint = parse_hex64(fields[0])?;
    let text = unescape(fields[1])?;
    let usage = Usage {
        prompt_tokens: fields[2].parse().ok()?,
        completion_tokens: fields[3].parse().ok()?,
    };
    let finish_reason = match fields[4] {
        "S" => FinishReason::Stop,
        "L" => FinishReason::Length,
        _ => return None,
    };
    let model = unescape(fields[5])?;
    let pricing = Pricing::new(decode_f64_bits(fields[6])?, decode_f64_bits(fields[7])?);
    let confidence = match fields[8] {
        "-" => None,
        bits => Some(decode_f64_bits(bits)?),
    };
    Some((
        fingerprint,
        CompletionResponse {
            text,
            usage,
            finish_reason,
            model,
            cached: false,
            pricing,
            confidence,
        },
    ))
}

/// An append-only checksummed record log: one header line, then one sealed
/// record per line. Owns the append handle; consumers replay records through
/// the `open` callback and append payloads (sealing is handled here).
pub struct LogFile {
    path: PathBuf,
    file: File,
}

/// Read a file's contents as the longest valid UTF-8 prefix. A torn write
/// can cut a multi-byte character in half; the cut falls inside the torn
/// tail that prefix recovery drops anyway.
fn read_valid_utf8_prefix(file: &mut File) -> std::io::Result<String> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    Ok(match String::from_utf8(bytes) {
        Ok(s) => s,
        Err(e) => {
            let valid = e.utf8_error().valid_up_to();
            let mut bytes = e.into_bytes();
            bytes.truncate(valid);
            // lint: allow(no-unwrap) — invariant: valid_up_to-checked prefix
            String::from_utf8(bytes).expect("checked prefix")
        }
    })
}

impl LogFile {
    /// Open (creating if absent) the log at `path` for appending.
    ///
    /// Each existing line is checksum-verified in order and its payload
    /// handed to `on_record`; the walk stops — and the file is truncated —
    /// at the first torn or corrupt line, or when `on_record` returns
    /// `false` (structural rejection by the consumer's own field codec).
    /// A file whose header is present but wrong (another format or version)
    /// is an error rather than silently clobbered.
    pub fn open(
        path: impl AsRef<Path>,
        header: &str,
        mut on_record: impl FnMut(&str) -> bool,
    ) -> std::io::Result<LogFile> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let contents = read_valid_utf8_prefix(&mut file)?;

        let valid_end = if contents.is_empty() {
            let line = format!("{header}\n");
            file.write_all(line.as_bytes())?;
            file.flush()?;
            line.len() as u64
        } else {
            let end = Self::replay(&path, &contents, header, &mut on_record)?;
            // Drop everything after the last valid record and position the
            // append cursor there.
            file.set_len(end)?;
            end
        };
        file.seek(SeekFrom::Start(valid_end))?;
        Ok(LogFile { path, file })
    }

    /// Replay the records of the log at `path` without taking the append
    /// handle and without truncating: the read-only counterpart of
    /// [`LogFile::open`]. Torn or corrupt tails are simply ignored. Errors
    /// if the file does not exist or carries a foreign header.
    pub fn open_read_only(
        path: impl AsRef<Path>,
        header: &str,
        mut on_record: impl FnMut(&str) -> bool,
    ) -> std::io::Result<()> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).open(&path)?;
        let contents = read_valid_utf8_prefix(&mut file)?;
        if contents.is_empty() {
            return Ok(());
        }
        Self::replay(&path, &contents, header, &mut on_record)?;
        Ok(())
    }

    /// Walk `contents` record by record, returning the byte offset of the
    /// end of the valid prefix. Errors on a foreign header.
    fn replay(
        path: &Path,
        contents: &str,
        header: &str,
        on_record: &mut impl FnMut(&str) -> bool,
    ) -> std::io::Result<u64> {
        let Some(rest) = contents
            .strip_prefix(header)
            .and_then(|r| r.strip_prefix('\n'))
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("'{}' is not a {header} file", path.display()),
            ));
        };
        let mut valid_end = (header.len() + 1) as u64;
        for line in rest.split_inclusive('\n') {
            let Some(body) = line.strip_suffix('\n') else {
                break; // partial (torn) final line
            };
            let Some(payload) = open_line(body) else {
                break; // checksum corruption
            };
            if !on_record(payload) {
                break; // field-level corruption
            }
            valid_end += line.len() as u64;
        }
        Ok(valid_end)
    }

    /// Append one record payload as a single sealed, flushed line. A crash
    /// can tear at most this final record.
    pub fn append(&mut self, payload: &str) -> std::io::Result<()> {
        self.file.write_all(seal_line(payload).as_bytes())?;
        self.file.flush()
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "crowdprompt-recordlog-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    fn sample_response(text: &str, conf: Option<f64>) -> CompletionResponse {
        CompletionResponse {
            text: text.to_string(),
            usage: Usage {
                prompt_tokens: 12,
                completion_tokens: 3,
            },
            finish_reason: FinishReason::Stop,
            model: "sim-gpt-3.5-turbo".into(),
            cached: false,
            pricing: Pricing::new(0.0005, 0.0015),
            confidence: conf,
        }
    }

    #[test]
    fn escape_unescape_inverse() {
        for s in ["", "plain", "a\tb\nc\rd\\e", "\\t literal", "\\"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert!(unescape("bad \\x escape").is_none());
        assert!(unescape("trailing \\").is_none());
    }

    #[test]
    fn seal_open_roundtrip_and_rejection() {
        let sealed = seal_line("alpha\tbeta");
        let body = sealed.strip_suffix('\n').unwrap();
        assert_eq!(open_line(body), Some("alpha\tbeta"));
        // Any byte flip invalidates the line.
        let corrupt = body.replace("alpha", "alphX");
        assert!(open_line(&corrupt).is_none());
        assert!(open_line("no checksum here").is_none());
    }

    #[test]
    fn f64_bits_roundtrip_exact() {
        for v in [0.0, -0.0, 0.1, f64::MIN_POSITIVE, f64::INFINITY] {
            let enc = encode_f64_bits(v);
            assert_eq!(decode_f64_bits(&enc).map(f64::to_bits), Some(v.to_bits()));
        }
        assert!(decode_f64_bits("not hex").is_none());
    }

    #[test]
    fn response_fields_roundtrip() {
        let weird = "line one\nline\ttwo \\ backslash\rcarriage";
        let response = sample_response(weird, Some(0.875));
        let payload = encode_response_fields(0xdead_beef, &response);
        let fields: Vec<&str> = payload.split('\t').collect();
        let (fp, decoded) = decode_response_fields(&fields).unwrap();
        assert_eq!(fp, 0xdead_beef);
        assert_eq!(decoded.text, weird);
        assert_eq!(decoded.usage.total(), 15);
        assert_eq!(decoded.confidence, Some(0.875));
        assert!(!decoded.cached);
        assert_eq!(
            decoded.pricing.usd_per_1k_input.to_bits(),
            0.0005f64.to_bits()
        );
    }

    #[test]
    fn logfile_recovers_prefix_and_appends() {
        let path = temp_path("prefix");
        {
            let mut log = LogFile::open(&path, "test-log v1", |_| true).unwrap();
            log.append("one").unwrap();
            log.append("two").unwrap();
        }
        // Tear the final record mid-line.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut seen = Vec::new();
        let mut log = LogFile::open(&path, "test-log v1", |p| {
            seen.push(p.to_string());
            true
        })
        .unwrap();
        assert_eq!(seen, vec!["one".to_string()]);
        log.append("three").unwrap();
        drop(log);

        let mut seen = Vec::new();
        LogFile::open_read_only(&path, "test-log v1", |p| {
            seen.push(p.to_string());
            true
        })
        .unwrap();
        assert_eq!(seen, vec!["one".to_string(), "three".to_string()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn logfile_consumer_rejection_truncates() {
        let path = temp_path("reject");
        {
            let mut log = LogFile::open(&path, "test-log v1", |_| true).unwrap();
            log.append("good").unwrap();
            log.append("BAD").unwrap();
            log.append("after").unwrap();
        }
        // The consumer's field codec refuses "BAD": the suffix is dropped.
        let mut seen = Vec::new();
        drop(
            LogFile::open(&path, "test-log v1", |p| {
                if p == "BAD" {
                    return false;
                }
                seen.push(p.to_string());
                true
            })
            .unwrap(),
        );
        assert_eq!(seen, vec!["good".to_string()]);
        let mut all = Vec::new();
        LogFile::open_read_only(&path, "test-log v1", |p| {
            all.push(p.to_string());
            true
        })
        .unwrap();
        assert_eq!(all, vec!["good".to_string()], "rejected suffix truncated");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_header_is_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, "not a log\n").unwrap();
        assert!(LogFile::open(&path, "test-log v1", |_| true).is_err());
        assert!(LogFile::open_read_only(&path, "test-log v1", |_| true).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_only_missing_file_errors() {
        let path = temp_path("missing");
        assert!(LogFile::open_read_only(&path, "test-log v1", |_| true).is_err());
    }
}
