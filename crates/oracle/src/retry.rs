//! Retry-delay scheduling shared by the direct client and the router.
//!
//! Both retry loops (the single-backend loop in [`crate::client::LlmClient`]
//! and the multi-backend loop in [`crate::route::Router`]) need the same
//! policy for *how long to sleep* before attempt `n + 1`:
//!
//! 1. **Server hints win.** A 429's `retry_after_ms` (or an open circuit's
//!    earliest probe time) is the provider telling us when a retry can
//!    succeed; sleeping less just burns an attempt. The delay is the max of
//!    the linear backoff ramp and the hint.
//! 2. **Seeded jitter breaks retry storms.** When many workers fail at the
//!    same instant (a shared outage), identical backoff resynchronizes them
//!    into thundering-herd retries. We add a deterministic jitter in
//!    `[0, base/4]` keyed by (request fingerprint, attempt) so each request
//!    de-correlates, yet every run with the same inputs sleeps identically —
//!    preserving reproducibility.
//! 3. **Deadlines clip everything.** A run deadline caps each sleep at the
//!    time remaining and stops retrying outright once it has passed.
//!
//! The long-standing contract that `backoff_ms == 0` means *no sleeping*
//! (tests and benches rely on it for speed) is preserved: with a zero base
//! backoff the hint and jitter are ignored and the delay is zero.

use std::time::{Duration, Instant};

use crate::hash;

/// Compute the sleep to take before retry number `attempt` (1-based: the
/// sleep after the first failure passes `attempt = 1`).
///
/// Returns `None` when `deadline` has already passed — the caller should
/// stop retrying and surface its last error. Otherwise returns the delay,
/// possibly [`Duration::ZERO`].
///
/// `hint_ms` is the failed attempt's [`crate::LlmError::retry_hint_ms`];
/// `jitter_key` should be a stable per-request value (the request
/// fingerprint) so that repeated runs sleep identically.
pub fn retry_delay(
    backoff_ms: u64,
    attempt: u32,
    hint_ms: Option<u64>,
    jitter_key: u64,
    deadline: Option<Instant>,
    now: Instant,
) -> Option<Duration> {
    let remaining = match deadline {
        Some(d) => {
            let left = d.saturating_duration_since(now);
            if left.is_zero() {
                return None;
            }
            Some(left)
        }
        None => None,
    };
    if backoff_ms == 0 {
        // Documented fast path: zero backoff means no sleeping, ever.
        return Some(Duration::ZERO);
    }
    let ramp = backoff_ms.saturating_mul(u64::from(attempt));
    let base = ramp.max(hint_ms.unwrap_or(0));
    let jitter = if base > 0 {
        // Deterministic jitter in [0, base/4]; keyed per (request, attempt)
        // so concurrent requests de-synchronize but reruns are identical.
        let span = base / 4 + 1;
        hash::mix(hash::combine(jitter_key, u64::from(attempt))) % span
    } else {
        0
    };
    let mut delay = Duration::from_millis(base.saturating_add(jitter));
    if let Some(left) = remaining {
        delay = delay.min(left);
    }
    Some(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_backoff_never_sleeps() {
        let now = Instant::now();
        assert_eq!(
            retry_delay(0, 3, Some(500), 42, None, now),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn server_hint_overrides_short_ramp() {
        let now = Instant::now();
        // Ramp would be 2 ms; the 429 says wait 100 ms. Delay must be at
        // least the hint (plus jitter, at most base/4).
        let d = retry_delay(2, 1, Some(100), 7, None, now).unwrap();
        assert!(d >= Duration::from_millis(100), "hint ignored: {d:?}");
        assert!(d <= Duration::from_millis(125), "jitter too large: {d:?}");
    }

    #[test]
    fn ramp_dominates_small_hint() {
        let now = Instant::now();
        let d = retry_delay(50, 4, Some(10), 7, None, now).unwrap();
        assert!(d >= Duration::from_millis(200));
        assert!(d <= Duration::from_millis(250));
    }

    #[test]
    fn jitter_is_deterministic_and_attempt_varying() {
        let now = Instant::now();
        let a = retry_delay(40, 1, None, 99, None, now);
        let b = retry_delay(40, 1, None, 99, None, now);
        assert_eq!(a, b);
        // Different keys or attempts de-correlate (with overwhelming
        // probability for these constants; pinned here as a regression).
        let c = retry_delay(40, 1, None, 100, None, now);
        let d = retry_delay(40, 2, None, 99, None, now);
        assert!(a != c || a != d);
    }

    #[test]
    fn deadline_caps_the_sleep() {
        let now = Instant::now();
        let deadline = now + Duration::from_millis(5);
        let d = retry_delay(1000, 1, None, 7, Some(deadline), now).unwrap();
        assert!(d <= Duration::from_millis(5));
    }

    #[test]
    fn expired_deadline_stops_retrying() {
        let now = Instant::now();
        assert_eq!(retry_delay(10, 1, None, 7, Some(now), now), None);
        // Even with zero backoff: an expired deadline means stop.
        assert_eq!(retry_delay(0, 1, None, 7, Some(now), now), None);
    }
}
