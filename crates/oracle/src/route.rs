//! Failure-aware routing across heterogeneous backends.
//!
//! The [`Router`] dispatches one model tier's traffic over a
//! [`BackendRegistry`], below the [`crate::LlmClient`]'s cache/coalescing
//! layer (the client sees the router as just another [`LanguageModel`]).
//! That layering is what makes the accounting invariants structural: a
//! request that is retried across backends, or hedged onto two backends at
//! once, still surfaces exactly one [`CompletionResponse`] to the client —
//! so the ledger and budget charge exactly one call, priced at the *serving*
//! backend's schedule (carried in [`CompletionResponse::pricing`]).
//!
//! Policy, per call:
//!
//! 1. **Selection** — among backends whose circuit breaker admits traffic,
//!    pick the least-loaded (in-flight ÷ advertised slots), tie-broken by
//!    cheapest pricing, then registration order.
//! 2. **Hedging** (optional) — if the primary has not answered within a
//!    p9x-based delay (`max(hedge floor, observed p⟨percentile⟩ latency)`),
//!    duplicate the request onto the next-best backend; first success wins
//!    and the loser is cancelled through its [`CancelToken`].
//! 3. **Retry with backoff** — a transient failure (429 / 5xx / timeout)
//!    marks the backend avoided for this request and retries on the next
//!    best, up to `max_retries` extra attempts. The sleep between attempts
//!    comes from [`crate::retry::retry_delay`]: a linear ramp floored by
//!    the server's `Retry-After` hint, de-synchronized by deterministic
//!    seeded jitter, and clipped to the request's deadline (an expired
//!    deadline stops retrying outright).
//! 4. **Circuit breaker** — consecutive transient failures open a
//!    per-backend breaker for a cooldown; a half-open probe readmits it.
//!
//! Determinism: answers come from the shared underlying model, so *which*
//! backend serves a request never changes the response text — routing
//! affects latency, spend, and failure handling only. Single-backend
//! registries are result-identical to calling the model directly.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::{Backend, BackendRegistry, CancelToken};
use crate::error::LlmError;
use crate::pricing::Pricing;
use crate::types::{CompletionRequest, CompletionResponse, LanguageModel};

/// Hedged-request configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Floor on the hedge delay: never duplicate a request earlier than
    /// this after dispatching the primary.
    pub after: Duration,
    /// Latency percentile (in `[0, 1]`) of the primary backend's recent
    /// calls used as the adaptive hedge trigger; the effective delay is
    /// `max(after, p⟨percentile⟩)`.
    pub percentile: f64,
}

impl HedgeConfig {
    /// Hedge after `max(after, observed p90)` — the classic tail-taming
    /// configuration.
    pub fn after(after: Duration) -> Self {
        HedgeConfig {
            after,
            percentile: 0.9,
        }
    }
}

/// Per-backend circuit-breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects traffic before admitting one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The router's dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutePolicy {
    /// Extra attempts (beyond the first) on transient failure; each retry
    /// prefers a backend that has not yet failed this request.
    pub max_retries: u32,
    /// Base linear backoff per retry in milliseconds (`0` = no sleeping,
    /// keeping simulated experiments fast while preserving retry logic).
    pub backoff_ms: u64,
    /// Hedged-request configuration; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Circuit-breaker configuration shared by all backends.
    pub breaker: BreakerConfig,
}

impl Default for RoutePolicy {
    fn default() -> Self {
        RoutePolicy {
            max_retries: 3,
            backoff_ms: 0,
            hedge: None,
            breaker: BreakerConfig::default(),
        }
    }
}

/// A breaker's answer to "may this backend take traffic right now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Eligibility {
    /// Breaker closed: dispatch freely.
    Closed,
    /// Breaker open but cooled down: one probe may be claimed.
    Probe,
    /// Breaker open (or its probe already claimed): no traffic.
    Blocked,
}

/// Circuit-breaker state machine for one backend.
#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: u32,
    /// `Some(t)` while open: no traffic before `t`, one probe after.
    open_until: Option<Instant>,
    /// A half-open probe is in flight; further traffic waits on its fate.
    probing: bool,
}

/// How many recent call latencies feed the p9x hedge trigger.
const LATENCY_WINDOW: usize = 64;
/// Minimum samples before the adaptive trigger overrides the floor.
const LATENCY_MIN_SAMPLES: usize = 8;

/// Router-side state for one backend: load, breaker, latency history, and
/// behaviour counters.
struct BackendState {
    backend: Arc<dyn Backend>,
    in_flight: AtomicUsize,
    dispatches: AtomicU64,
    wins: AtomicU64,
    transient_failures: AtomicU64,
    breaker_trips: AtomicU64,
    breaker: Mutex<BreakerState>,
    latencies_us: Mutex<VecDeque<u64>>,
}

impl BackendState {
    fn new(backend: Arc<dyn Backend>) -> Self {
        BackendState {
            backend,
            in_flight: AtomicUsize::new(0),
            dispatches: AtomicU64::new(0),
            wins: AtomicU64::new(0),
            transient_failures: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker: Mutex::new(BreakerState::default()),
            latencies_us: Mutex::new(VecDeque::with_capacity(LATENCY_WINDOW)),
        }
    }

    /// Whether the breaker could admit traffic now — a pure check with no
    /// side effects, safe to call on backends that merely *lose* a
    /// selection. `Probe` means a cooled-down open breaker whose half-open
    /// slot must still be claimed via
    /// [`BackendState::try_claim_probe`] before dispatching.
    fn eligibility(&self, now: Instant) -> Eligibility {
        let state = self.breaker.lock();
        match state.open_until {
            None => Eligibility::Closed,
            Some(t) if now < t => Eligibility::Blocked,
            Some(_) => {
                if state.probing {
                    Eligibility::Blocked
                } else {
                    Eligibility::Probe
                }
            }
        }
    }

    /// Claim the half-open probe slot, if (still) available. Only the
    /// backend actually being dispatched may claim it — claiming on mere
    /// consideration would strand `probing = true` with no call in flight
    /// to ever clear it, permanently starving the backend.
    fn try_claim_probe(&self, now: Instant) -> bool {
        let mut state = self.breaker.lock();
        match state.open_until {
            Some(t) if now >= t && !state.probing => {
                state.probing = true;
                true
            }
            _ => false,
        }
    }

    fn on_success(&self, latency: Duration) {
        {
            let mut state = self.breaker.lock();
            state.consecutive_failures = 0;
            state.open_until = None;
            state.probing = false;
        }
        let mut window = self.latencies_us.lock();
        if window.len() == LATENCY_WINDOW {
            window.pop_front();
        }
        window.push_back(latency.as_micros() as u64);
    }

    fn on_transient_failure(&self, config: &BreakerConfig) {
        self.transient_failures.fetch_add(1, Ordering::Relaxed);
        let mut state = self.breaker.lock();
        state.consecutive_failures += 1;
        // A failed half-open probe re-opens immediately; otherwise open at
        // the threshold.
        if state.probing || state.consecutive_failures >= config.failure_threshold.max(1) {
            state.open_until = Some(Instant::now() + config.cooldown); // lint: allow(clock) — breaker cooldown anchor
            state.probing = false;
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Release the half-open probe slot (if held) without closing or
    /// re-opening the breaker: for outcomes that prove nothing about
    /// backend *health* — a cancelled hedge loser, a request-level hard
    /// error (which would fail on any backend), or a panicking backend.
    /// Without this, a probe ending in any such outcome would strand
    /// `probing = true` and starve the backend forever.
    fn release_probe(&self) {
        let mut state = self.breaker.lock();
        state.probing = false;
    }

    fn is_open(&self, now: Instant) -> bool {
        let state = self.breaker.lock();
        state.open_until.is_some_and(|t| now < t)
    }

    /// Observed latency percentile over the recent window, if enough
    /// samples have accumulated.
    fn latency_percentile(&self, percentile: f64) -> Option<Duration> {
        let window = self.latencies_us.lock();
        if window.len() < LATENCY_MIN_SAMPLES {
            return None;
        }
        let mut sorted: Vec<u64> = window.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * percentile.clamp(0.0, 1.0)).round() as usize;
        Some(Duration::from_micros(sorted[rank]))
    }

    /// Execute one attempt on this backend, maintaining load, breaker, and
    /// latency state on every exit path.
    fn execute(
        &self,
        breaker: &BreakerConfig,
        request: &CompletionRequest,
        cancel: &CancelToken,
    ) -> Result<CompletionResponse, LlmError> {
        /// Unwind-safe bookkeeping: decrements in-flight load and releases
        /// any held probe slot even if the backend panics, so a panicking
        /// custom [`Backend`] can neither skew least-loaded selection nor
        /// strand a half-open breaker.
        struct AttemptGuard<'a>(&'a BackendState);
        impl Drop for AttemptGuard<'_> {
            fn drop(&mut self) {
                self.0.in_flight.fetch_sub(1, Ordering::AcqRel);
                if std::thread::panicking() {
                    self.0.release_probe();
                }
            }
        }
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let _guard = AttemptGuard(self);
        let started = Instant::now(); // lint: allow(clock) — attempt latency sample
        let result = self.backend.complete(request, cancel);
        match &result {
            Ok(_) => self.on_success(started.elapsed()),
            Err(LlmError::Cancelled) => self.release_probe(),
            Err(e) if e.is_retryable() => self.on_transient_failure(breaker),
            // Hard errors (context overflow, invalid request) would fail on
            // any backend; they say nothing about this backend's health —
            // but a probe attempt must still give its slot back.
            Err(_) => self.release_probe(),
        }
        result
    }
}

/// Counters describing one backend's routing history (snapshot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendStats {
    /// The backend's id.
    pub id: String,
    /// Attempts dispatched to this backend (including hedges and losers).
    pub dispatches: u64,
    /// Responses this backend served back to callers (hedge winners and
    /// direct successes).
    pub wins: u64,
    /// Transient failures (429 / 5xx / timeout) observed.
    pub transient_failures: u64,
    /// Times this backend's circuit breaker opened.
    pub breaker_trips: u64,
    /// Whether the breaker is currently open.
    pub open: bool,
}

/// Router behaviour counters (snapshot; see [`Router::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterStats {
    /// Cross-backend retry attempts performed (beyond first attempts).
    pub retries: u64,
    /// Hedge duplicates actually launched (stragglers past the delay).
    pub hedges_launched: u64,
    /// Hedges where the duplicate answered before the straggling primary.
    pub hedges_won: u64,
    /// Per-backend counters, in registration order.
    pub per_backend: Vec<BackendStats>,
}

/// A failure-aware, optionally hedging dispatcher over a backend registry.
///
/// Implements [`LanguageModel`], so an [`crate::LlmClient`] built over a
/// router gains multi-backend routing transparently: the client's cache,
/// coalescing, ledger, and budget accounting all operate on the single
/// response the router returns per logical request.
pub struct Router {
    registry: BackendRegistry,
    policy: RoutePolicy,
    states: Vec<Arc<BackendState>>,
    tier: String,
    reference_pricing: Pricing,
    min_context: u32,
    retries: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
}

impl Router {
    /// Build a router over `registry` with the given policy.
    pub fn new(registry: BackendRegistry, policy: RoutePolicy) -> Self {
        let states = registry
            .backends()
            .iter()
            .map(|b| Arc::new(BackendState::new(Arc::clone(b))))
            .collect();
        let cheapest = registry.cheapest();
        Router {
            tier: registry.tier().to_owned(),
            reference_pricing: registry.backends()[cheapest].pricing(),
            min_context: registry.min_context_window(),
            registry,
            policy,
            states,
            retries: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
        }
    }

    /// The backend registry this router dispatches over.
    pub fn registry(&self) -> &BackendRegistry {
        &self.registry
    }

    /// The dispatch policy.
    pub fn policy(&self) -> &RoutePolicy {
        &self.policy
    }

    /// The cheapest backend's id — the reference schedule behind
    /// [`LanguageModel::pricing`], which planner estimates price against.
    pub fn reference_backend_id(&self) -> &str {
        self.registry.backends()[self.registry.cheapest()].id()
    }

    /// Worst-case ratio between any backend's schedule and the reference
    /// (cheapest) schedule, `>= 1.0`. Budget *admission* scales estimates
    /// by this, so a USD cap holds even when the priciest backend ends up
    /// serving a call that was estimated at reference pricing; plan
    /// estimates stay at the optimistic reference schedule. `1.0` for
    /// single-backend registries, uniform pricing, or a free reference
    /// schedule (where estimates are $0 regardless).
    pub fn admission_price_factor(&self) -> f64 {
        let rate = |p: Pricing| p.usd_per_1k_input + p.usd_per_1k_output;
        let reference = rate(self.reference_pricing);
        if reference <= 0.0 {
            return 1.0;
        }
        self.registry
            .backends()
            .iter()
            .map(|b| rate(b.pricing()) / reference)
            .fold(1.0, f64::max)
    }

    /// Snapshot the router's behaviour counters.
    pub fn stats(&self) -> RouterStats {
        let now = Instant::now(); // lint: allow(clock) — stats snapshot anchor
        RouterStats {
            retries: self.retries.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            per_backend: self
                .states
                .iter()
                .map(|s| BackendStats {
                    id: s.backend.id().to_owned(),
                    dispatches: s.dispatches.load(Ordering::Relaxed),
                    wins: s.wins.load(Ordering::Relaxed),
                    transient_failures: s.transient_failures.load(Ordering::Relaxed),
                    breaker_trips: s.breaker_trips.load(Ordering::Relaxed),
                    open: s.is_open(now),
                })
                .collect(),
        }
    }

    /// Least-loaded / cheapest-eligible selection among breaker-admitted
    /// backends not in `avoid`.
    ///
    /// Eligibility checks are side-effect free; the half-open probe slot of
    /// an open-but-cooled breaker is claimed only for the backend actually
    /// chosen (a losing candidate keeps its probe available for later).
    fn select(&self, avoid: &[bool]) -> Option<usize> {
        // Lost probe races are excluded locally and selection retried, so
        // the loop terminates after at most `states.len()` rounds.
        let mut race_lost = vec![false; self.states.len()];
        loop {
            let now = Instant::now(); // lint: allow(clock) — selection loop tick
            let mut best: Option<(f64, f64, usize, Eligibility)> = None;
            for (i, state) in self.states.iter().enumerate() {
                if avoid[i] || race_lost[i] {
                    continue;
                }
                let eligibility = state.eligibility(now);
                if eligibility == Eligibility::Blocked {
                    continue;
                }
                let slots = state.backend.slots();
                let capacity = if slots == 0 { 1_000_000 } else { slots };
                let load = state.in_flight.load(Ordering::Relaxed) as f64 / capacity as f64;
                let pricing = state.backend.pricing();
                let rate = pricing.usd_per_1k_input + pricing.usd_per_1k_output;
                let better = match &best {
                    None => true,
                    Some((bl, br, _, _)) => load < *bl || (load == *bl && rate < *br),
                };
                if better {
                    best = Some((load, rate, i, eligibility));
                }
            }
            let (_, _, index, eligibility) = best?;
            if eligibility == Eligibility::Closed || self.states[index].try_claim_probe(now) {
                return Some(index);
            }
            // Another thread won this backend's probe between the check and
            // the claim; drop it from this round and re-select.
            race_lost[index] = true;
        }
    }

    /// Spawn one attempt on backend `index`, reporting into `tx`. The
    /// thread is detached: a hedge loser keeps running (until its cancel
    /// token stops it) without blocking the winner's return, and its
    /// breaker/latency bookkeeping still lands via [`BackendState`].
    fn spawn_attempt(
        &self,
        index: usize,
        request: CompletionRequest,
        tx: mpsc::Sender<(usize, Result<CompletionResponse, LlmError>)>,
        cancel: CancelToken,
    ) {
        let state = Arc::clone(&self.states[index]);
        let breaker = self.policy.breaker;
        std::thread::spawn(move || {
            let result = state.execute(&breaker, &request, &cancel);
            let _ = tx.send((index, result));
        });
    }

    /// The effective hedge delay for a primary backend: the adaptive p9x
    /// trigger once history exists, floored by the configured delay.
    fn hedge_delay(&self, primary: usize, config: &HedgeConfig) -> Duration {
        match self.states[primary].latency_percentile(config.percentile) {
            Some(observed) if observed > config.after => observed,
            _ => config.after,
        }
    }

    /// Dispatch with hedging: launch the primary, duplicate onto the
    /// next-best backend if the primary straggles past the hedge delay,
    /// first success wins, loser cancelled.
    ///
    /// A secondary that *failed* is marked in `avoid`, so the caller's
    /// retry loop skips both halves of a fully-failed hedge rather than
    /// re-selecting the backend that just failed this request.
    fn dispatch_hedged(
        &self,
        primary: usize,
        request: &CompletionRequest,
        config: &HedgeConfig,
        avoid: &mut [bool],
    ) -> Result<CompletionResponse, LlmError> {
        let (tx, rx) = mpsc::channel();
        let cancel_primary = CancelToken::new();
        // Every wait below stalls for backend-scale time; no shim lock may
        // span it (enforced by the lock_diagnostics build).
        parking_lot::blocking_region("hedged dispatch wait");
        self.spawn_attempt(primary, request.clone(), tx.clone(), cancel_primary.clone());
        match rx.recv_timeout(self.hedge_delay(primary, config)) {
            Ok((index, result)) => {
                if result.is_ok() {
                    self.states[index].wins.fetch_add(1, Ordering::Relaxed);
                }
                return result;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("attempt thread always sends before exiting")
            }
        }
        // The primary is a straggler. Hedge onto the next-best distinct
        // backend, if any; otherwise just keep waiting.
        let mut avoid_primary = avoid.to_vec();
        avoid_primary[primary] = true;
        let Some(secondary) = self.select(&avoid_primary) else {
            // Dropping our sender means a panicking custom backend (its
            // thread dies without reporting) surfaces as a disconnect
            // instead of deadlocking this recv forever.
            drop(tx);
            let Ok((index, result)) = rx.recv() else {
                return Err(LlmError::ServiceUnavailable);
            };
            if result.is_ok() {
                self.states[index].wins.fetch_add(1, Ordering::Relaxed);
            }
            return result;
        };
        self.hedges_launched.fetch_add(1, Ordering::Relaxed);
        let cancel_secondary = CancelToken::new();
        self.spawn_attempt(
            secondary,
            request.clone(),
            tx.clone(),
            cancel_secondary.clone(),
        );
        // As above: only the attempt threads hold senders now, so if every
        // remaining attempt panics the recv below disconnects rather than
        // hanging the caller.
        drop(tx);
        let mut first_error: Option<LlmError> = None;
        for remaining in (0..2u32).rev() {
            let Ok((index, result)) = rx.recv() else {
                return Err(first_error.unwrap_or(LlmError::ServiceUnavailable));
            };
            match result {
                Ok(response) => {
                    // First success wins; the twin is cancelled and its
                    // eventual (discarded) result never reaches the caller
                    // — or the ledger.
                    if index == primary {
                        cancel_secondary.cancel();
                    } else {
                        cancel_primary.cancel();
                        self.hedges_won.fetch_add(1, Ordering::Relaxed);
                    }
                    self.states[index].wins.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(error) => {
                    if index != primary {
                        avoid[index] = true;
                    }
                    if remaining == 0 {
                        // Both attempts failed. Prefer a non-retryable
                        // error: it is request-level and deterministic, and
                        // surfacing a transient twin instead would send the
                        // caller's retry loop chasing a request that can
                        // only hard-fail.
                        return Err(match first_error {
                            Some(first) if !error.is_retryable() && first.is_retryable() => error,
                            Some(first) => first,
                            None => error,
                        });
                    }
                    first_error = Some(error);
                }
            }
        }
        unreachable!("loop returns on the second result")
    }

    /// Milliseconds until the earliest breaker would admit a half-open
    /// probe: `0` if any backend's breaker is closed or already cooled
    /// down, else the shortest remaining cooldown. Feeds
    /// [`LlmError::CircuitOpen::retry_in_ms`] so callers can schedule a
    /// retry for when it can actually succeed.
    fn earliest_probe_in_ms(&self, now: Instant) -> u64 {
        self.states
            .iter()
            .map(|s| {
                let state = s.breaker.lock();
                match state.open_until {
                    Some(t) => t.saturating_duration_since(now).as_millis() as u64,
                    None => 0,
                }
            })
            .min()
            .unwrap_or(0)
    }

    /// Dispatch without hedging: one inline attempt, no thread spawn.
    fn dispatch_direct(
        &self,
        index: usize,
        request: &CompletionRequest,
    ) -> Result<CompletionResponse, LlmError> {
        let state = &self.states[index];
        let result = state.execute(&self.policy.breaker, request, &CancelToken::new());
        if result.is_ok() {
            state.wins.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

impl LanguageModel for Router {
    fn name(&self) -> &str {
        &self.tier
    }

    fn context_window(&self) -> u32 {
        self.min_context
    }

    /// The tier's *reference* pricing — the cheapest backend's schedule.
    /// Estimates (budget admission, planner costing) price against this;
    /// actual spend is recorded from each response's own
    /// [`CompletionResponse::pricing`].
    fn pricing(&self) -> Pricing {
        self.reference_pricing
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        let max_attempts = self.policy.max_retries.saturating_add(1);
        let mut attempt = 0u32;
        let mut avoid = vec![false; self.states.len()];
        loop {
            let primary = match self.select(&avoid) {
                Some(index) => index,
                None => {
                    // Everything admitted has already failed this request:
                    // lift the avoidance and try whoever the breakers still
                    // allow. If nothing is admitted at all, the tier is down.
                    if avoid.iter().any(|&a| a) {
                        avoid.iter_mut().for_each(|a| *a = false);
                    }
                    match self.select(&avoid) {
                        Some(index) => index,
                        None => {
                            return Err(LlmError::CircuitOpen {
                                model: self.tier.clone(),
                                retry_in_ms: self.earliest_probe_in_ms(Instant::now()), // lint: allow(clock) — probe ETA estimate
                            });
                        }
                    }
                }
            };
            // Re-roll the backend's transport fate per attempt (the same
            // convention the client's own retry loop uses); temperature-0
            // fingerprints ignore the sample index, so caching and answer
            // draws are unaffected.
            let mut attempt_request = request.clone();
            attempt_request.sample_index = request.sample_index.wrapping_add(attempt);
            let result = match &self.policy.hedge {
                Some(config) => self.dispatch_hedged(primary, &attempt_request, config, &mut avoid),
                None => self.dispatch_direct(primary, &attempt_request),
            };
            match result {
                Ok(response) => return Ok(response),
                Err(error) if error.is_retryable() => {
                    attempt += 1;
                    if attempt >= max_attempts {
                        return Err(LlmError::RetriesExhausted {
                            attempts: max_attempts,
                            last: Box::new(error),
                        });
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    avoid[primary] = true;
                    match crate::retry::retry_delay(
                        self.policy.backoff_ms,
                        attempt,
                        error.retry_hint_ms(),
                        request.fingerprint(),
                        request.deadline,
                        Instant::now(), // lint: allow(clock) — retry backoff anchor
                    ) {
                        Some(delay) => {
                            if !delay.is_zero() {
                                parking_lot::blocking_region("router retry backoff sleep");
                                std::thread::sleep(delay);
                            }
                        }
                        // Deadline passed mid-request: stop chasing this
                        // call and report how far we got.
                        None => {
                            return Err(LlmError::RetriesExhausted {
                                attempts: attempt,
                                last: Box::new(error),
                            })
                        }
                    }
                }
                Err(error) => return Err(error),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quota leases on backend slots (PR 10 serving layer)
// ---------------------------------------------------------------------------

/// A reserved backend slot, handed out by [`LeaseTable::reserve`].
///
/// A lease moves through three stages, mirroring the reserve/confirm/release
/// discipline of a contended resource pool:
///
/// 1. **Reserved** — the slot is held tentatively, with a generation-based
///    expiry. An unconfirmed reservation that outlives its TTL is reclaimed
///    by the next [`LeaseTable::reserve`] sweep, so a tenant that crashes
///    between admission and dispatch never strands capacity.
/// 2. **Confirmed** — [`LeaseTable::confirm`] re-validates the lease right
///    before dispatch and renews its expiry; a lease that was already
///    reclaimed fails confirmation instead of double-occupying the slot.
/// 3. **Released** — [`LeaseTable::release`] frees the slot explicitly. A
///    confirmed lease that is never released (stalled dispatch) still falls
///    back to expiry-based reclamation.
///
/// The "time source" is a caller-supplied generation counter, never the wall
/// clock, so expiry is deterministic and testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotLease {
    /// Index of the slot this lease occupies.
    slot: usize,
    /// Monotonic token distinguishing this grant from later grants of the
    /// same slot (an expired lease's token no longer matches the table).
    token: u64,
}

impl SlotLease {
    /// The slot index this lease occupies (stable across confirm/renew).
    pub fn slot(&self) -> usize {
        self.slot
    }
}

/// Per-slot bookkeeping inside a [`LeaseTable`].
#[derive(Debug, Clone, Copy)]
enum SlotState {
    Free,
    /// Held by the lease with this token; reclaimable once `expires_gen` is
    /// in the past. `confirmed` only affects accounting (a confirmed lease
    /// represents real in-flight work, a reservation is merely a promise).
    Held {
        token: u64,
        expires_gen: u64,
        confirmed: bool,
    },
}

/// A fixed-capacity table of backend-slot leases with generation-based
/// expiry.
///
/// The serving layer sizes one of these from the roster's advertised
/// concurrency (see [`Router::total_slots`]) and makes every dispatch pass
/// through reserve → confirm → release. `reserve` returning `None` is the
/// load-shedding signal: the roster is saturated and the caller should
/// surface a retry-after hint instead of queueing unboundedly.
///
/// All operations take the current generation as an argument; the table
/// itself never reads a clock.
#[derive(Debug)]
pub struct LeaseTable {
    slots: Mutex<Vec<SlotState>>,
    next_token: AtomicU64,
}

impl LeaseTable {
    /// Build a table with `capacity` slots (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LeaseTable {
            slots: Mutex::new(vec![SlotState::Free; capacity.max(1)]),
            next_token: AtomicU64::new(1),
        }
    }

    /// Total number of slots (free or held).
    pub fn capacity(&self) -> usize {
        self.slots.lock().len()
    }

    /// Reserve a slot, expiring at `now_gen + ttl_generations` unless
    /// confirmed or renewed first. Expired leases (unconfirmed *or*
    /// confirmed) are swept and reused before reporting saturation.
    /// Returns `None` when every slot is validly held — the caller should
    /// shed load rather than wait.
    pub fn reserve(&self, now_gen: u64, ttl_generations: u64) -> Option<SlotLease> {
        let mut slots = self.slots.lock();
        let index = slots.iter().position(|s| match s {
            SlotState::Free => true,
            SlotState::Held { expires_gen, .. } => *expires_gen <= now_gen,
        })?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        slots[index] = SlotState::Held {
            token,
            expires_gen: now_gen.saturating_add(ttl_generations.max(1)),
            confirmed: false,
        };
        Some(SlotLease { slot: index, token })
    }

    /// Confirm a reservation immediately before dispatch, renewing its
    /// expiry to `now_gen + ttl_generations`. Returns `false` if the lease
    /// already expired and was (or may be) reclaimed — the caller must
    /// re-reserve rather than dispatch on a slot someone else now holds.
    pub fn confirm(&self, lease: &SlotLease, now_gen: u64, ttl_generations: u64) -> bool {
        let mut slots = self.slots.lock();
        match slots.get_mut(lease.slot) {
            Some(SlotState::Held {
                token,
                expires_gen,
                confirmed,
            }) if *token == lease.token && *expires_gen > now_gen => {
                *expires_gen = now_gen.saturating_add(ttl_generations.max(1));
                *confirmed = true;
                true
            }
            _ => false,
        }
    }

    /// Release a lease, freeing its slot. Releasing an expired or already
    /// reclaimed lease is a harmless no-op (the slot belongs to its next
    /// holder), so release is safe to call from cleanup paths
    /// unconditionally.
    pub fn release(&self, lease: &SlotLease) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(lease.slot) {
            if matches!(slot, SlotState::Held { token, .. } if *token == lease.token) {
                *slot = SlotState::Free;
            }
        }
    }

    /// Number of slots validly held (reserved or confirmed) at `now_gen`.
    pub fn in_use(&self, now_gen: u64) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|s| matches!(s, SlotState::Held { expires_gen, .. } if *expires_gen > now_gen))
            .count()
    }

    /// Generations until the earliest currently-held lease expires, or
    /// `None` when no slot is validly held. A saturated caller can use
    /// this as a retry-after hint: by then at least one slot is
    /// reclaimable even if its holder crashed.
    pub fn earliest_release_in(&self, now_gen: u64) -> Option<u64> {
        self.slots
            .lock()
            .iter()
            .filter_map(|s| match s {
                SlotState::Held { expires_gen, .. } if *expires_gen > now_gen => {
                    Some(*expires_gen - now_gen)
                }
                _ => None,
            })
            .min()
    }

    /// Number of slots holding *confirmed* (dispatch-backed) leases at
    /// `now_gen`.
    pub fn confirmed_in_use(&self, now_gen: u64) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    SlotState::Held {
                        expires_gen,
                        confirmed: true,
                        ..
                    } if *expires_gen > now_gen
                )
            })
            .count()
    }
}

impl Router {
    /// Total advertised concurrency across the roster: the sum of every
    /// backend's [`Backend::slots`]. Backends advertising `0` (unbounded)
    /// contribute a nominal 16 slots so the serving layer's lease table
    /// stays finite. Minimum 1.
    pub fn total_slots(&self) -> usize {
        let total: usize = self
            .registry
            .backends()
            .iter()
            .map(|b| {
                let slots = b.slots();
                if slots == 0 {
                    16
                } else {
                    slots
                }
            })
            .sum();
        total.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LatencyProfile, SimBackend};
    use crate::model::{ModelProfile, NoiseProfile};
    use crate::sim::SimulatedLlm;
    use crate::task::TaskDescriptor;
    use crate::world::{ItemId, WorldModel};

    fn shared_model(n: usize, seed: u64) -> (Arc<dyn LanguageModel>, Vec<ItemId>) {
        let mut w = WorldModel::new();
        let ids = (0..n)
            .map(|i| {
                let id = w.add_item(format!("routed item {i}"));
                w.set_flag(id, "p", i % 2 == 0);
                id
            })
            .collect();
        (
            Arc::new(SimulatedLlm::new(
                ModelProfile::gpt35_like(),
                Arc::new(w),
                seed,
            )),
            ids,
        )
    }

    fn check(id: ItemId) -> CompletionRequest {
        CompletionRequest::new(
            format!("Does item {} satisfy p?", id.0),
            TaskDescriptor::CheckPredicate {
                item: id,
                predicate: "p".into(),
            },
        )
    }

    #[test]
    fn single_backend_routing_is_result_identical() {
        let (model, ids) = shared_model(6, 11);
        let router = Router::new(
            BackendRegistry::single(Arc::clone(&model)),
            RoutePolicy::default(),
        );
        for id in &ids {
            let direct = model.complete(&check(*id)).unwrap();
            let routed = router.complete(&check(*id)).unwrap();
            assert_eq!(direct, routed);
        }
        assert_eq!(router.stats().per_backend[0].wins, ids.len() as u64);
    }

    #[test]
    fn selection_prefers_cheapest_on_equal_load() {
        let (model, ids) = shared_model(4, 2);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("pricey", Arc::clone(&model)).with_price_multiplier(3.0)),
            Arc::new(SimBackend::new("cheap", Arc::clone(&model)).with_price_multiplier(0.5)),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy::default(),
        );
        for id in &ids {
            router.complete(&check(*id)).unwrap();
        }
        let stats = router.stats();
        assert_eq!(
            stats.per_backend[1].wins,
            ids.len() as u64,
            "cheap serves all"
        );
        assert_eq!(stats.per_backend[0].wins, 0);
        // And the router's reference pricing is the cheap schedule.
        assert_eq!(router.reference_backend_id(), "cheap");
        let base = model.pricing();
        assert!((router.pricing().usd_per_1k_input - base.usd_per_1k_input * 0.5).abs() < 1e-12);
    }

    #[test]
    fn transient_failure_retries_on_another_backend() {
        let (model, ids) = shared_model(2, 3);
        let backends: Vec<Arc<dyn Backend>> = vec![
            // Cheap but always down; selection tries it first.
            Arc::new(
                SimBackend::new("down", Arc::clone(&model))
                    .with_price_multiplier(0.1)
                    .with_transport_noise(NoiseProfile {
                        unavailable_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(7),
            ),
            Arc::new(SimBackend::new("up", Arc::clone(&model))),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 2,
                ..RoutePolicy::default()
            },
        );
        let response = router.complete(&check(ids[0])).unwrap();
        assert_eq!(response.text, model.complete(&check(ids[0])).unwrap().text);
        let stats = router.stats();
        assert_eq!(stats.retries, 1, "one failover retry");
        assert_eq!(stats.per_backend[0].transient_failures, 1);
        assert_eq!(stats.per_backend[1].wins, 1);
    }

    #[test]
    fn retries_exhausted_when_every_backend_fails() {
        let (model, ids) = shared_model(1, 4);
        let backends: Vec<Arc<dyn Backend>> = vec![Arc::new(
            SimBackend::new("down", model)
                .with_transport_noise(NoiseProfile {
                    rate_limit_prob: 1.0,
                    ..NoiseProfile::perfect()
                })
                .with_seed(1),
        )];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 2,
                breaker: BreakerConfig {
                    failure_threshold: 100,
                    cooldown: Duration::from_millis(1),
                },
                ..RoutePolicy::default()
            },
        );
        match router.complete(&check(ids[0])) {
            Err(LlmError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, LlmError::RateLimited { .. }));
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn retry_sleep_honors_the_rate_limit_hint() {
        let (model, ids) = shared_model(1, 21);
        let backends: Vec<Arc<dyn Backend>> = vec![Arc::new(
            SimBackend::new("throttled", model)
                .with_transport_noise(NoiseProfile {
                    rate_limit_prob: 1.0, // every call is a 429 with retry_after_ms = 50
                    ..NoiseProfile::perfect()
                })
                .with_seed(8),
        )];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 2,
                backoff_ms: 1, // linear ramp alone would sleep ~3 ms total
                breaker: BreakerConfig {
                    failure_threshold: 100,
                    cooldown: Duration::from_millis(1),
                },
                ..RoutePolicy::default()
            },
        );
        let started = Instant::now();
        assert!(matches!(
            router.complete(&check(ids[0])),
            Err(LlmError::RetriesExhausted { .. })
        ));
        // Two retry sleeps, each floored by the 50 ms server hint.
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "retry sleeps must honor the Retry-After hint, elapsed {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn expired_deadline_stops_router_retries() {
        let (model, ids) = shared_model(1, 22);
        let backends: Vec<Arc<dyn Backend>> = vec![Arc::new(
            SimBackend::new("down", model)
                .with_transport_noise(NoiseProfile {
                    unavailable_prob: 1.0,
                    ..NoiseProfile::perfect()
                })
                .with_seed(9),
        )];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 5,
                breaker: BreakerConfig {
                    failure_threshold: 100,
                    cooldown: Duration::from_millis(1),
                },
                ..RoutePolicy::default()
            },
        );
        let request = check(ids[0]).with_deadline(Some(Instant::now()));
        match router.complete(&request) {
            Err(LlmError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, 1, "an expired deadline permits no retries");
            }
            other => panic!("expected deadline-capped exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_reprobes() {
        let (model, ids) = shared_model(8, 5);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(
                SimBackend::new("flaky", Arc::clone(&model))
                    .with_price_multiplier(0.1)
                    .with_transport_noise(NoiseProfile {
                        unavailable_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(2),
            ),
            Arc::new(SimBackend::new("steady", model)),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 1,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(3600),
                },
                ..RoutePolicy::default()
            },
        );
        for id in &ids {
            router.complete(&check(*id)).unwrap();
        }
        let stats = router.stats();
        assert!(stats.per_backend[0].open, "flaky breaker must be open");
        assert_eq!(stats.per_backend[0].breaker_trips, 1);
        assert_eq!(
            stats.per_backend[0].transient_failures, 2,
            "after the trip, traffic no longer reaches the flaky backend"
        );
        assert_eq!(stats.per_backend[1].wins, ids.len() as u64);
    }

    #[test]
    fn losing_selection_does_not_consume_the_half_open_probe() {
        let (model, ids) = shared_model(4, 14);
        let down = |id: &str, mult: f64, seed: u64| -> Arc<dyn Backend> {
            Arc::new(
                SimBackend::new(id, Arc::clone(&model))
                    .with_price_multiplier(mult)
                    .with_transport_noise(NoiseProfile {
                        unavailable_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(seed),
            )
        };
        let router = Router::new(
            BackendRegistry::new(vec![
                down("down-cheap", 0.5, 31),
                down("down-pricey", 2.0, 32),
            ])
            .unwrap(),
            RoutePolicy {
                max_retries: 1,
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_millis(20),
                },
                ..RoutePolicy::default()
            },
        );
        // Round 1 trips both breakers (cheap first, then the retry).
        assert!(matches!(
            router.complete(&check(ids[0])),
            Err(LlmError::RetriesExhausted { .. })
        ));
        std::thread::sleep(Duration::from_millis(40));
        // Round 2: both are probe-ready. The cheap backend wins selection
        // and burns its probe; the retry must then probe the pricey one —
        // merely *losing* round 2's first selection must not have consumed
        // its half-open slot (that would starve it forever and turn this
        // into CircuitOpen).
        assert!(matches!(
            router.complete(&check(ids[1])),
            Err(LlmError::RetriesExhausted { .. })
        ));
        let stats = router.stats();
        assert_eq!(stats.per_backend[0].dispatches, 2, "cheap: initial + probe");
        assert_eq!(
            stats.per_backend[1].dispatches, 2,
            "pricey: initial + probe"
        );
    }

    #[test]
    fn failed_hedge_secondary_is_avoided_on_retry() {
        let (model, ids) = shared_model(1, 15);
        let backends: Vec<Arc<dyn Backend>> = vec![
            // Cheapest: hangs ~30 ms, then times out.
            Arc::new(
                SimBackend::new("slow-broken", Arc::clone(&model))
                    .with_price_multiplier(0.3)
                    .with_latency(LatencyProfile::fixed(30_000))
                    .with_transport_noise(NoiseProfile {
                        timeout_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(41),
            ),
            // Mid-price: fails instantly — the hedge target.
            Arc::new(
                SimBackend::new("fast-broken", Arc::clone(&model))
                    .with_price_multiplier(0.6)
                    .with_transport_noise(NoiseProfile {
                        unavailable_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(42),
            ),
            Arc::new(SimBackend::new("healthy", Arc::clone(&model))),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 3,
                hedge: Some(HedgeConfig::after(Duration::from_millis(2))),
                ..RoutePolicy::default()
            },
        );
        let response = router.complete(&check(ids[0])).unwrap();
        assert_eq!(response.text, model.complete(&check(ids[0])).unwrap().text);
        let stats = router.stats();
        // The hedge secondary failed once during the hedged attempt; the
        // retry must skip it (it already failed this request), not pick it
        // again as the next-cheapest primary.
        assert_eq!(
            stats.per_backend[1].dispatches, 1,
            "failed hedge secondary must not be re-selected on retry"
        );
        assert_eq!(
            stats.per_backend[2].wins, 1,
            "retry lands on the healthy backend"
        );
    }

    #[test]
    fn panicking_backend_surfaces_error_not_deadlock_under_hedging() {
        struct PanicBackend {
            tier: String,
        }
        impl Backend for PanicBackend {
            fn id(&self) -> &str {
                "panics"
            }
            fn tier(&self) -> &str {
                &self.tier
            }
            fn context_window(&self) -> u32 {
                4096
            }
            fn pricing(&self) -> Pricing {
                Pricing::free()
            }
            fn slots(&self) -> usize {
                0
            }
            fn complete(
                &self,
                _request: &CompletionRequest,
                _cancel: &CancelToken,
            ) -> Result<CompletionResponse, LlmError> {
                panic!("custom backend exploded");
            }
        }
        let (_, ids) = shared_model(1, 16);
        let router = Router::new(
            BackendRegistry::new(vec![Arc::new(PanicBackend {
                tier: "sim-gpt-3.5-turbo".into(),
            }) as Arc<dyn Backend>])
            .unwrap(),
            RoutePolicy {
                max_retries: 0,
                hedge: Some(HedgeConfig::after(Duration::from_millis(1))),
                ..RoutePolicy::default()
            },
        );
        // The attempt thread dies without reporting; the hedged dispatch
        // must observe the disconnect and return an error rather than
        // blocking on the channel forever.
        let result = router.complete(&check(ids[0]));
        assert!(
            result.is_err(),
            "panicked backend yields an error, not a hang"
        );
    }

    #[test]
    fn all_breakers_open_fails_fast_with_circuit_open() {
        let (model, ids) = shared_model(4, 6);
        let backends: Vec<Arc<dyn Backend>> = vec![Arc::new(
            SimBackend::new("down", model)
                .with_transport_noise(NoiseProfile {
                    unavailable_prob: 1.0,
                    ..NoiseProfile::perfect()
                })
                .with_seed(3),
        )];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: 3,
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Duration::from_secs(3600),
                },
                ..RoutePolicy::default()
            },
        );
        // First call trips the breaker (first failure opens at threshold 1).
        assert!(router.complete(&check(ids[0])).is_err());
        match router.complete(&check(ids[1])) {
            Err(LlmError::CircuitOpen { model, retry_in_ms }) => {
                assert_eq!(model, "sim-gpt-3.5-turbo");
                // The 1-hour cooldown just started; the probe hint must
                // point (well) into it rather than inviting a blind retry.
                assert!(
                    retry_in_ms > 3_000_000,
                    "probe hint should reflect the cooldown, got {retry_in_ms}"
                );
            }
            other => panic!("expected circuit-open fail-fast, got {other:?}"),
        }
        assert_eq!(
            router.stats().per_backend[0].dispatches,
            1,
            "the circuit-open call never reached the backend"
        );
    }

    #[test]
    fn hedge_duplicates_straggler_and_winner_returns_first() {
        let (model, ids) = shared_model(1, 7);
        let backends: Vec<Arc<dyn Backend>> = vec![
            // Primary (cheapest) is extremely slow.
            Arc::new(
                SimBackend::new("slow", Arc::clone(&model))
                    .with_price_multiplier(0.5)
                    .with_latency(LatencyProfile::fixed(2_000_000)),
            ),
            Arc::new(SimBackend::new("fast", Arc::clone(&model))),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                hedge: Some(HedgeConfig::after(Duration::from_millis(2))),
                ..RoutePolicy::default()
            },
        );
        let started = Instant::now();
        let response = router.complete(&check(ids[0])).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(1_000),
            "hedge must beat the 2 s straggler"
        );
        assert_eq!(response.text, model.complete(&check(ids[0])).unwrap().text);
        let stats = router.stats();
        assert_eq!(stats.hedges_launched, 1);
        assert_eq!(stats.hedges_won, 1);
        assert_eq!(stats.per_backend[1].wins, 1);
        assert_eq!(stats.per_backend[0].wins, 0);
    }

    #[test]
    fn fast_primary_never_hedges() {
        let (model, ids) = shared_model(8, 8);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("fast", Arc::clone(&model)).with_price_multiplier(0.5)),
            Arc::new(SimBackend::new("other", model)),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                hedge: Some(HedgeConfig::after(Duration::from_millis(50))),
                ..RoutePolicy::default()
            },
        );
        for id in &ids {
            router.complete(&check(*id)).unwrap();
        }
        let stats = router.stats();
        assert_eq!(stats.hedges_launched, 0, "fast answers beat the delay");
        assert_eq!(stats.per_backend[0].wins, ids.len() as u64);
    }

    #[test]
    fn hedged_failure_falls_back_to_the_other_result() {
        let (model, ids) = shared_model(1, 9);
        let backends: Vec<Arc<dyn Backend>> = vec![
            // Primary: slow AND returns a transient error after its sleep.
            Arc::new(
                SimBackend::new("slow-broken", Arc::clone(&model))
                    .with_price_multiplier(0.5)
                    .with_latency(LatencyProfile::fixed(30_000))
                    .with_transport_noise(NoiseProfile {
                        timeout_prob: 1.0,
                        ..NoiseProfile::perfect()
                    })
                    .with_seed(4),
            ),
            Arc::new(SimBackend::new("fast", Arc::clone(&model))),
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                hedge: Some(HedgeConfig::after(Duration::from_millis(2))),
                ..RoutePolicy::default()
            },
        );
        let response = router.complete(&check(ids[0])).unwrap();
        assert_eq!(response.text, model.complete(&check(ids[0])).unwrap().text);
        assert_eq!(router.stats().hedges_won, 1);
    }

    #[test]
    fn adaptive_hedge_delay_tracks_observed_percentile() {
        let (model, ids) = shared_model(32, 10);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(
                SimBackend::new("primary", Arc::clone(&model))
                    .with_price_multiplier(0.5)
                    .with_latency(LatencyProfile::fixed(3_000)),
            ),
            Arc::new(SimBackend::new("other", model)),
        ];
        // Warm without hedging (a cancelled straggler records no latency,
        // so an always-winning hedge would starve the window of samples).
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy::default(),
        );
        // Before any history, the delay is the (far too low) floor; once
        // the latency window fills with ~3 ms observations, the adaptive
        // p90 trigger takes over.
        let floor = HedgeConfig::after(Duration::from_micros(100));
        assert_eq!(router.hedge_delay(0, &floor), Duration::from_micros(100));
        for id in &ids {
            router.complete(&check(*id)).unwrap();
        }
        assert!(
            router.hedge_delay(0, &floor) >= Duration::from_millis(2),
            "observed p90 must override the floor"
        );
    }

    #[test]
    fn lease_reserve_to_capacity_then_shed() {
        let table = LeaseTable::new(2);
        let a = table.reserve(0, 10).unwrap();
        let b = table.reserve(0, 10).unwrap();
        assert_ne!(a.slot(), b.slot());
        assert!(table.reserve(0, 10).is_none(), "saturated table must shed");
        assert_eq!(table.in_use(0), 2);
        table.release(&a);
        assert!(table.reserve(0, 10).is_some());
    }

    #[test]
    fn lease_unconfirmed_reservation_expires_and_is_reclaimed() {
        let table = LeaseTable::new(1);
        let stale = table.reserve(0, 5).unwrap();
        // Generation 5: the reservation's TTL has elapsed without a confirm.
        let fresh = table.reserve(5, 5).unwrap();
        assert_eq!(stale.slot(), fresh.slot(), "expired slot is reused");
        assert!(
            !table.confirm(&stale, 5, 5),
            "a reclaimed lease must fail confirmation"
        );
        assert!(table.confirm(&fresh, 5, 5));
        // Releasing the stale lease must not free the fresh holder's slot.
        table.release(&stale);
        assert_eq!(table.in_use(5), 1);
    }

    #[test]
    fn lease_confirm_renews_expiry() {
        let table = LeaseTable::new(1);
        let lease = table.reserve(0, 5).unwrap();
        assert!(table.confirm(&lease, 4, 5), "confirm within TTL succeeds");
        // Without the renewal the lease would expire at gen 5; confirm at
        // gen 4 pushed expiry to gen 9.
        assert_eq!(table.in_use(8), 1);
        assert!(table.reserve(8, 5).is_none());
        // A confirmed-but-stalled lease still expires eventually.
        assert_eq!(table.in_use(9), 0);
        assert!(table.reserve(9, 5).is_some());
    }

    #[test]
    fn lease_release_is_idempotent() {
        let table = LeaseTable::new(1);
        let lease = table.reserve(0, 5).unwrap();
        table.release(&lease);
        table.release(&lease);
        assert_eq!(table.in_use(0), 0);
        let next = table.reserve(0, 5).unwrap();
        table.release(&lease); // stale double-release must not evict `next`
        assert!(table.confirm(&next, 0, 5));
        assert_eq!(table.confirmed_in_use(0), 1);
    }

    #[test]
    fn router_total_slots_sums_roster() {
        let (model, _) = shared_model(4, 77);
        let backends: Vec<Arc<dyn Backend>> = vec![
            Arc::new(SimBackend::new("a", Arc::clone(&model)).with_slots(4)),
            Arc::new(SimBackend::new("b", Arc::clone(&model)).with_slots(2)),
            Arc::new(SimBackend::new("c", model)), // unbounded -> nominal 16
        ];
        let router = Router::new(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy::default(),
        );
        assert_eq!(router.total_slots(), 22);
    }
}
