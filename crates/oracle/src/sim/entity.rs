//! Simulation of entity-resolution tasks (paper §3.3).

use rand::Rng;

use crate::model::NoiseProfile;
use crate::sim::similarity::trigram_jaccard;
use crate::world::{ItemId, WorldModel};

/// Simulate "Are A and B the same entity? Yes or No?".
///
/// Calibrated to the paper's baseline observation — high precision, low
/// recall:
/// * For **true duplicates**, P(yes) interpolates between `er_recall_hard`
///   (dissimilar surface forms) and `er_recall_easy` (near-identical
///   strings) as a function of trigram similarity. The paper's validation
///   pairs are deliberately hard, so average recall lands near 0.5.
/// * For **non-duplicates**, P(yes) is a small base rate plus a bump for
///   deceptively similar strings, keeping precision high.
pub fn simulate_same_entity<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    left: ItemId,
    right: ItemId,
    rng: &mut R,
) -> bool {
    simulate_same_entity_with_confidence(world, noise, left, right, rng).0
}

/// Like [`simulate_same_entity`] but also returns the answer probability
/// (the simulator's stand-in for answer-token logprobs).
pub fn simulate_same_entity_with_confidence<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    left: ItemId,
    right: ItemId,
    rng: &mut R,
) -> (bool, f64) {
    let ta = world.text(left).unwrap_or("");
    let tb = world.text(right).unwrap_or("");
    let sim = trigram_jaccard(ta, tb);
    let p_yes = match world.same_cluster(left, right) {
        Some(true) => {
            // Ease rises with surface similarity: map sim in [0.25, 0.65]
            // onto [0, 1] so near-identical pairs are almost always caught
            // while heavily garbled ones usually are not.
            let ease = ((sim - 0.25) / 0.40).clamp(0.0, 1.0);
            noise.er_recall_hard + (noise.er_recall_easy - noise.er_recall_hard) * ease
        }
        Some(false) | None => {
            let confusable = ((sim - 0.55) / 0.35).clamp(0.0, 1.0);
            noise.er_fp_base + noise.er_fp_similar * confusable
        }
    };
    let p_yes = p_yes.clamp(0.0, 1.0);
    let answer = rng.random_bool(p_yes);
    let base = if answer { p_yes } else { 1.0 - p_yes };
    let confidence = (base + crate::sim::randx::gauss(rng) * 0.08).clamp(0.5, 0.99);
    (answer, confidence)
}

/// Simulate coarse grouping of a batch into duplicate clusters.
///
/// Starts from the true clustering restricted to the batch, then injects
/// merge errors (two clusters fused) and split errors (one cluster broken)
/// with the configured probabilities.
pub fn simulate_group_entities<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    items: &[ItemId],
    rng: &mut R,
) -> Vec<Vec<ItemId>> {
    use std::collections::HashMap;
    // True clusters restricted to the batch (singletons for unclustered).
    let mut by_cluster: HashMap<u64, Vec<ItemId>> = HashMap::new();
    let mut singleton_key = u64::MAX;
    for &id in items {
        match world.cluster(id) {
            Some(c) => by_cluster.entry(c).or_default().push(id),
            None => {
                by_cluster.insert(singleton_key, vec![id]);
                singleton_key -= 1;
            }
        }
    }
    let mut groups: Vec<Vec<ItemId>> = by_cluster.into_values().collect();
    // Deterministic order before random edits.
    groups.sort_by_key(|g| g.iter().min().copied());

    // Merge error: fuse two random groups.
    if groups.len() >= 2 && rng.random_bool(noise.group_merge_error.clamp(0.0, 1.0)) {
        let i = rng.random_range(0..groups.len());
        let mut j = rng.random_range(0..groups.len() - 1);
        if j >= i {
            j += 1;
        }
        let (lo, hi) = (i.min(j), i.max(j));
        let merged = groups.remove(hi);
        groups[lo].extend(merged);
    }
    // Split error: break a multi-item group in two.
    if rng.random_bool(noise.group_split_error.clamp(0.0, 1.0)) {
        if let Some(idx) = groups.iter().position(|g| g.len() >= 2) {
            let group = groups[idx].clone();
            let cut = rng.random_range(1..group.len());
            groups[idx] = group[..cut].to_vec();
            groups.push(group[cut..].to_vec());
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn er_world() -> (WorldModel, Vec<ItemId>) {
        let mut w = WorldModel::new();
        // Cluster 1: an easy near-identical pair.
        let a1 = w.add_item("indexing the positions of continuously moving objects");
        let a2 = w.add_item("indexing the positions of continuously moving object");
        // Cluster 1 also has a hard variant.
        let a3 = w.add_item("position indexing, moving objs (VLDB)");
        // Cluster 2: unrelated.
        let b1 = w.add_item("crowder crowdsourcing entity resolution pvldb");
        for (id, c) in [(a1, 1u64), (a2, 1), (a3, 1), (b1, 2)] {
            w.set_cluster(id, c);
        }
        (w, vec![a1, a2, a3, b1])
    }

    fn rate_yes(world: &WorldModel, noise: &NoiseProfile, l: ItemId, r: ItemId) -> f64 {
        let mut yes = 0;
        for seed in 0..500 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_same_entity(world, noise, l, r, &mut rng) {
                yes += 1;
            }
        }
        f64::from(yes) / 500.0
    }

    #[test]
    fn easy_duplicates_usually_caught() {
        let (w, ids) = er_world();
        let noise = NoiseProfile::default();
        let p = rate_yes(&w, &noise, ids[0], ids[1]);
        assert!(p > 0.85, "easy dup p(yes) = {p}");
    }

    #[test]
    fn hard_duplicates_often_missed() {
        let (w, ids) = er_world();
        let noise = NoiseProfile::default();
        let p = rate_yes(&w, &noise, ids[0], ids[2]);
        assert!(p < 0.6, "hard dup p(yes) = {p}");
    }

    #[test]
    fn non_duplicates_rarely_matched() {
        let (w, ids) = er_world();
        let noise = NoiseProfile::default();
        let p = rate_yes(&w, &noise, ids[0], ids[3]);
        assert!(p < 0.05, "non-dup p(yes) = {p}");
    }

    #[test]
    fn perfect_noise_is_exact() {
        let (w, ids) = er_world();
        let noise = NoiseProfile::perfect();
        assert_eq!(rate_yes(&w, &noise, ids[0], ids[2]), 1.0);
        assert_eq!(rate_yes(&w, &noise, ids[0], ids[3]), 0.0);
    }

    #[test]
    fn grouping_perfect_recovers_clusters() {
        let (w, ids) = er_world();
        let noise = NoiseProfile::perfect();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let groups = simulate_group_entities(&w, &noise, &ids, &mut rng);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = groups.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn grouping_covers_all_items_even_with_errors() {
        let (w, ids) = er_world();
        let noise = NoiseProfile {
            group_merge_error: 1.0,
            group_split_error: 1.0,
            ..NoiseProfile::default()
        };
        for seed in 0..50 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let groups = simulate_group_entities(&w, &noise, &ids, &mut rng);
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, ids.len());
            assert!(groups.iter().all(|g| !g.is_empty()));
        }
    }
}
