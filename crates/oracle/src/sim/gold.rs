//! Ground-truth answers for unit tasks, used by the verification simulator.
//!
//! `Verify` tasks ask whether a previously proposed answer is correct. The
//! simulated verifier needs to know the *true* answer to the original task so
//! it can agree or disagree with the configured verifier accuracy.

use crate::task::{SortCriterion, TaskDescriptor};
use crate::world::WorldModel;

/// Compute the canonical gold answer string for an answerable unit task.
///
/// Returns `None` for task kinds without a single canonical answer string
/// (whole-list sorts, grouping) or when the world model lacks the facts.
pub fn gold_answer(world: &WorldModel, task: &TaskDescriptor) -> Option<String> {
    match task {
        TaskDescriptor::Compare {
            left,
            right,
            criterion,
        } => {
            let before = match criterion {
                SortCriterion::LatentScore => world.score(*left)? > world.score(*right)?,
                SortCriterion::Lexicographic => world.sort_key(*left)? < world.sort_key(*right)?,
            };
            Some(yes_no(before))
        }
        TaskDescriptor::SameEntity { left, right } => {
            Some(yes_no(world.same_cluster(*left, *right)?))
        }
        TaskDescriptor::Rate {
            item,
            scale_min,
            scale_max,
            criterion,
        } => {
            let norm = match criterion {
                SortCriterion::LatentScore => world.score(*item)?,
                // Rating on a lexicographic criterion is ill-posed; treat the
                // key's first letter position as a normalized score.
                SortCriterion::Lexicographic => {
                    let key = world.sort_key(*item)?;
                    let first = key.chars().next().unwrap_or('a');
                    (first.to_ascii_lowercase() as u32).saturating_sub('a' as u32) as f64 / 25.0
                }
            };
            Some(quantize(norm, *scale_min, *scale_max).to_string())
        }
        TaskDescriptor::Impute {
            item, attribute, ..
        } => world.attr(*item, attribute).map(str::to_owned),
        TaskDescriptor::CheckPredicate { item, predicate } => {
            Some(yes_no(world.flag(*item, predicate)?))
        }
        TaskDescriptor::Classify { item, .. } => world.attr(*item, "label").map(str::to_owned),
        TaskDescriptor::CountPredicate {
            items, predicate, ..
        } => {
            let mut count = 0usize;
            for it in items {
                if world.flag(*it, predicate)? {
                    count += 1;
                }
            }
            Some(count.to_string())
        }
        // Multi-answer tasks have no single canonical answer string.
        TaskDescriptor::SortList { .. }
        | TaskDescriptor::GroupEntities { .. }
        | TaskDescriptor::CompareBatch { .. }
        | TaskDescriptor::Packed { .. } => None,
        TaskDescriptor::Verify { original, .. } => {
            // The gold answer to "is this proposed answer right?" is itself a
            // yes/no derived from the inner gold answer.
            let inner_gold = gold_answer(world, original)?;
            if let TaskDescriptor::Verify {
                proposed_answer, ..
            } = task
            {
                Some(yes_no(answers_match(&inner_gold, proposed_answer)))
            } else {
                unreachable!("outer match arm guarantees Verify")
            }
        }
    }
}

/// Quantize a normalized score in `[0,1]` onto an inclusive integer scale.
pub fn quantize(norm: f64, scale_min: u8, scale_max: u8) -> u8 {
    let lo = f64::from(scale_min);
    let hi = f64::from(scale_max);
    let raw = lo + norm.clamp(0.0, 1.0) * (hi - lo);
    (raw.round().clamp(lo, hi)) as u8
}

/// Canonical yes/no rendering.
pub fn yes_no(b: bool) -> String {
    if b { "yes" } else { "no" }.to_owned()
}

/// Loose answer equality: case-insensitive, trimmed.
pub fn answers_match(gold: &str, proposed: &str) -> bool {
    gold.trim().eq_ignore_ascii_case(proposed.trim())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldModel;

    fn world_with_scores() -> (WorldModel, crate::world::ItemId, crate::world::ItemId) {
        let mut w = WorldModel::new();
        let a = w.add_item("chocolate fudge");
        let b = w.add_item("lemon sorbet");
        w.set_score(a, 0.9);
        w.set_score(b, 0.1);
        (w, a, b)
    }

    #[test]
    fn compare_gold_follows_scores() {
        let (w, a, b) = world_with_scores();
        let t = TaskDescriptor::Compare {
            left: a,
            right: b,
            criterion: SortCriterion::LatentScore,
        };
        assert_eq!(gold_answer(&w, &t), Some("yes".into()));
        let t = TaskDescriptor::Compare {
            left: b,
            right: a,
            criterion: SortCriterion::LatentScore,
        };
        assert_eq!(gold_answer(&w, &t), Some("no".into()));
    }

    #[test]
    fn compare_gold_lexicographic() {
        let mut w = WorldModel::new();
        let a = w.add_item("apple");
        let z = w.add_item("zebra");
        w.set_sort_key(a, "apple");
        w.set_sort_key(z, "zebra");
        let t = TaskDescriptor::Compare {
            left: a,
            right: z,
            criterion: SortCriterion::Lexicographic,
        };
        assert_eq!(gold_answer(&w, &t), Some("yes".into()));
    }

    #[test]
    fn rate_gold_quantizes() {
        let (w, a, _) = world_with_scores();
        let t = TaskDescriptor::Rate {
            item: a,
            scale_min: 1,
            scale_max: 7,
            criterion: SortCriterion::LatentScore,
        };
        // 1 + 0.9 * 6 = 6.4 -> 6
        assert_eq!(gold_answer(&w, &t), Some("6".into()));
    }

    #[test]
    fn quantize_bounds() {
        assert_eq!(quantize(0.0, 1, 7), 1);
        assert_eq!(quantize(1.0, 1, 7), 7);
        assert_eq!(quantize(-5.0, 1, 7), 1);
        assert_eq!(quantize(5.0, 1, 7), 7);
        assert_eq!(quantize(0.5, 1, 7), 4);
    }

    #[test]
    fn verify_gold_checks_inner_answer() {
        let (w, a, b) = world_with_scores();
        let inner = TaskDescriptor::Compare {
            left: a,
            right: b,
            criterion: SortCriterion::LatentScore,
        };
        let v_right = TaskDescriptor::Verify {
            original: Box::new(inner.clone()),
            proposed_answer: "Yes".into(),
        };
        assert_eq!(gold_answer(&w, &v_right), Some("yes".into()));
        let v_wrong = TaskDescriptor::Verify {
            original: Box::new(inner),
            proposed_answer: "no".into(),
        };
        assert_eq!(gold_answer(&w, &v_wrong), Some("no".into()));
    }

    #[test]
    fn missing_facts_yield_none() {
        let mut w = WorldModel::new();
        let a = w.add_item("x");
        let b = w.add_item("y");
        let t = TaskDescriptor::Compare {
            left: a,
            right: b,
            criterion: SortCriterion::LatentScore,
        };
        assert_eq!(gold_answer(&w, &t), None);
    }

    #[test]
    fn count_gold_counts_flags() {
        let mut w = WorldModel::new();
        let ids: Vec<_> = (0..5).map(|i| w.add_item(format!("i{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            w.set_flag(*id, "even", i % 2 == 0);
        }
        let t = TaskDescriptor::CountPredicate {
            items: ids,
            predicate: "even".into(),
            mode: crate::task::CountMode::Eyeball,
        };
        assert_eq!(gold_answer(&w, &t), Some("3".into()));
    }

    #[test]
    fn answers_match_is_loose() {
        assert!(answers_match("yes", " Yes "));
        assert!(answers_match("Berkeley", "berkeley"));
        assert!(!answers_match("yes", "no"));
    }
}
