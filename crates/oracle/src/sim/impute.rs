//! Simulation of missing-value imputation tasks (paper §3.4).

use rand::Rng;

use crate::model::NoiseProfile;
use crate::sim::mutate::{format_variant, has_format_variants};
use crate::world::{ItemId, WorldModel};

/// Simulate "predict the missing attribute from the serialized record".
///
/// Accuracy rises with the number of few-shot examples (saturating at
/// `impute_max_acc`). Even semantically correct answers may be rendered as a
/// *formatting variant* of the gold value ("TomTom" for "Tom Tom") — the
/// paper notes LLM-only imputation was "unfairly penalized" by exact-match
/// scoring for exactly this reason. Examples teach the output format, so the
/// variant probability halves with each shot.
pub fn simulate_impute<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    item: ItemId,
    attribute: &str,
    n_examples: usize,
    rng: &mut R,
) -> String {
    let gold = match world.attr(item, attribute) {
        Some(v) => v.to_owned(),
        None => return "unknown".to_owned(),
    };
    let acc = (noise.impute_base_acc + noise.impute_shot_bonus * n_examples as f64)
        .min(noise.impute_max_acc)
        .clamp(0.0, 1.0);
    if rng.random_bool(acc) {
        // Semantically right; maybe formatted differently — but only values
        // with structural variants (spaces, camel-case) can come out
        // "wrongly" formatted. Few-shot examples teach the expected format,
        // halving the variant probability per shot.
        let variant_p = noise.impute_format_variant_rate * 0.5f64.powi(n_examples as i32);
        if has_format_variants(&gold)
            && variant_p > 0.0
            && rng.random_bool(variant_p.clamp(0.0, 1.0))
        {
            return format_variant(&gold, rng);
        }
        gold
    } else {
        // Wrong but plausible: another value from the same attribute domain.
        let pool: Vec<&str> = world
            .values_of_attr(attribute)
            .into_iter()
            .filter(|v| *v != gold)
            .collect();
        if pool.is_empty() {
            format_variant(&gold, rng)
        } else {
            pool[rng.random_range(0..pool.len())].to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn city_world() -> (WorldModel, Vec<ItemId>) {
        let mut w = WorldModel::new();
        let cities = ["Berkeley", "San Francisco", "Oakland", "Palo Alto"];
        let ids: Vec<ItemId> = (0..40)
            .map(|i| {
                let id = w.add_item(format!("restaurant {i}"));
                w.set_attr(id, "city", cities[i % cities.len()]);
                id
            })
            .collect();
        (w, ids)
    }

    fn accuracy(world: &WorldModel, noise: &NoiseProfile, shots: usize, runs: u64) -> f64 {
        let ids = world.item_ids();
        let mut correct = 0u32;
        let mut total = 0u32;
        for seed in 0..runs {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for &id in &ids {
                let gold = world.attr(id, "city").unwrap();
                let ans = simulate_impute(world, noise, id, "city", shots, &mut rng);
                if ans == gold {
                    correct += 1;
                }
                total += 1;
            }
        }
        f64::from(correct) / f64::from(total)
    }

    #[test]
    fn perfect_noise_always_gold() {
        let (w, ids) = city_world();
        let noise = NoiseProfile::perfect();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for &id in &ids {
            assert_eq!(
                simulate_impute(&w, &noise, id, "city", 0, &mut rng),
                w.attr(id, "city").unwrap()
            );
        }
    }

    #[test]
    fn examples_improve_exact_match_accuracy() {
        let (w, _) = city_world();
        let noise = NoiseProfile::default();
        let acc0 = accuracy(&w, &noise, 0, 20);
        let acc3 = accuracy(&w, &noise, 3, 20);
        assert!(
            acc3 > acc0 + 0.03,
            "3-shot ({acc3:.3}) should beat 0-shot ({acc0:.3})"
        );
    }

    #[test]
    fn wrong_answers_come_from_attribute_domain_or_variants() {
        let (w, ids) = city_world();
        let noise = NoiseProfile {
            impute_base_acc: 0.0,
            impute_max_acc: 0.0,
            impute_format_variant_rate: 0.0,
            ..NoiseProfile::default()
        };
        let domain: std::collections::HashSet<&str> =
            w.values_of_attr("city").into_iter().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &id in &ids {
            let gold = w.attr(id, "city").unwrap();
            let ans = simulate_impute(&w, &noise, id, "city", 0, &mut rng);
            assert_ne!(ans, gold);
            assert!(domain.contains(ans.as_str()), "answer {ans} outside domain");
        }
    }

    #[test]
    fn unknown_attribute_degrades_gracefully() {
        let (w, ids) = city_world();
        let noise = NoiseProfile::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(
            simulate_impute(&w, &noise, ids[0], "nonexistent", 0, &mut rng),
            "unknown"
        );
    }

    #[test]
    fn format_variants_occur_at_zero_shot() {
        let mut w = WorldModel::new();
        let id = w.add_item("gps vendor record");
        w.set_attr(id, "manufacturer", "Tom Tom");
        let noise = NoiseProfile {
            impute_base_acc: 1.0,
            impute_max_acc: 1.0,
            impute_format_variant_rate: 1.0,
            ..NoiseProfile::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ans = simulate_impute(&w, &noise, id, "manufacturer", 0, &mut rng);
        assert_ne!(ans, "Tom Tom");
    }
}
