//! Simulation of counting, predicate checks, classification, and
//! verification tasks (paper §3.1 and §3.5).

use rand::Rng;

use crate::model::NoiseProfile;
use crate::sim::gold::{answers_match, gold_answer};
use crate::sim::randx::gauss_with;
use crate::task::TaskDescriptor;
use crate::world::{ItemId, WorldModel};

/// Simulate a coarse "eyeball the batch and estimate the count" task.
///
/// The estimate is the true proportion plus Gaussian noise, scaled back to a
/// count and clamped to `[0, n]` — modelling Marcus et al.'s coarse counting.
pub fn simulate_count_eyeball<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    items: &[ItemId],
    predicate: &str,
    rng: &mut R,
) -> usize {
    let n = items.len();
    if n == 0 {
        return 0;
    }
    let true_count = items
        .iter()
        .filter(|id| world.flag(**id, predicate).unwrap_or(false))
        .count();
    let p = true_count as f64 / n as f64;
    let noised = gauss_with(rng, p, noise.eyeball_sigma).clamp(0.0, 1.0);
    (noised * n as f64).round() as usize
}

/// Simulate a fine-grained per-item predicate check.
pub fn simulate_check<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    item: ItemId,
    predicate: &str,
    rng: &mut R,
) -> bool {
    simulate_check_with_confidence(world, noise, item, predicate, rng).0
}

/// Like [`simulate_check`] but also returns the answer probability (the
/// simulator's stand-in for answer-token logprobs): the configured
/// per-call accuracy when the answer matches truth, its complement when
/// the call erred.
pub fn simulate_check_with_confidence<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    item: ItemId,
    predicate: &str,
    rng: &mut R,
) -> (bool, f64) {
    let truth = world.flag(item, predicate).unwrap_or(false);
    let acc = noise.check_accuracy.clamp(0.0, 1.0);
    let correct = rng.random_bool(acc);
    let answer = if correct { truth } else { !truth };
    let base = if correct { acc } else { 1.0 - acc };
    // Jitter: confidences correlate with correctness without revealing it.
    let confidence = (base + crate::sim::randx::gauss(rng) * 0.08).clamp(0.5, 0.99);
    (answer, confidence)
}

/// Simulate a classification task: correct with `classify_accuracy`, else a
/// uniformly random *other* label.
pub fn simulate_classify<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    item: ItemId,
    labels: &[String],
    rng: &mut R,
) -> String {
    let gold = world.attr(item, "label").unwrap_or("");
    let correct = rng.random_bool(noise.classify_accuracy.clamp(0.0, 1.0));
    if correct && !gold.is_empty() {
        return gold.to_owned();
    }
    let others: Vec<&String> = labels.iter().filter(|l| l.as_str() != gold).collect();
    if others.is_empty() {
        labels.first().cloned().unwrap_or_else(|| gold.to_owned())
    } else {
        others[rng.random_range(0..others.len())].clone()
    }
}

/// Simulate a verification task: the verifier computes the true verdict on
/// the proposed answer, then reports it correctly with `verify_accuracy`.
///
/// Returns `Some(verdict)` or `None` when the inner task has no canonical
/// gold answer (e.g. whole-list sorts), in which case the simulator
/// abstains — mirroring a model that cannot check what it cannot re-derive.
pub fn simulate_verify<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    original: &TaskDescriptor,
    proposed_answer: &str,
    rng: &mut R,
) -> Option<bool> {
    let gold = gold_answer(world, original)?;
    let true_verdict = answers_match(&gold, proposed_answer);
    Some(if rng.random_bool(noise.verify_accuracy.clamp(0.0, 1.0)) {
        true_verdict
    } else {
        !true_verdict
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SortCriterion;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn flag_world(n: usize, true_every: usize) -> (WorldModel, Vec<ItemId>) {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..n)
            .map(|i| {
                let id = w.add_item(format!("snippet {i}"));
                w.set_flag(id, "positive", i % true_every == 0);
                id
            })
            .collect();
        (w, ids)
    }

    #[test]
    fn eyeball_close_to_truth() {
        let (w, ids) = flag_world(100, 4); // 25 true
        let noise = NoiseProfile::default();
        let mut total = 0usize;
        for seed in 0..100 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total += simulate_count_eyeball(&w, &noise, &ids, "positive", &mut rng);
        }
        let avg = total as f64 / 100.0;
        assert!((17.0..=33.0).contains(&avg), "avg estimate {avg}");
    }

    #[test]
    fn eyeball_perfect_is_exact() {
        let (w, ids) = flag_world(60, 3); // 20 true
        let noise = NoiseProfile::perfect();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            simulate_count_eyeball(&w, &noise, &ids, "positive", &mut rng),
            20
        );
    }

    #[test]
    fn eyeball_empty_batch() {
        let w = WorldModel::new();
        let noise = NoiseProfile::default();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(simulate_count_eyeball(&w, &noise, &[], "p", &mut rng), 0);
    }

    #[test]
    fn check_accuracy_tracks_configuration() {
        let (w, ids) = flag_world(1, 1); // single true item
        let noise = NoiseProfile {
            check_accuracy: 0.8,
            ..NoiseProfile::default()
        };
        let mut correct = 0;
        for seed in 0..1000 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_check(&w, &noise, ids[0], "positive", &mut rng) {
                correct += 1;
            }
        }
        assert!((750..=850).contains(&correct), "correct={correct}");
    }

    #[test]
    fn classify_returns_candidate_label() {
        let mut w = WorldModel::new();
        let id = w.add_item("review text");
        w.set_attr(id, "label", "positive");
        let labels = vec![
            "positive".to_owned(),
            "negative".to_owned(),
            "neutral".to_owned(),
        ];
        let noise = NoiseProfile::default();
        for seed in 0..100 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let out = simulate_classify(&w, &noise, id, &labels, &mut rng);
            assert!(labels.contains(&out));
        }
    }

    #[test]
    fn verify_agrees_with_gold_when_accurate() {
        let mut w = WorldModel::new();
        let a = w.add_item("a");
        let b = w.add_item("b");
        w.set_score(a, 0.9);
        w.set_score(b, 0.1);
        let inner = TaskDescriptor::Compare {
            left: a,
            right: b,
            criterion: SortCriterion::LatentScore,
        };
        let noise = NoiseProfile {
            verify_accuracy: 1.0,
            ..NoiseProfile::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(
            simulate_verify(&w, &noise, &inner, "yes", &mut rng),
            Some(true)
        );
        assert_eq!(
            simulate_verify(&w, &noise, &inner, "no", &mut rng),
            Some(false)
        );
    }

    #[test]
    fn verify_abstains_without_gold() {
        let w = WorldModel::new();
        let noise = NoiseProfile::default();
        let inner = TaskDescriptor::SortList {
            items: vec![],
            criterion: SortCriterion::LatentScore,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(simulate_verify(&w, &noise, &inner, "x", &mut rng), None);
    }
}
