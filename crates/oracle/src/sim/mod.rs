//! The simulated LLM: executes [`TaskDescriptor`]s against a [`WorldModel`]
//! with calibrated noise, and renders answers through the chatter layer.

pub mod entity;
pub mod gold;
pub mod impute;
pub mod misc;
pub mod mutate;
pub mod randx;
pub mod similarity;
pub mod sorting;

use std::sync::Arc;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::chatter::{self, ChatterStyle};
use crate::error::LlmError;
use crate::hash;
use crate::model::ModelProfile;
use crate::task::{CountMode, TaskDescriptor};
use crate::tokenizer::{count_tokens, truncate_to_tokens};
use crate::types::{CompletionRequest, CompletionResponse, FinishReason, LanguageModel, Usage};
use crate::world::WorldModel;

/// A deterministic, seeded noisy-oracle language model.
///
/// Thread safe and stateless: every random decision is a pure function of
/// `(instance seed, request fingerprint, decision tag)`, so the same request
/// at temperature 0 always yields the same response, while distinct
/// `sample_index` values at temperature > 0 decorrelate repeated samples.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    profile: ModelProfile,
    world: Arc<WorldModel>,
    seed: u64,
}

impl SimulatedLlm {
    /// Create a simulator over the given world with the given profile.
    pub fn new(profile: ModelProfile, world: Arc<WorldModel>, seed: u64) -> Self {
        SimulatedLlm {
            profile,
            world,
            seed,
        }
    }

    /// The model profile in use.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The world model backing this simulator.
    pub fn world(&self) -> &Arc<WorldModel> {
        &self.world
    }

    fn rng_for(&self, request: &CompletionRequest, tag: &str) -> ChaCha8Rng {
        let key = hash::combine(
            self.seed,
            hash::combine(request.fingerprint(), hash::fnv1a_str(tag)),
        );
        ChaCha8Rng::seed_from_u64(key)
    }

    /// RNG for one sub-task inside a packed prompt, keyed by the *sub-task*
    /// (plus the request's sampling coordinates) rather than the packed
    /// request: the same item asked the same question at the same
    /// temperature/sample draws the same answer no matter which pack carries
    /// it, so bisection retries of a failed pack answer consistently.
    fn packed_sub_rng(&self, request: &CompletionRequest, sub: &TaskDescriptor) -> ChaCha8Rng {
        let mut key = hash::combine(sub.fingerprint(), request.temperature.to_bits());
        if request.temperature > 0.0 {
            key = hash::combine(key, u64::from(request.sample_index));
        }
        ChaCha8Rng::seed_from_u64(hash::combine(
            self.seed,
            hash::combine(key, hash::fnv1a_str("task")),
        ))
    }

    fn chatter_style(&self, request: &CompletionRequest, allow_malformed: bool) -> ChatterStyle {
        let mut rng = self.rng_for(request, "chatter");
        let malformed = allow_malformed
            && self.profile.noise.malformed_rate > 0.0
            && rng.random_bool(self.profile.noise.malformed_rate.clamp(0.0, 1.0));
        ChatterStyle {
            level: self.profile.noise.chatter_level,
            variant: rng.random::<u64>(),
            malformed,
        }
    }

    fn validate(&self, request: &CompletionRequest) -> Result<(), LlmError> {
        match &request.task {
            TaskDescriptor::SortList { items, .. } if items.is_empty() => Err(
                LlmError::InvalidRequest("sort_list task with no items".into()),
            ),
            TaskDescriptor::GroupEntities { items } if items.is_empty() => Err(
                LlmError::InvalidRequest("group_entities task with no items".into()),
            ),
            TaskDescriptor::CompareBatch { pairs, .. } if pairs.is_empty() => Err(
                LlmError::InvalidRequest("compare_batch task with no pairs".into()),
            ),
            TaskDescriptor::Classify { labels, .. } if labels.is_empty() => Err(
                LlmError::InvalidRequest("classify task with no labels".into()),
            ),
            TaskDescriptor::Rate {
                scale_min,
                scale_max,
                ..
            } if scale_min >= scale_max => Err(LlmError::InvalidRequest(format!(
                "rating scale [{scale_min}, {scale_max}] is empty"
            ))),
            TaskDescriptor::Packed { tasks } => {
                // Re-check the packing contract: [`TaskDescriptor::packed`]
                // enforces it at construction, but requests can be built by
                // hand.
                let Some(first) = tasks.first() else {
                    return Err(LlmError::InvalidRequest(
                        "packed task with no sub-tasks".into(),
                    ));
                };
                if tasks
                    .iter()
                    .any(|t| !t.packable() || !first.pack_compatible(t))
                {
                    return Err(LlmError::InvalidRequest(
                        "packed sub-tasks must be packable and share one instruction".into(),
                    ));
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Generate the raw (pre-truncation) response text for a request, plus
    /// the answer confidence for binary-answer task kinds.
    fn generate(&self, request: &CompletionRequest) -> (String, Option<f64>) {
        let noise = &self.profile.noise;
        let world = &self.world;
        let mut rng = self.rng_for(request, "task");
        match &request.task {
            TaskDescriptor::SortList { items, criterion } => {
                let out = sorting::simulate_sort_list(world, noise, items, *criterion, &mut rng);
                let refs: Vec<&str> = out.entries.iter().map(String::as_str).collect();
                (
                    chatter::wrap_list(&refs, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::Compare {
                left,
                right,
                criterion,
            } => {
                let (yes, confidence) = sorting::simulate_compare_with_confidence(
                    world, noise, *left, *right, *criterion, &mut rng,
                );
                (
                    chatter::wrap_yes_no(yes, self.chatter_style(request, true)),
                    Some(confidence),
                )
            }
            TaskDescriptor::CompareBatch { pairs, criterion } => {
                let answers =
                    sorting::simulate_compare_batch(world, noise, pairs, *criterion, &mut rng);
                let rendered: Vec<&str> = answers
                    .iter()
                    .map(|yes| if *yes { "Yes" } else { "No" })
                    .collect();
                (
                    chatter::wrap_list(&rendered, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::Rate {
                item,
                scale_min,
                scale_max,
                criterion,
            } => {
                let r = sorting::simulate_rate(
                    world, noise, *item, *scale_min, *scale_max, *criterion, &mut rng,
                );
                (
                    chatter::wrap_rating(r, *scale_max, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::SameEntity { left, right } => {
                let (yes, confidence) = entity::simulate_same_entity_with_confidence(
                    world, noise, *left, *right, &mut rng,
                );
                (
                    chatter::wrap_yes_no(yes, self.chatter_style(request, true)),
                    Some(confidence),
                )
            }
            TaskDescriptor::GroupEntities { items } => {
                let groups = entity::simulate_group_entities(world, noise, items, &mut rng);
                let named: Vec<Vec<&str>> = groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|id| world.text(*id).unwrap_or("<unknown>"))
                            .collect()
                    })
                    .collect();
                (
                    chatter::wrap_groups(&named, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::Impute {
                item,
                attribute,
                examples,
            } => {
                let v = impute::simulate_impute(
                    world,
                    noise,
                    *item,
                    attribute,
                    examples.len(),
                    &mut rng,
                );
                (
                    chatter::wrap_value(&v, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::CountPredicate {
                items,
                predicate,
                mode,
            } => {
                // PerItem mode should arrive as CheckPredicate tasks; if a
                // caller sends it here anyway, eyeball it (coarse fallback).
                let _ = matches!(mode, CountMode::Eyeball);
                let c = misc::simulate_count_eyeball(world, noise, items, predicate, &mut rng);
                (
                    chatter::wrap_count(c, items.len(), self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::CheckPredicate { item, predicate } => {
                let (yes, confidence) =
                    misc::simulate_check_with_confidence(world, noise, *item, predicate, &mut rng);
                (
                    chatter::wrap_yes_no(yes, self.chatter_style(request, true)),
                    Some(confidence),
                )
            }
            TaskDescriptor::Classify { item, labels } => {
                let label = misc::simulate_classify(world, noise, *item, labels, &mut rng);
                (
                    chatter::wrap_value(&label, self.chatter_style(request, false)),
                    None,
                )
            }
            TaskDescriptor::Verify {
                original,
                proposed_answer,
            } => match misc::simulate_verify(world, noise, original, proposed_answer, &mut rng) {
                Some(ok) => (
                    chatter::wrap_yes_no(ok, self.chatter_style(request, true)),
                    Some(noise.verify_accuracy.clamp(0.5, 1.0)),
                ),
                None => (
                    "I cannot verify this answer from the information given.".to_owned(),
                    None,
                ),
            },
            TaskDescriptor::Packed { tasks } => {
                let mut answers: Vec<String> = Vec::with_capacity(tasks.len());
                for sub in tasks {
                    let mut srng = self.packed_sub_rng(request, sub);
                    let line = match sub {
                        TaskDescriptor::CheckPredicate { item, predicate } => {
                            let (yes, _) = misc::simulate_check_with_confidence(
                                world, noise, *item, predicate, &mut srng,
                            );
                            if yes { "Yes" } else { "No" }.to_owned()
                        }
                        TaskDescriptor::Classify { item, labels } => {
                            misc::simulate_classify(world, noise, *item, labels, &mut srng)
                        }
                        TaskDescriptor::Impute {
                            item,
                            attribute,
                            examples,
                        } => impute::simulate_impute(
                            world,
                            noise,
                            *item,
                            attribute,
                            examples.len(),
                            &mut srng,
                        ),
                        // `validate` rejects anything else before generation.
                        other => format!("<unpackable {}>", other.kind()),
                    };
                    answers.push(line);
                }
                // Numbered-list dropout: long packed outputs occasionally
                // lose or duplicate a line, leaving the list unparseable
                // against the expected item count — the failure mode the
                // dispatcher's bisection handles.
                if answers.len() > 1 && noise.packed_dropout_rate > 0.0 {
                    let mut frng = self.rng_for(request, "packed-dropout");
                    if frng.random_bool(noise.packed_dropout_rate.clamp(0.0, 1.0)) {
                        let victim = frng.random_range(0..answers.len());
                        if frng.random_bool(0.5) {
                            answers.remove(victim);
                        } else {
                            let dup = answers[victim].clone();
                            answers.insert(victim, dup);
                        }
                    }
                }
                let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
                (
                    chatter::wrap_list(&refs, self.chatter_style(request, false)),
                    None,
                )
            }
        }
    }
}

impl LanguageModel for SimulatedLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn context_window(&self) -> u32 {
        self.profile.context_window
    }

    fn pricing(&self) -> crate::pricing::Pricing {
        self.profile.pricing
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError> {
        self.validate(request)?;

        let prompt_tokens = count_tokens(&request.prompt);
        if prompt_tokens > self.profile.context_window {
            return Err(LlmError::ContextOverflow {
                prompt_tokens,
                context_window: self.profile.context_window,
            });
        }

        // Transport failure injection (retryable errors). Keyed separately
        // from the task RNG so retries of flaky transport do not change the
        // eventual answer. The attempt counter comes from `sample_index`
        // only at temperature > 0; at temperature 0 the *first* draw decides
        // and a retry will hit the same fate — callers model that by
        // bumping `sample_index`, which is folded in here explicitly.
        let noise = &self.profile.noise;
        if noise.rate_limit_prob > 0.0 || noise.unavailable_prob > 0.0 || noise.timeout_prob > 0.0 {
            let key = hash::combine(
                self.seed,
                hash::combine(
                    request.fingerprint(),
                    hash::combine(
                        hash::fnv1a_str("transport"),
                        u64::from(request.sample_index),
                    ),
                ),
            );
            let mut trng = ChaCha8Rng::seed_from_u64(key);
            if trng.random_bool(noise.rate_limit_prob.clamp(0.0, 1.0)) {
                return Err(LlmError::RateLimited { retry_after_ms: 50 });
            }
            if trng.random_bool(noise.unavailable_prob.clamp(0.0, 1.0)) {
                return Err(LlmError::ServiceUnavailable);
            }
            if trng.random_bool(noise.timeout_prob.clamp(0.0, 1.0)) {
                return Err(LlmError::Timeout { elapsed_ms: 50 });
            }
        }

        let (raw, confidence) = self.generate(request);
        let cap = request
            .max_tokens
            .unwrap_or(self.profile.default_max_tokens);
        let (text, truncated) = truncate_to_tokens(&raw, cap);
        let completion_tokens = count_tokens(text);
        Ok(CompletionResponse {
            text: text.to_owned(),
            usage: Usage {
                prompt_tokens,
                completion_tokens,
            },
            finish_reason: if truncated {
                FinishReason::Length
            } else {
                FinishReason::Stop
            },
            model: self.profile.name.clone(),
            cached: false,
            pricing: self.profile.pricing,
            confidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoiseProfile;
    use crate::task::SortCriterion;
    use crate::world::ItemId;

    fn setup() -> (SimulatedLlm, Vec<ItemId>) {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..10)
            .map(|i| {
                let id = w.add_item(format!("flavor {i}"));
                w.set_score(id, 1.0 - i as f64 / 10.0);
                w.set_salience(id, 1.0);
                id
            })
            .collect();
        let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w), 7);
        (llm, ids)
    }

    #[test]
    fn deterministic_at_temperature_zero() {
        let (llm, ids) = setup();
        let req = CompletionRequest::new(
            "Sort these items.",
            TaskDescriptor::SortList {
                items: ids.clone(),
                criterion: SortCriterion::LatentScore,
            },
        );
        let a = llm.complete(&req).unwrap();
        let b = llm.complete(&req).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_can_differ() {
        let mut w = WorldModel::new();
        let a = w.add_item("a");
        let b = w.add_item("b");
        w.set_score(a, 0.52);
        w.set_score(b, 0.48);
        let world = Arc::new(w);
        let noisy = ModelProfile::gpt35_like();
        let req = CompletionRequest::new(
            "compare",
            TaskDescriptor::Compare {
                left: a,
                right: b,
                criterion: SortCriterion::LatentScore,
            },
        );
        let answers: std::collections::HashSet<String> = (0..64)
            .map(|seed| {
                SimulatedLlm::new(noisy.clone(), Arc::clone(&world), seed)
                    .complete(&req)
                    .unwrap()
                    .text
            })
            .collect();
        assert!(answers.len() > 1, "a near-tie should produce both answers");
    }

    #[test]
    fn context_overflow_detected() {
        let (llm, ids) = setup();
        let huge_prompt = "word ".repeat(2_000_000);
        let req = CompletionRequest::new(
            huge_prompt,
            TaskDescriptor::CheckPredicate {
                item: ids[0],
                predicate: "p".into(),
            },
        );
        match llm.complete(&req) {
            Err(LlmError::ContextOverflow { .. }) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn max_tokens_truncates_with_length_finish() {
        let (llm, ids) = setup();
        let req = CompletionRequest::new(
            "Sort these items.",
            TaskDescriptor::SortList {
                items: ids,
                criterion: SortCriterion::LatentScore,
            },
        )
        .with_max_tokens(5);
        let resp = llm.complete(&req).unwrap();
        assert_eq!(resp.finish_reason, FinishReason::Length);
        assert!(resp.usage.completion_tokens <= 5);
    }

    #[test]
    fn invalid_requests_rejected() {
        let (llm, ids) = setup();
        let empty_sort = CompletionRequest::new(
            "sort",
            TaskDescriptor::SortList {
                items: vec![],
                criterion: SortCriterion::LatentScore,
            },
        );
        assert!(matches!(
            llm.complete(&empty_sort),
            Err(LlmError::InvalidRequest(_))
        ));
        let bad_scale = CompletionRequest::new(
            "rate",
            TaskDescriptor::Rate {
                item: ids[0],
                scale_min: 5,
                scale_max: 5,
                criterion: SortCriterion::LatentScore,
            },
        );
        assert!(matches!(
            llm.complete(&bad_scale),
            Err(LlmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn transport_failures_injected() {
        let mut w = WorldModel::new();
        let id = w.add_item("x");
        w.set_flag(id, "p", true);
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            rate_limit_prob: 1.0,
            ..NoiseProfile::perfect()
        });
        let llm = SimulatedLlm::new(profile, Arc::new(w), 1);
        let req = CompletionRequest::new(
            "check",
            TaskDescriptor::CheckPredicate {
                item: id,
                predicate: "p".into(),
            },
        );
        assert!(matches!(
            llm.complete(&req),
            Err(LlmError::RateLimited { .. })
        ));
    }

    #[test]
    fn usage_accounts_prompt_and_completion() {
        let (llm, ids) = setup();
        let prompt = "Is item ranked before the other? Answer Yes or No.";
        let req = CompletionRequest::new(
            prompt,
            TaskDescriptor::Compare {
                left: ids[0],
                right: ids[1],
                criterion: SortCriterion::LatentScore,
            },
        );
        let resp = llm.complete(&req).unwrap();
        assert_eq!(resp.usage.prompt_tokens, count_tokens(prompt));
        assert!(resp.usage.completion_tokens >= 1);
        assert_eq!(resp.model, "sim-perfect");
    }

    #[test]
    fn packed_check_matches_world_truth() {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..6)
            .map(|i| {
                let id = w.add_item(format!("packed item {i}"));
                w.set_flag(id, "p", i % 2 == 0);
                id
            })
            .collect();
        let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w), 3);
        let tasks: Vec<TaskDescriptor> = ids
            .iter()
            .map(|id| TaskDescriptor::CheckPredicate {
                item: *id,
                predicate: "p".into(),
            })
            .collect();
        let packed = TaskDescriptor::packed(tasks).unwrap();
        let resp = llm
            .complete(&CompletionRequest::new("packed", packed))
            .unwrap();
        let lines: Vec<&str> = resp.text.lines().collect();
        assert_eq!(lines.len(), 6);
        for (i, line) in lines.iter().enumerate() {
            let expected = if i % 2 == 0 { "Yes" } else { "No" };
            assert!(line.contains(expected), "line {i}: {line}");
        }
    }

    #[test]
    fn packed_answers_are_chunking_invariant() {
        // The same sub-task answers identically whichever pack carries it,
        // so bisection retries of a failed pack stay consistent.
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..4)
            .map(|i| {
                let id = w.add_item(format!("inv item {i}"));
                w.set_flag(id, "p", true);
                id
            })
            .collect();
        // Noisy checks: answers are RNG draws, so invariance is non-trivial.
        let profile = ModelProfile::gpt35_like().with_noise(NoiseProfile {
            check_accuracy: 0.5,
            chatter_level: 0.0,
            malformed_rate: 0.0,
            packed_dropout_rate: 0.0,
            ..NoiseProfile::default()
        });
        let llm = SimulatedLlm::new(profile, Arc::new(w), 11);
        let check = |id: ItemId| TaskDescriptor::CheckPredicate {
            item: id,
            predicate: "p".into(),
        };
        let whole = llm
            .complete(&CompletionRequest::new(
                "whole",
                TaskDescriptor::packed(ids.iter().copied().map(check).collect()).unwrap(),
            ))
            .unwrap();
        let halves: Vec<String> = ids
            .chunks(2)
            .map(|half| {
                llm.complete(&CompletionRequest::new(
                    "half",
                    TaskDescriptor::packed(half.iter().copied().map(check).collect()).unwrap(),
                ))
                .unwrap()
                .text
            })
            .collect();
        let whole_lines: Vec<&str> = whole.text.lines().collect();
        let half_lines: Vec<&str> = halves.iter().flat_map(|t| t.lines()).collect();
        // Strip the "N. " numbering before comparing payloads.
        let payload = |l: &str| l.split_once(". ").map(|(_, p)| p.to_owned()).unwrap();
        assert_eq!(
            whole_lines.iter().map(|l| payload(l)).collect::<Vec<_>>(),
            half_lines.iter().map(|l| payload(l)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn packed_dropout_breaks_the_line_count() {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..8)
            .map(|i| {
                let id = w.add_item(format!("drop item {i}"));
                w.set_flag(id, "p", true);
                id
            })
            .collect();
        let profile = ModelProfile::perfect().with_noise(NoiseProfile {
            packed_dropout_rate: 1.0,
            ..NoiseProfile::perfect()
        });
        let llm = SimulatedLlm::new(profile, Arc::new(w), 5);
        let packed = TaskDescriptor::packed(
            ids.iter()
                .map(|id| TaskDescriptor::CheckPredicate {
                    item: *id,
                    predicate: "p".into(),
                })
                .collect(),
        )
        .unwrap();
        let resp = llm
            .complete(&CompletionRequest::new("packed", packed))
            .unwrap();
        assert_ne!(resp.text.lines().count(), 8, "dropout must break the list");
    }

    #[test]
    fn hand_built_invalid_packs_rejected() {
        let (llm, ids) = setup();
        let mixed = TaskDescriptor::Packed {
            tasks: vec![
                TaskDescriptor::CheckPredicate {
                    item: ids[0],
                    predicate: "p".into(),
                },
                TaskDescriptor::Classify {
                    item: ids[1],
                    labels: vec!["a".into()],
                },
            ],
        };
        assert!(matches!(
            llm.complete(&CompletionRequest::new("bad", mixed)),
            Err(LlmError::InvalidRequest(_))
        ));
        let empty = TaskDescriptor::Packed { tasks: vec![] };
        assert!(matches!(
            llm.complete(&CompletionRequest::new("bad", empty)),
            Err(LlmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn perfect_compare_answers_yes_for_higher_score() {
        let (llm, ids) = setup();
        let req = CompletionRequest::new(
            "compare",
            TaskDescriptor::Compare {
                left: ids[0],
                right: ids[5],
                criterion: SortCriterion::LatentScore,
            },
        );
        let resp = llm.complete(&req).unwrap();
        assert!(resp.text.to_lowercase().contains("yes"));
    }
}
