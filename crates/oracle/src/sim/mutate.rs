//! Text mutation: how the simulator hallucinates list entries.
//!
//! The paper's Table 2 experiment saw hallucinations like `"bindexing..."`
//! for `"indexing..."` — plausible near-copies of real entries. We reproduce
//! that by applying small deterministic mutations to an existing entry.

use rand::Rng;

fn random_letter<R: Rng>(rng: &mut R) -> char {
    (b'a' + rng.random_range(0..26u8)) as char
}

/// Produce a hallucinated variant of `text` that differs from it.
///
/// Mutations mirror observed LLM behaviour: prepend a letter, double a
/// letter, drop a letter, or swap two adjacent letters.
pub fn hallucinate<R: Rng>(text: &str, rng: &mut R) -> String {
    let chars: Vec<char> = text.chars().collect();
    if chars.is_empty() {
        return "ghost".to_owned();
    }
    for _ in 0..8 {
        let out = match rng.random_range(0..4u8) {
            0 => {
                // Prepend a letter (the paper's "bindexing" pattern).
                let c = random_letter(rng);
                let mut s = String::with_capacity(text.len() + 1);
                s.push(c);
                s.push_str(text);
                s
            }
            1 => {
                // Double a letter.
                let i = rng.random_range(0..chars.len());
                let mut s: String = chars[..=i].iter().collect();
                s.push(chars[i]);
                s.extend(&chars[i + 1..]);
                s
            }
            2 => {
                // Drop a letter (only if that leaves something).
                if chars.len() < 2 {
                    continue;
                }
                let i = rng.random_range(0..chars.len());
                let mut s: String = chars[..i].iter().collect();
                s.extend(&chars[i + 1..]);
                s
            }
            _ => {
                // Swap adjacent letters.
                if chars.len() < 2 {
                    continue;
                }
                let i = rng.random_range(0..chars.len() - 1);
                if chars[i] == chars[i + 1] {
                    continue;
                }
                let mut v = chars.clone();
                v.swap(i, i + 1);
                v.into_iter().collect()
            }
        };
        if out != text {
            return out;
        }
    }
    // Mutation kept colliding (e.g. "aaaa"); fall back to a prepend, which
    // always changes the string.
    format!("x{text}")
}

/// Whether a value has *structural* formatting variants (internal spaces or
/// camel-case boundaries). Values like `"berkeley"` are written one way by
/// everyone, so LLM answers for them survive exact-match scoring; values
/// like `"Tom Tom"` or `"san francisco"` do not.
pub fn has_format_variants(value: &str) -> bool {
    !variant_candidates(value).is_empty()
}

/// Produce a formatting variant of an attribute value that a strict
/// exact-match scorer would reject ("TomTom" vs "Tom Tom", per §3.4).
pub fn format_variant<R: Rng>(value: &str, rng: &mut R) -> String {
    let candidates: Vec<String> = variant_candidates(value);
    if candidates.is_empty() {
        // Nothing structural to vary; change case instead.
        return flip_case(value);
    }
    let pick = rng.random_range(0..candidates.len());
    candidates[pick].clone()
}

fn variant_candidates(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Remove internal spaces: "Tom Tom" -> "TomTom".
    if value.contains(' ') {
        out.push(value.replace(' ', ""));
        // Drop a trailing corporate suffix: "Elgato Systems" -> "Elgato".
        if let Some((head, tail)) = value.rsplit_once(' ') {
            const SUFFIXES: [&str; 6] = ["Systems", "Inc", "Inc.", "Corp", "Co", "Ltd"];
            if SUFFIXES.contains(&tail) {
                out.push(head.to_owned());
            } else {
                // Keep only the first word as an abbreviation variant.
                out.push(value.split(' ').next().unwrap_or(head).to_owned());
            }
        }
    } else if value.len() > 3 {
        // Insert a space at a camel-case boundary: "TomTom" -> "Tom Tom".
        let chars: Vec<char> = value.chars().collect();
        for i in 1..chars.len() {
            if chars[i].is_uppercase() && chars[i - 1].is_lowercase() {
                let mut s: String = chars[..i].iter().collect();
                s.push(' ');
                s.extend(&chars[i..]);
                out.push(s);
                break;
            }
        }
    }
    out.retain(|v| v != value && !v.is_empty());
    out
}

fn flip_case(value: &str) -> String {
    let lower = value.to_lowercase();
    if lower != value {
        lower
    } else {
        value.to_uppercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn hallucination_differs_from_original() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for word in ["indexing", "a", "zz", "continuous queries"] {
            for _ in 0..20 {
                let h = hallucinate(word, &mut rng);
                assert_ne!(h, word);
                assert!(!h.is_empty());
            }
        }
    }

    #[test]
    fn hallucination_of_degenerate_strings() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_ne!(hallucinate("", &mut rng), "");
        let h = hallucinate("aaaa", &mut rng);
        assert_ne!(h, "aaaa");
    }

    #[test]
    fn format_variant_removes_space() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen_spaceless = false;
        for _ in 0..32 {
            let v = format_variant("Tom Tom", &mut rng);
            assert_ne!(v, "Tom Tom");
            if v == "TomTom" || v == "Tom" {
                seen_spaceless = true;
            }
        }
        assert!(seen_spaceless);
    }

    #[test]
    fn format_variant_drops_corporate_suffix() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen_bare = false;
        for _ in 0..32 {
            if format_variant("Elgato Systems", &mut rng) == "Elgato" {
                seen_bare = true;
            }
        }
        assert!(seen_bare);
    }

    #[test]
    fn format_variant_splits_camel_case() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = format_variant("TomTom", &mut rng);
        assert_eq!(v, "Tom Tom");
    }

    #[test]
    fn format_variant_falls_back_to_case_flip() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let v = format_variant("abc", &mut rng);
        assert_eq!(v, "ABC");
    }
}
