//! Tiny random-distribution helpers (keeps the dependency set to `rand`).

use rand::Rng;

/// Sample a standard normal via the Marsaglia polar method.
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Sample a normal with the given mean and standard deviation.
pub fn gauss_with<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return mean;
    }
    mean + gauss(rng) * sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gauss_moments_are_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gauss_with_zero_sigma_is_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(gauss_with(&mut rng, 3.5, 0.0), 3.5);
        assert_eq!(gauss_with(&mut rng, 3.5, -1.0), 3.5);
    }

    #[test]
    fn gauss_with_scales() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss_with(&mut rng, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }
}
