//! Cheap text-similarity measures used to modulate task difficulty.
//!
//! The simulator grades how *hard* a pair of strings is (for entity
//! resolution) or how confusable two sort keys are (for lexicographic
//! comparisons) using surface similarity — mirroring the empirical fact that
//! LLMs confuse near-identical strings far more than dissimilar ones.

use std::collections::HashSet;

/// Jaccard similarity over character trigrams, in `[0, 1]`.
///
/// Strings shorter than 3 characters are padded conceptually by comparing
/// their full contents: identical short strings yield 1.0.
pub fn trigram_jaccard(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        // Both too short for trigrams and not equal.
        return 0.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn trigrams(s: &str) -> HashSet<[char; 3]> {
    let lowered: Vec<char> = s.to_lowercase().chars().collect();
    let mut set = HashSet::new();
    if lowered.len() < 3 {
        return set;
    }
    for w in lowered.windows(3) {
        set.insert([w[0], w[1], w[2]]);
    }
    set
}

/// Ratio of the common prefix length to the shorter string's length, in
/// `[0, 1]`. `"chair"`/`"chalk"` share `"cha"` → 0.6.
pub fn common_prefix_ratio(a: &str, b: &str) -> f64 {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    let min_len = ca.len().min(cb.len());
    if min_len == 0 {
        return 0.0;
    }
    let common = ca.iter().zip(cb.iter()).take_while(|(x, y)| x == y).count();
    common as f64 / min_len as f64
}

/// Normalized Levenshtein similarity, `1 - distance / max_len`, in `[0, 1]`.
///
/// O(len(a) * len(b)); fine for the record-sized strings we simulate.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    let max_len = ca.len().max(cb.len());
    if max_len == 0 {
        return 1.0;
    }
    let dist = levenshtein(&ca, &cb);
    1.0 - dist as f64 / max_len as f64
}

fn levenshtein(a: &[char], b: &[char]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ac) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &bc) in b.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_max_similarity() {
        assert_eq!(trigram_jaccard("abcdef", "abcdef"), 1.0);
        assert_eq!(levenshtein_similarity("abcdef", "abcdef"), 1.0);
        assert_eq!(common_prefix_ratio("same", "same"), 1.0);
    }

    #[test]
    fn disjoint_strings_low_similarity() {
        assert_eq!(trigram_jaccard("aaaa", "zzzz"), 0.0);
        assert!(levenshtein_similarity("aaaa", "zzzz") < 0.01);
        assert_eq!(common_prefix_ratio("aaaa", "zzzz"), 0.0);
    }

    #[test]
    fn near_duplicates_high_similarity() {
        let a = "indexing the positions of continuously moving objects";
        let b = "bindexing the positions of continuous moving objects";
        assert!(trigram_jaccard(a, b) > 0.6);
        assert!(levenshtein_similarity(a, b) > 0.9);
    }

    #[test]
    fn similarity_symmetric() {
        let (a, b) = (
            "crowdsourcing entity resolution",
            "entity resolution crowds",
        );
        assert!((trigram_jaccard(a, b) - trigram_jaccard(b, a)).abs() < 1e-12);
        assert!((levenshtein_similarity(a, b) - levenshtein_similarity(b, a)).abs() < 1e-12);
    }

    #[test]
    fn prefix_ratio_examples() {
        assert!((common_prefix_ratio("chair", "chalk") - 0.6).abs() < 1e-12);
        assert_eq!(common_prefix_ratio("", "x"), 0.0);
        assert_eq!(common_prefix_ratio("ab", "abcd"), 1.0);
    }

    #[test]
    fn short_strings() {
        assert_eq!(trigram_jaccard("ab", "ab"), 1.0);
        assert_eq!(trigram_jaccard("ab", "cd"), 0.0);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
    }

    #[test]
    fn case_insensitive_trigrams() {
        assert_eq!(trigram_jaccard("Chocolate", "chocolate"), 1.0);
    }
}
