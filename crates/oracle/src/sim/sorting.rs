//! Simulation of sorting-family tasks: whole-list sorts, pairwise
//! comparisons, and ratings (paper §3.1–3.2).

use rand::Rng;

use crate::model::NoiseProfile;
use crate::sim::gold::quantize;
use crate::sim::mutate::hallucinate;
use crate::sim::similarity::common_prefix_ratio;
use crate::task::SortCriterion;
use crate::world::{ItemId, WorldModel};

/// Outcome of a simulated whole-list sort, before rendering.
#[derive(Debug, Clone)]
pub struct SimulatedSort {
    /// Returned entries, in the order the model "generated" them. Entries
    /// are raw texts — hallucinated entries have no backing [`ItemId`].
    pub entries: Vec<String>,
    /// How many input items were omitted.
    pub dropped: usize,
    /// How many hallucinated entries were inserted.
    pub hallucinated: usize,
}

/// Simulate a single-prompt "sort this whole list" task.
///
/// Mechanisms, each mapping to a behaviour the paper reports:
/// * **Confident placement of salient items.** Items whose surface text
///   clearly signals the criterion (salience ≥ threshold) are placed at
///   their true rank; others get rank jitter proportional to
///   `(1 - salience) * sort_jitter * n` — reproducing "flavors with
///   'chocolate' in the title first, the rest seemingly random".
/// * **Omissions.** Each item is dropped with probability scaled by list
///   length and boosted in the middle third ("lost in the middle").
/// * **Hallucinations.** Mutated near-copies of real entries are inserted.
pub fn simulate_sort_list<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    items: &[ItemId],
    criterion: SortCriterion,
    rng: &mut R,
) -> SimulatedSort {
    let n = items.len();
    // True ranks under the criterion.
    let gold = match criterion {
        SortCriterion::LatentScore => world.gold_ranking_by_score(items),
        SortCriterion::Lexicographic => world.gold_ranking_by_key(items),
    };
    let true_rank: std::collections::HashMap<ItemId, usize> = gold
        .iter()
        .enumerate()
        .map(|(rank, id)| (*id, rank))
        .collect();

    // Perturbed rank per item.
    let mut keyed: Vec<(f64, ItemId)> = Vec::with_capacity(n);
    for &id in items {
        let rank = true_rank[&id] as f64;
        let salience = match criterion {
            SortCriterion::LatentScore => world.salience_of(id),
            // Alphabetical ordering is surface-obvious for every item.
            SortCriterion::Lexicographic => 1.0,
        };
        let jitter_scale = if salience >= noise.sort_salience_threshold {
            noise.sort_jitter * 0.05 // confident placement, tiny residual noise
        } else {
            noise.sort_jitter * (1.0 - salience)
        };
        let jitter = crate::sim::randx::gauss(rng) * jitter_scale * n as f64;
        keyed.push((rank + jitter, id));
    }
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Omissions, with middle-of-prompt bias computed on *presentation* order.
    let presentation_pos: std::collections::HashMap<ItemId, usize> = items
        .iter()
        .enumerate()
        .map(|(pos, id)| (*id, pos))
        .collect();
    let base_drop = noise.sort_drop_rate * n as f64 / noise.sort_drop_ref_len.max(1) as f64;
    let mut entries: Vec<String> = Vec::with_capacity(n);
    let mut dropped = 0usize;
    for &(_, id) in &keyed {
        let pos = presentation_pos[&id];
        let in_middle = n >= 3 && pos >= n / 3 && pos < 2 * n / 3;
        let mult = if in_middle {
            noise.sort_middle_bias
        } else {
            1.0
        };
        let p_drop = (base_drop * mult).clamp(0.0, 0.9);
        if rng.random_bool(p_drop) {
            dropped += 1;
            continue;
        }
        entries.push(world.text(id).unwrap_or("<unknown>").to_owned());
    }

    // Hallucinations: insert mutated near-copies at random positions.
    let mut hallucinated = 0usize;
    if noise.sort_halluc_rate > 0.0 && !entries.is_empty() {
        let existing: std::collections::HashSet<String> = entries.iter().cloned().collect();
        let expected = noise.sort_halluc_rate * n as f64;
        // Bernoulli per item keeps the count distribution realistic.
        for _ in 0..n {
            if rng.random_bool((expected / n as f64).clamp(0.0, 1.0)) {
                let src = rng.random_range(0..entries.len());
                let ghost = hallucinate(&entries[src], rng);
                if !existing.contains(&ghost) {
                    let at = rng.random_range(0..=entries.len());
                    entries.insert(at, ghost);
                    hallucinated += 1;
                }
            }
        }
    }

    SimulatedSort {
        entries,
        dropped,
        hallucinated,
    }
}

/// Simulate a pairwise comparison: does `left` rank before `right`?
///
/// * Latent-score criterion: Thurstone-style — P(correct) rises with the
///   score gap; `position_bias` additively favours answering "yes" (the
///   first-listed item), which the sort-then-insert strategy cancels by
///   asking both orders.
/// * Lexicographic criterion: a base error rate plus a penalty growing with
///   the keys' common-prefix ratio (near-identical words are confusable).
pub fn simulate_compare<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    left: ItemId,
    right: ItemId,
    criterion: SortCriterion,
    rng: &mut R,
) -> bool {
    simulate_compare_with_confidence(world, noise, left, right, criterion, rng).0
}

/// Like [`simulate_compare`] but also returns the model's answer
/// probability — the simulator's stand-in for answer-token logprobs.
pub fn simulate_compare_with_confidence<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    left: ItemId,
    right: ItemId,
    criterion: SortCriterion,
    rng: &mut R,
) -> (bool, f64) {
    let p_yes = match criterion {
        SortCriterion::LatentScore => {
            let sl = world.score(left).unwrap_or(0.5);
            let sr = world.score(right).unwrap_or(0.5);
            let delta = sl - sr;
            (sigmoid(delta / noise.compare_sigma.max(1e-12)) + noise.position_bias).clamp(0.0, 1.0)
        }
        SortCriterion::Lexicographic => {
            let kl = world.sort_key(left).unwrap_or("");
            let kr = world.sort_key(right).unwrap_or("");
            let correct_yes = kl < kr;
            let prefix = common_prefix_ratio(kl, kr);
            let err = (noise.compare_lex_error + noise.compare_lex_prefix_penalty * prefix)
                .clamp(0.0, 0.5);
            let p = if correct_yes { 1.0 - err } else { err };
            (p + noise.position_bias).clamp(0.0, 1.0)
        }
    };
    let answer = rng.random_bool(p_yes);
    let base = if answer { p_yes } else { 1.0 - p_yes };
    // Jitter: real logprob confidences correlate with correctness but are
    // not an oracle for it.
    let confidence = (base + crate::sim::randx::gauss(rng) * 0.08).clamp(0.5, 0.99);
    (answer, confidence)
}

/// Simulate a batched comparison prompt: each pair is judged like
/// [`simulate_compare`] but with the noise scale inflated by
/// `1 + compare_batch_penalty * (batch_size - 1)` — models attend less to
/// each sub-question as prompts grow (§4's batching trade-off).
pub fn simulate_compare_batch<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    pairs: &[(ItemId, ItemId)],
    criterion: SortCriterion,
    rng: &mut R,
) -> Vec<bool> {
    let inflation = 1.0 + noise.compare_batch_penalty * (pairs.len().saturating_sub(1)) as f64;
    let inflated = NoiseProfile {
        compare_sigma: noise.compare_sigma * inflation,
        compare_lex_error: (noise.compare_lex_error * inflation).min(0.5),
        compare_lex_prefix_penalty: (noise.compare_lex_prefix_penalty * inflation).min(0.5),
        ..noise.clone()
    };
    pairs
        .iter()
        .map(|(l, r)| simulate_compare(world, &inflated, *l, *r, criterion, rng))
        .collect()
}

/// Simulate a rating task: quantize the (noised) normalized score.
pub fn simulate_rate<R: Rng>(
    world: &WorldModel,
    noise: &NoiseProfile,
    item: ItemId,
    scale_min: u8,
    scale_max: u8,
    criterion: SortCriterion,
    rng: &mut R,
) -> u8 {
    let norm = match criterion {
        SortCriterion::LatentScore => world.score(item).unwrap_or(0.5),
        SortCriterion::Lexicographic => {
            let key = world.sort_key(item).unwrap_or("m");
            let first = key.chars().next().unwrap_or('m');
            (first.to_ascii_lowercase() as u32).saturating_sub('a' as u32) as f64 / 25.0
        }
    };
    let noised = crate::sim::randx::gauss_with(rng, norm, noise.rate_sigma);
    quantize(noised, scale_min, scale_max)
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NoiseProfile;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn score_world(n: usize) -> (WorldModel, Vec<ItemId>) {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..n)
            .map(|i| {
                let id = w.add_item(format!("item-{i:03}"));
                w.set_score(id, 1.0 - i as f64 / n as f64);
                w.set_salience(id, 1.0);
                id
            })
            .collect();
        (w, ids)
    }

    #[test]
    fn perfect_noise_sorts_exactly() {
        let (w, ids) = score_world(20);
        let noise = NoiseProfile::perfect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = simulate_sort_list(&w, &noise, &ids, SortCriterion::LatentScore, &mut rng);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.hallucinated, 0);
        let expected: Vec<String> = ids
            .iter()
            .map(|id| w.text(*id).unwrap().to_owned())
            .collect();
        assert_eq!(out.entries, expected);
    }

    #[test]
    fn drop_rate_scales_with_length() {
        let (w, ids) = score_world(100);
        let noise = NoiseProfile {
            sort_drop_rate: 0.05,
            sort_drop_ref_len: 100,
            sort_halluc_rate: 0.0,
            ..NoiseProfile::perfect()
        };
        let mut total = 0usize;
        for seed in 0..50 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let out = simulate_sort_list(&w, &noise, &ids, SortCriterion::LatentScore, &mut rng);
            total += out.dropped;
        }
        let avg = total as f64 / 50.0;
        // Middle-bias of 1.0 (perfect profile) -> expect ~5 drops per run.
        assert!((2.0..=9.0).contains(&avg), "avg drops {avg}");
    }

    #[test]
    fn hallucinations_are_new_strings() {
        let (w, ids) = score_world(50);
        let noise = NoiseProfile {
            sort_halluc_rate: 0.2,
            ..NoiseProfile::perfect()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let out = simulate_sort_list(&w, &noise, &ids, SortCriterion::LatentScore, &mut rng);
        let originals: std::collections::HashSet<&str> =
            ids.iter().map(|id| w.text(*id).unwrap()).collect();
        let ghosts: Vec<&String> = out
            .entries
            .iter()
            .filter(|e| !originals.contains(e.as_str()))
            .collect();
        assert_eq!(ghosts.len(), out.hallucinated);
        assert!(out.hallucinated > 0, "expected some hallucinations");
    }

    #[test]
    fn compare_favours_larger_gap() {
        let (w, ids) = score_world(10);
        let noise = NoiseProfile::default();
        // Wide gap: item 0 (score 1.0) vs item 9 (score 0.1).
        let mut correct_wide = 0;
        let mut correct_narrow = 0;
        for seed in 0..400 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_compare(
                &w,
                &noise,
                ids[0],
                ids[9],
                SortCriterion::LatentScore,
                &mut rng,
            ) {
                correct_wide += 1;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 10_000);
            if simulate_compare(
                &w,
                &noise,
                ids[4],
                ids[5],
                SortCriterion::LatentScore,
                &mut rng,
            ) {
                correct_narrow += 1;
            }
        }
        assert!(
            correct_wide > 380,
            "wide-gap accuracy too low: {correct_wide}/400"
        );
        assert!(
            correct_narrow < correct_wide,
            "narrow gap should be harder ({correct_narrow} vs {correct_wide})"
        );
        assert!(correct_narrow > 200, "still better than chance");
    }

    #[test]
    fn lexicographic_compare_mostly_correct() {
        let mut w = WorldModel::new();
        let a = w.add_item("apple");
        let z = w.add_item("zebra");
        w.set_sort_key(a, "apple");
        w.set_sort_key(z, "zebra");
        let noise = NoiseProfile::default();
        let mut yes = 0;
        for seed in 0..200 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_compare(&w, &noise, a, z, SortCriterion::Lexicographic, &mut rng) {
                yes += 1;
            }
        }
        assert!(yes > 180, "apple<zebra should be easy: {yes}/200");
    }

    #[test]
    fn shared_prefix_increases_error() {
        let mut w = WorldModel::new();
        let a = w.add_item("chair");
        let b = w.add_item("chain");
        w.set_sort_key(a, "chair");
        w.set_sort_key(b, "chain");
        let noise = NoiseProfile {
            compare_lex_error: 0.02,
            compare_lex_prefix_penalty: 0.3,
            position_bias: 0.0,
            ..NoiseProfile::perfect()
        };
        // chain < chair, so asking "chair before chain?" should be "no";
        // count wrong "yes" answers.
        let mut wrong = 0;
        for seed in 0..500 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_compare(&w, &noise, a, b, SortCriterion::Lexicographic, &mut rng) {
                wrong += 1;
            }
        }
        // err = 0.02 + 0.3 * 0.8 = 0.26 -> expect ~130 wrong answers.
        assert!((70..=200).contains(&wrong), "wrong={wrong}");
    }

    #[test]
    fn rating_reflects_score_ordering_on_average() {
        let (w, ids) = score_world(10);
        let noise = NoiseProfile::default();
        let avg_rating = |id: ItemId| -> f64 {
            let mut total = 0u32;
            for seed in 0..200 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                total += u32::from(simulate_rate(
                    &w,
                    &noise,
                    id,
                    1,
                    7,
                    SortCriterion::LatentScore,
                    &mut rng,
                ));
            }
            f64::from(total) / 200.0
        };
        assert!(avg_rating(ids[0]) > avg_rating(ids[9]) + 2.0);
    }

    #[test]
    fn batching_degrades_comparison_accuracy() {
        let (w, ids) = score_world(10);
        let noise = NoiseProfile {
            compare_sigma: 0.2,
            compare_batch_penalty: 0.3,
            position_bias: 0.0,
            ..NoiseProfile::perfect()
        };
        // Single narrow-gap pair vs the same pair inside a 10-pair batch.
        let pair = (ids[4], ids[5]);
        let mut single_correct = 0;
        let mut batched_correct = 0;
        for seed in 0..600 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            if simulate_compare(
                &w,
                &noise,
                pair.0,
                pair.1,
                SortCriterion::LatentScore,
                &mut rng,
            ) {
                single_correct += 1;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 50_000);
            let pairs: Vec<(ItemId, ItemId)> = (0..10).map(|_| pair).collect();
            let out =
                simulate_compare_batch(&w, &noise, &pairs, SortCriterion::LatentScore, &mut rng);
            if out[0] {
                batched_correct += 1;
            }
        }
        assert!(
            batched_correct < single_correct,
            "batched {batched_correct} should err more than single {single_correct}"
        );
    }

    #[test]
    fn batch_of_one_equals_single() {
        let (w, ids) = score_world(6);
        let noise = NoiseProfile::perfect();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = simulate_compare_batch(
            &w,
            &noise,
            &[(ids[0], ids[5])],
            SortCriterion::LatentScore,
            &mut rng,
        );
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn rating_stays_on_scale() {
        let (w, ids) = score_world(5);
        let noise = NoiseProfile {
            rate_sigma: 2.0, // huge noise still must clamp
            ..NoiseProfile::default()
        };
        for seed in 0..100 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = simulate_rate(
                &w,
                &noise,
                ids[0],
                1,
                7,
                SortCriterion::LatentScore,
                &mut rng,
            );
            assert!((1..=7).contains(&r));
        }
    }
}
