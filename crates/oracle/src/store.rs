//! A crash-safe, content-addressed, disk-backed response store.
//!
//! Every cache before this one ([`crate::client::LlmClient`]'s sharded
//! in-memory tier, its in-flight coalescing) dies with the process, so a
//! service absorbing heavy repeat traffic pays full cold-start cost on every
//! restart. [`ResponseStore`] is the persistent tier layered *under* the
//! in-memory shards: an append-only checksummed record log (the shared
//! [`crate::recordlog`] discipline — fingerprint-keyed records, f64-as-bits,
//! flushed single-line appends, FNV-1a prefix verification with torn-tail
//! truncation on open) plus an in-memory fingerprint index rebuilt on open.
//!
//! # Tiers
//!
//! * **Exact** — [`ResponseStore::lookup`] by request fingerprint. A hit is
//!   bit-identical to the response the original process paid for, and is
//!   served by the client marked `cached: true`: zero backend spend, exactly
//!   like an in-memory cache hit, so meter == ledger == budget accounting
//!   holds unchanged.
//! * **Semantic** (opt-in, [`StoreConfig::semantic`]) — temperature-0
//!   prompts are embedded through `crowdprompt_embed` and near-duplicate
//!   prompts within a distance threshold are answered from the nearest
//!   stored neighbor ([`ResponseStore::lookup_semantic`]). Approximate by
//!   construction; hits are counted separately
//!   ([`crate::ClientStats::semantic_hits`]) and their accuracy cost is
//!   measured in-bench through the outcome meter.
//!
//! # Eviction and admission
//!
//! Eviction is *generation*-based, not wall-clock: callers advance a
//! monotone generation counter ([`ResponseStore::advance_generation`], e.g.
//! once per deploy or per corpus refresh) and entries older than
//! [`StoreConfig::ttl_generations`] stop being served and are dropped at the
//! next [`ResponseStore::compact`]. Admission is *cost-aware*: each entry
//! carries the recompute cost observed at admission
//! (`pricing.cost_usd(usage)` — the same number the ledger charged), and at
//! capacity a candidate cheaper than [`StoreConfig::admission_floor`] × the
//! mean live cost-per-entry is refused while eviction drops cheapest-first,
//! so cheap responses never displace expensive ones.
//!
//! # Process discipline
//!
//! Single-writer, multi-reader: [`ResponseStore::open`] takes a sidecar
//! `<path>.lock` file (removed on drop) and fails if another writer holds
//! it; [`ResponseStore::open_read_only`] takes no lock, never truncates, and
//! simply ignores a torn tail.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crowdprompt_embed::{Embedder, KnnIndex, Metric, NearestNeighbors, NgramEmbedder};

use crate::recordlog::{
    decode_response_fields, encode_response_fields, escape, unescape, LogFile, RESPONSE_FIELDS,
};
use crate::types::{CompletionRequest, CompletionResponse};

/// The store's header line (also its format version gate).
const HEADER: &str = "crowdprompt-store v1";

/// Semantic-tier configuration: embed temperature-0 prompts and answer
/// near-duplicates within `threshold` of a stored neighbor.
#[derive(Debug, Clone)]
pub struct SemanticConfig {
    /// Maximum embedding distance (L2 over unit-normalized hashed n-gram
    /// vectors, so `0.0 ..= 2.0`) at which a stored neighbor may answer.
    pub threshold: f32,
    /// Embedding dimensionality (default 256, matching `NgramEmbedder`).
    pub dimensions: usize,
    /// Character n-gram width (default 3).
    pub ngram: usize,
}

impl SemanticConfig {
    /// Semantic tier with the default embedder shape and the given
    /// distance threshold.
    pub fn new(threshold: f32) -> Self {
        SemanticConfig {
            threshold,
            dimensions: 256,
            ngram: 3,
        }
    }
}

/// Tuning knobs for a [`ResponseStore`]. The default is an unbounded,
/// never-expiring, exact-only store — the safe configuration for a cache
/// whose entries are deterministic temperature-0 completions.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Maximum live entries; `None` = unbounded. At capacity, admission
    /// becomes cost-aware and eviction drops cheapest-first.
    pub capacity: Option<usize>,
    /// Entries admitted at generation `g` stop being served once
    /// `generation() - g >= ttl` and are dropped at the next compaction;
    /// `None` = entries never expire.
    pub ttl_generations: Option<u64>,
    /// At capacity, refuse candidates cheaper than this fraction of the
    /// mean live cost-per-entry (`0.0` admits everything).
    pub admission_floor: f64,
    /// Opt-in semantic tier; `None` = exact-only.
    pub semantic: Option<SemanticConfig>,
}

/// A semantic-tier hit: the neighbor that answered, how far away it was,
/// and its stored response.
#[derive(Debug, Clone)]
pub struct SemanticHit {
    /// Fingerprint of the stored neighbor whose response is being reused.
    pub fingerprint: u64,
    /// Embedding distance between the query prompt and the neighbor's.
    pub distance: f32,
    /// The neighbor's stored response.
    pub response: Arc<CompletionResponse>,
}

/// One live store entry: the response, its admission generation (for TTL),
/// its observed recompute cost (for admission/eviction), and the prompt
/// that produced it (for semantic indexing and compaction rewrites).
struct StoredEntry {
    response: Arc<CompletionResponse>,
    generation: u64,
    cost_usd: f64,
    prompt: Box<str>,
}

/// The embedding-keyed approximate tier: a sealed `KnnIndex` over the
/// vectors known at the last (re)build plus a brute-scanned unsealed tail,
/// so inserts stay cheap and queries stay exact over the full set.
struct SemanticTier {
    threshold: f32,
    embedder: NgramEmbedder,
    /// All prompt vectors, insertion order; rows `0..sealed_len` are also
    /// in `sealed`.
    vectors: Vec<Vec<f32>>,
    /// Fingerprint of the entry each row answers for (parallel to
    /// `vectors`). Rows whose entry has been evicted or replaced are
    /// filtered at query time and dropped at the next reseal.
    fingerprints: Vec<u64>,
    /// Row index of each member fingerprint (duplicate-push guard).
    members: HashMap<u64, usize>,
    sealed: Option<KnnIndex>,
    sealed_len: usize,
}

impl SemanticTier {
    fn new(config: &SemanticConfig) -> SemanticTier {
        SemanticTier {
            threshold: config.threshold,
            embedder: NgramEmbedder::new(config.dimensions, config.ngram),
            vectors: Vec::new(),
            fingerprints: Vec::new(),
            members: HashMap::new(),
            sealed: None,
            sealed_len: 0,
        }
    }

    /// Index `prompt` as answering for `fingerprint` (no-op if already a
    /// member — identical fingerprints imply identical prompts).
    fn insert(&mut self, fingerprint: u64, prompt: &str) {
        if self.members.contains_key(&fingerprint) {
            return;
        }
        self.members.insert(fingerprint, self.vectors.len());
        self.vectors.push(self.embedder.embed(prompt));
        self.fingerprints.push(fingerprint);
    }

    /// Rebuild the sealed index when the brute-scanned tail has outgrown
    /// it, dropping rows whose entries are no longer live.
    fn maybe_reseal(&mut self, entries: &HashMap<u64, StoredEntry>) {
        let tail = self.vectors.len() - self.sealed_len;
        if tail <= (self.sealed_len / 2).max(64) {
            return;
        }
        let mut vectors = Vec::with_capacity(self.vectors.len());
        let mut fingerprints = Vec::with_capacity(self.fingerprints.len());
        let mut members = HashMap::new();
        for (v, &fp) in self.vectors.iter().zip(&self.fingerprints) {
            if entries.contains_key(&fp) && !members.contains_key(&fp) {
                members.insert(fp, vectors.len());
                fingerprints.push(fp);
                vectors.push(v.clone());
            }
        }
        self.sealed = Some(KnnIndex::auto(vectors.clone(), Metric::L2));
        self.sealed_len = vectors.len();
        self.vectors = vectors;
        self.fingerprints = fingerprints;
        self.members = members;
    }

    /// Nearest live, unexpired neighbor within the threshold, if any.
    /// Exact over the full set: best of the sealed index and a brute scan
    /// of the unsealed tail.
    fn query(&self, vector: &[f32], is_live: impl Fn(u64) -> bool) -> Option<(u64, f32)> {
        let mut best: Option<(u64, f32)> = None;
        let mut consider = |fp: u64, d: f32| {
            if d <= self.threshold && is_live(fp) && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((fp, d));
            }
        };
        if let Some(sealed) = &self.sealed {
            // A few extra candidates so a dead nearest row doesn't mask a
            // live one just behind it.
            for n in sealed.nearest(vector, 8) {
                consider(self.fingerprints[n.index], n.distance);
            }
        }
        for (v, &fp) in self.vectors[self.sealed_len..]
            .iter()
            .zip(&self.fingerprints[self.sealed_len..])
        {
            consider(fp, Metric::L2.distance(vector, v));
        }
        best
    }
}

/// Sidecar lock file enforcing the single-writer discipline; removed when
/// the owning store drops.
struct WriterLock {
    path: PathBuf,
}

/// The writer-lock path for a store file: `<path>.lock`.
fn lock_path(store_path: &Path) -> PathBuf {
    let mut name = store_path.as_os_str().to_os_string();
    name.push(".lock");
    PathBuf::from(name)
}

impl WriterLock {
    fn acquire(store_path: &Path) -> std::io::Result<WriterLock> {
        let path = lock_path(store_path);
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                let _ = writeln!(file, "{}", std::process::id());
                Ok(WriterLock { path })
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(&path).unwrap_or_default();
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    format!(
                        "response store '{}' already has a writer (lock '{}' held by pid {}); \
                         open read-only, or remove the lock file if that process is dead",
                        store_path.display(),
                        path.display(),
                        holder.trim(),
                    ),
                ))
            }
            Err(e) => Err(e),
        }
    }
}

impl Drop for WriterLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Lock-protected store internals.
struct StoreInner {
    log: Option<LogFile>,
    entries: HashMap<u64, StoredEntry>,
    generation: u64,
    /// Records on disk superseded by replacement or eviction; compaction
    /// trigger.
    dead_records: usize,
    semantic: Option<SemanticTier>,
}

impl StoreInner {
    /// Whether an entry admitted at `generation` is expired under `ttl`.
    fn expired(&self, entry_generation: u64, ttl: Option<u64>) -> bool {
        match ttl {
            Some(t) => self.generation.saturating_sub(entry_generation) >= t,
            None => false,
        }
    }

    /// Apply one replayed record payload; `false` rejects (truncating the
    /// log there on a writer open).
    fn apply_record(&mut self, payload: &str, semantic_enabled: bool) -> bool {
        let fields: Vec<&str> = payload.split('\t').collect();
        match fields.first() {
            Some(&"G") if fields.len() == 2 => {
                let Some(g) = crate::hash::parse_hex64(fields[1]) else {
                    return false;
                };
                self.generation = self.generation.max(g);
                true
            }
            Some(&"D") if fields.len() == 2 => {
                let Some(fp) = crate::hash::parse_hex64(fields[1]) else {
                    return false;
                };
                // The drop marker and the record it killed are both
                // reclaimable at the next compaction.
                self.dead_records += 1;
                if self.entries.remove(&fp).is_some() {
                    self.dead_records += 1;
                }
                true
            }
            Some(&"R") if fields.len() == 3 + RESPONSE_FIELDS => {
                let Some(generation) = crate::hash::parse_hex64(fields[1]) else {
                    return false;
                };
                let Some(prompt) = unescape(fields[2]) else {
                    return false;
                };
                let Some((fingerprint, response)) = decode_response_fields(&fields[3..]) else {
                    return false;
                };
                let cost_usd = response.pricing.cost_usd(response.usage);
                if self
                    .entries
                    .insert(
                        fingerprint,
                        StoredEntry {
                            response: Arc::new(response),
                            generation,
                            cost_usd,
                            prompt: prompt.clone().into_boxed_str(),
                        },
                    )
                    .is_some()
                {
                    // Replacement (re-admission after expiry): the
                    // superseded record is still on disk.
                    self.dead_records += 1;
                }
                if semantic_enabled {
                    if let Some(tier) = &mut self.semantic {
                        tier.insert(fingerprint, &prompt);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Render a response record payload.
    fn encode_record(
        generation: u64,
        prompt: &str,
        fingerprint: u64,
        response: &CompletionResponse,
    ) -> String {
        format!(
            "R\t{}\t{}\t{}",
            crate::hash::hex64(generation),
            escape(prompt),
            encode_response_fields(fingerprint, response),
        )
    }
}

/// A crash-safe, content-addressed, disk-backed response cache with an
/// exact fingerprint tier and an opt-in embedding-keyed semantic tier. See
/// the [module docs](self) for format, eviction, and process discipline.
pub struct ResponseStore {
    path: PathBuf,
    config: StoreConfig,
    /// `Some` while this handle holds the single-writer lock.
    writer_lock: Option<WriterLock>,
    inner: Mutex<StoreInner>,
}

impl ResponseStore {
    /// Open (creating if absent) the store at `path` as its single writer.
    ///
    /// Existing records are checksum-verified in order; the file is
    /// truncated at the first torn or corrupt line (crash recovery) and the
    /// fingerprint index — and semantic index, when configured — is rebuilt
    /// from the valid prefix. Fails if another writer holds the sidecar
    /// lock, or if the file carries a foreign header.
    pub fn open(path: impl AsRef<Path>, config: StoreConfig) -> std::io::Result<ResponseStore> {
        let path = path.as_ref().to_path_buf();
        let writer_lock = WriterLock::acquire(&path)?;
        let mut inner = StoreInner {
            log: None,
            entries: HashMap::new(),
            generation: 0,
            dead_records: 0,
            semantic: config.semantic.as_ref().map(SemanticTier::new),
        };
        let semantic_enabled = inner.semantic.is_some();
        let log = LogFile::open(&path, HEADER, |payload| {
            inner.apply_record(payload, semantic_enabled)
        })?;
        inner.log = Some(log);
        if let Some(tier) = &mut inner.semantic {
            // Seal everything replayed from disk: warm-start queries hit
            // the index, not the brute tail.
            if !tier.vectors.is_empty() {
                tier.sealed = Some(KnnIndex::auto(tier.vectors.clone(), Metric::L2));
                tier.sealed_len = tier.vectors.len();
            }
        }
        Ok(ResponseStore {
            path,
            config,
            writer_lock: Some(writer_lock),
            inner: Mutex::new(inner),
        })
    }

    /// Open the store at `path` as a reader: no writer lock, no truncation
    /// (a torn tail is ignored, never repaired), and all mutating calls
    /// ([`ResponseStore::admit`], [`ResponseStore::advance_generation`],
    /// [`ResponseStore::compact`]) become no-ops. Errors if the file does
    /// not exist.
    pub fn open_read_only(
        path: impl AsRef<Path>,
        config: StoreConfig,
    ) -> std::io::Result<ResponseStore> {
        let path = path.as_ref().to_path_buf();
        let mut inner = StoreInner {
            log: None,
            entries: HashMap::new(),
            generation: 0,
            dead_records: 0,
            semantic: config.semantic.as_ref().map(SemanticTier::new),
        };
        let semantic_enabled = inner.semantic.is_some();
        LogFile::open_read_only(&path, HEADER, |payload| {
            inner.apply_record(payload, semantic_enabled)
        })?;
        if let Some(tier) = &mut inner.semantic {
            if !tier.vectors.is_empty() {
                tier.sealed = Some(KnnIndex::auto(tier.vectors.clone(), Metric::L2));
                tier.sealed_len = tier.vectors.len();
            }
        }
        Ok(ResponseStore {
            path,
            config,
            writer_lock: None,
            inner: Mutex::new(inner),
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether this handle is a reader (no writer lock; mutations no-op).
    pub fn is_read_only(&self) -> bool {
        self.writer_lock.is_none()
    }

    /// The semantic tier's distance threshold, if the tier is enabled.
    pub fn semantic_threshold(&self) -> Option<f32> {
        self.config.semantic.as_ref().map(|s| s.threshold)
    }

    /// Number of live (unexpired) entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        let ttl = self.config.ttl_generations;
        inner
            .entries
            .values()
            .filter(|e| !inner.expired(e.generation, ttl))
            .count()
    }

    /// Whether the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current eviction generation.
    pub fn generation(&self) -> u64 {
        self.inner.lock().generation
    }

    /// Sum of the live entries' observed recompute costs — the backend
    /// spend a full warm start avoids.
    pub fn live_cost_usd(&self) -> f64 {
        let inner = self.inner.lock();
        let ttl = self.config.ttl_generations;
        inner
            .entries
            .values()
            .filter(|e| !inner.expired(e.generation, ttl))
            .map(|e| e.cost_usd)
            .sum()
    }

    /// Advance the eviction generation (writer only; no-op for readers).
    /// Entries admitted more than [`StoreConfig::ttl_generations`]
    /// generations ago stop being served and are dropped at the next
    /// compaction. The marker is journaled (best-effort) so the generation
    /// survives restarts.
    pub fn advance_generation(&self) {
        if self.is_read_only() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.generation += 1;
        let marker = format!("G\t{}", crate::hash::hex64(inner.generation));
        if let Some(log) = &mut inner.log {
            let _ = log.append(&marker);
        }
    }

    /// Whether a live, unexpired entry exists for `fingerprint`. Cheap
    /// (in-memory index only); used by the cost estimator to predict
    /// store-hit rates.
    pub fn contains(&self, fingerprint: u64) -> bool {
        let inner = self.inner.lock();
        inner
            .entries
            .get(&fingerprint)
            .is_some_and(|e| !inner.expired(e.generation, self.config.ttl_generations))
    }

    /// Exact-tier lookup: the stored response for a request fingerprint,
    /// if live and unexpired. The response is bit-identical to the one the
    /// original process paid for (`cached` is `false` on disk; the serving
    /// client marks its copy `cached: true` so the hit charges nothing).
    pub fn lookup(&self, fingerprint: u64) -> Option<Arc<CompletionResponse>> {
        let inner = self.inner.lock();
        inner
            .entries
            .get(&fingerprint)
            .filter(|e| !inner.expired(e.generation, self.config.ttl_generations))
            .map(|e| Arc::clone(&e.response))
    }

    /// Semantic-tier lookup: the nearest live stored neighbor of `prompt`
    /// within the configured distance threshold, if the tier is enabled.
    /// Callers should only consult this for temperature-0 requests and
    /// after an exact miss; the hit is approximate by construction.
    pub fn lookup_semantic(&self, prompt: &str) -> Option<SemanticHit> {
        // Embed outside the lock: the embedder is immutable and hashing the
        // prompt is the expensive part.
        let embedder = {
            let inner = self.inner.lock();
            inner.semantic.as_ref()?.embedder.clone()
        };
        let vector = embedder.embed(prompt);
        let inner = self.inner.lock();
        let tier = inner.semantic.as_ref()?;
        let ttl = self.config.ttl_generations;
        let (fingerprint, distance) = tier.query(&vector, |fp| {
            inner
                .entries
                .get(&fp)
                .is_some_and(|e| !inner.expired(e.generation, ttl))
        })?;
        let response = Arc::clone(&inner.entries[&fingerprint].response);
        Some(SemanticHit {
            fingerprint,
            distance,
            response,
        })
    }

    /// Admit one freshly paid completion (writer only).
    ///
    /// Refused — returning `false` — for readers, for non-deterministic
    /// requests (`temperature > 0`), for responses that were themselves
    /// cache hits, for fingerprints already live in the store, and, at
    /// capacity, for candidates cheaper than
    /// [`StoreConfig::admission_floor`] × the mean live cost-per-entry.
    /// Admission at capacity evicts cheapest-first. Disk errors are
    /// swallowed (the store is best-effort durability, like the run
    /// journal); the in-memory indexes stay consistent with the log.
    pub fn admit(&self, request: &CompletionRequest, response: &CompletionResponse) -> bool {
        if self.is_read_only() || request.temperature > 0.0 || response.cached {
            return false;
        }
        let fingerprint = request.fingerprint();
        let ttl = self.config.ttl_generations;
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.entries.get(&fingerprint) {
            if !inner.expired(existing.generation, ttl) {
                return false; // live duplicate: first write wins
            }
        }
        let cost_usd = response.pricing.cost_usd(response.usage);

        // Capacity gate: cost-aware admission, cheapest-first eviction.
        if let Some(capacity) = self.config.capacity {
            let live: Vec<(u64, f64)> = inner
                .entries
                .iter()
                .filter(|(_, e)| !inner.expired(e.generation, ttl))
                .map(|(&fp, e)| (fp, e.cost_usd))
                .collect();
            if live.len() >= capacity {
                let mean = live.iter().map(|(_, c)| c).sum::<f64>() / live.len() as f64;
                if cost_usd < self.config.admission_floor * mean {
                    return false; // too cheap to displace anything
                }
                let mut by_cost = live;
                by_cost.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let mut excess = by_cost.len() + 1 - capacity;
                for (fp, _) in by_cost {
                    if excess == 0 {
                        break;
                    }
                    // Journal the eviction so replay reproduces it.
                    let marker = format!("D\t{}", crate::hash::hex64(fp));
                    if let Some(log) = &mut inner.log {
                        let _ = log.append(&marker);
                    }
                    inner.entries.remove(&fp);
                    inner.dead_records += 2;
                    excess -= 1;
                }
            }
        }

        let generation = inner.generation;
        let payload = StoreInner::encode_record(generation, &request.prompt, fingerprint, response);
        let Some(log) = &mut inner.log else {
            return false;
        };
        if log.append(&payload).is_err() {
            return false;
        }
        let mut stored = response.clone();
        stored.cached = false;
        if inner
            .entries
            .insert(
                fingerprint,
                StoredEntry {
                    response: Arc::new(stored),
                    generation,
                    cost_usd,
                    prompt: request.prompt.clone().into_boxed_str(),
                },
            )
            .is_some()
        {
            inner.dead_records += 1; // replaced an expired record
        }
        if let Some(mut tier) = inner.semantic.take() {
            tier.insert(fingerprint, &request.prompt);
            tier.maybe_reseal(&inner.entries);
            inner.semantic = Some(tier);
        }
        // Opportunistic compaction once dead records dominate the file.
        if inner.dead_records > inner.entries.len().max(64) {
            let _ = Self::compact_locked(&self.path, &self.config, &mut inner);
        }
        true
    }

    /// Rewrite the log to contain exactly the live, unexpired entries
    /// (writer only; no-op for readers). Reclaims space held by evicted,
    /// replaced, and expired records; the rewrite goes to a sibling temp
    /// file and is renamed into place, so a crash mid-compaction leaves
    /// either the old or the new file, never a mix.
    pub fn compact(&self) -> std::io::Result<()> {
        if self.is_read_only() {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        Self::compact_locked(&self.path, &self.config, &mut inner)
    }

    fn compact_locked(
        path: &Path,
        config: &StoreConfig,
        inner: &mut StoreInner,
    ) -> std::io::Result<()> {
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".compact");
        let tmp = PathBuf::from(tmp_name);
        std::fs::remove_file(&tmp).ok();
        let mut log = LogFile::open(&tmp, HEADER, |_| true)?;
        log.append(&format!("G\t{}", crate::hash::hex64(inner.generation)))?;

        let ttl = config.ttl_generations;
        let mut expired: Vec<u64> = Vec::new();
        let mut live: Vec<(&u64, &StoredEntry)> = Vec::new();
        for (fp, entry) in &inner.entries {
            if inner.expired(entry.generation, ttl) {
                expired.push(*fp);
            } else {
                live.push((fp, entry));
            }
        }
        // Deterministic file order regardless of hash-map iteration.
        live.sort_by_key(|(fp, _)| **fp);
        for (fp, entry) in live {
            log.append(&StoreInner::encode_record(
                entry.generation,
                &entry.prompt,
                *fp,
                &entry.response,
            ))?;
        }
        std::fs::rename(&tmp, path)?;
        // After the rename the temp handle *is* the store file, cursor at
        // end — swap it in and drop the handle to the unlinked old inode.
        inner.log = Some(log);
        for fp in expired {
            inner.entries.remove(&fp);
        }
        inner.dead_records = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::Pricing;
    use crate::task::TaskDescriptor;
    use crate::types::{FinishReason, Usage};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "crowdprompt-store-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(lock_path(path)).ok();
    }

    fn request(prompt: &str) -> CompletionRequest {
        CompletionRequest::new(
            prompt,
            TaskDescriptor::CheckPredicate {
                item: crate::world::ItemId(0),
                predicate: prompt.into(),
            },
        )
    }

    fn response(text: &str, completion_tokens: u32) -> CompletionResponse {
        CompletionResponse {
            text: text.to_string(),
            usage: Usage {
                prompt_tokens: 10,
                completion_tokens,
            },
            finish_reason: FinishReason::Stop,
            model: "sim-gpt-3.5-turbo".into(),
            cached: false,
            pricing: Pricing::new(0.0005, 0.0015),
            confidence: None,
        }
    }

    #[test]
    fn roundtrip_survives_reopen() {
        let path = temp_path("roundtrip");
        let req = request("what is 2+2?\twith\ttabs\nand newlines");
        {
            let store = ResponseStore::open(&path, StoreConfig::default()).unwrap();
            assert!(store.admit(&req, &response("4", 3)));
            assert!(!store.admit(&req, &response("5", 3)), "first write wins");
            assert_eq!(store.len(), 1);
        }
        let store = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        assert_eq!(store.len(), 1);
        let got = store.lookup(req.fingerprint()).unwrap();
        assert_eq!(got.text, "4");
        assert!(!got.cached);
        assert!(store.lookup(0x1234).is_none());
        cleanup(&path);
    }

    #[test]
    fn refuses_nondeterministic_and_cached_responses() {
        let path = temp_path("refuse");
        let store = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        let sampled = request("prompt").with_temperature(0.7);
        assert!(!store.admit(&sampled, &response("x", 1)));
        let mut hit = response("y", 1);
        hit.cached = true;
        assert!(!store.admit(&request("prompt"), &hit));
        assert!(store.is_empty());
        cleanup(&path);
    }

    #[test]
    fn generation_ttl_expires_and_compaction_drops() {
        let path = temp_path("ttl");
        let config = StoreConfig {
            ttl_generations: Some(2),
            ..StoreConfig::default()
        };
        let req = request("short-lived");
        {
            let store = ResponseStore::open(&path, config.clone()).unwrap();
            assert!(store.admit(&req, &response("v", 2)));
            store.advance_generation();
            assert!(store.contains(req.fingerprint()), "age 1 < ttl 2: live");
            store.advance_generation();
            assert!(
                !store.contains(req.fingerprint()),
                "age 2 >= ttl 2: expired"
            );
            assert!(store.lookup(req.fingerprint()).is_none());
            // Expired slot can be re-admitted.
            assert!(store.admit(&req, &response("v2", 2)));
            assert_eq!(store.lookup(req.fingerprint()).unwrap().text, "v2");
            store.advance_generation();
            store.advance_generation();
            store.compact().unwrap();
            assert_eq!(store.len(), 0);
        }
        // Generation counter and emptiness survive the compaction + reopen.
        let store = ResponseStore::open(&path, config).unwrap();
        assert_eq!(store.generation(), 4);
        assert_eq!(store.len(), 0);
        cleanup(&path);
    }

    #[test]
    fn cost_aware_admission_protects_expensive_entries() {
        let path = temp_path("cost");
        let config = StoreConfig {
            capacity: Some(2),
            admission_floor: 0.5,
            ..StoreConfig::default()
        };
        let store = ResponseStore::open(&path, config).unwrap();
        let (exp_a, exp_b) = (request("expensive a"), request("expensive b"));
        assert!(store.admit(&exp_a, &response("a", 1000)));
        assert!(store.admit(&exp_b, &response("b", 800)));
        // A cheap candidate at capacity is refused outright…
        let cheap = request("cheap");
        assert!(!store.admit(&cheap, &response("c", 1)));
        assert_eq!(store.len(), 2);
        // …while a comparable one is admitted by evicting the cheapest.
        let rich = request("also expensive");
        assert!(store.admit(&rich, &response("r", 900)));
        assert_eq!(store.len(), 2);
        assert!(store.contains(exp_a.fingerprint()), "most expensive kept");
        assert!(!store.contains(exp_b.fingerprint()), "cheapest evicted");
        assert!(store.contains(rich.fingerprint()));
        cleanup(&path);
    }

    #[test]
    fn semantic_tier_answers_near_duplicates_within_threshold() {
        let path = temp_path("semantic");
        let config = StoreConfig {
            semantic: Some(SemanticConfig::new(0.4)),
            ..StoreConfig::default()
        };
        let req = request("Is the item 'wireless keyboard model K380' electronics?");
        {
            let store = ResponseStore::open(&path, config.clone()).unwrap();
            assert!(store.admit(&req, &response("yes", 2)));
            let hit = store
                .lookup_semantic("Is the item 'wireless keyboard model K381' electronics?")
                .expect("near-duplicate within threshold");
            assert_eq!(hit.response.text, "yes");
            assert_eq!(hit.fingerprint, req.fingerprint());
            assert!(hit.distance > 0.0 && hit.distance <= 0.4);
            assert!(
                store
                    .lookup_semantic("completely unrelated question about the weather")
                    .is_none(),
                "far prompts miss"
            );
        }
        // The semantic index rebuilds from persisted prompts on reopen.
        let store = ResponseStore::open_read_only(&path, config).unwrap();
        let hit = store
            .lookup_semantic("Is the item 'wireless keyboard model K379' electronics?")
            .expect("semantic hit after reopen");
        assert_eq!(hit.response.text, "yes");
        cleanup(&path);
    }

    #[test]
    fn single_writer_enforced_readers_allowed() {
        let path = temp_path("writer");
        let writer = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        assert!(!writer.is_read_only());
        let err = match ResponseStore::open(&path, StoreConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("second writer must be refused"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        writer.admit(&request("p"), &response("v", 1));
        let reader = ResponseStore::open_read_only(&path, StoreConfig::default()).unwrap();
        assert!(reader.is_read_only());
        assert_eq!(reader.len(), 1);
        assert!(!reader.admit(&request("q"), &response("w", 1)));
        drop(writer);
        // Lock released on drop: a new writer may take over.
        let writer2 = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        assert_eq!(writer2.len(), 1);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_recovered_on_writer_ignored_by_reader() {
        let path = temp_path("torn");
        {
            let store = ResponseStore::open(&path, StoreConfig::default()).unwrap();
            store.admit(&request("kept"), &response("k", 1));
            store.admit(&request("torn"), &response("t", 1));
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let reader = ResponseStore::open_read_only(&path, StoreConfig::default()).unwrap();
        assert_eq!(reader.len(), 1, "reader skips the torn record");
        assert_eq!(std::fs::read(&path).unwrap().len(), full.len() - 5);
        let writer = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        assert_eq!(writer.len(), 1);
        assert!(writer.contains(request("kept").fingerprint()));
        drop(writer);
        assert!(
            std::fs::read(&path).unwrap().len() < full.len() - 5,
            "writer truncated the torn tail"
        );
        cleanup(&path);
    }

    #[test]
    fn compaction_reclaims_replaced_records() {
        let path = temp_path("compact");
        let config = StoreConfig {
            capacity: Some(4),
            ..StoreConfig::default()
        };
        {
            let store = ResponseStore::open(&path, config.clone()).unwrap();
            for i in 0..32 {
                store.admit(&request(&format!("prompt {i}")), &response("v", 1 + i));
            }
            assert_eq!(store.len(), 4);
            store.compact().unwrap();
            assert_eq!(store.len(), 4);
            store.admit(&request("after compact"), &response("w", 100));
            assert_eq!(store.len(), 4);
        }
        let store = ResponseStore::open(&path, config).unwrap();
        assert_eq!(store.len(), 4);
        assert!(store.contains(request("after compact").fingerprint()));
        cleanup(&path);
    }

    #[test]
    fn live_cost_tracks_admissions() {
        let path = temp_path("livecost");
        let store = ResponseStore::open(&path, StoreConfig::default()).unwrap();
        let r = response("v", 1000);
        let unit = r.pricing.cost_usd(r.usage);
        store.admit(&request("one"), &r);
        store.admit(&request("two"), &r);
        assert!((store.live_cost_usd() - 2.0 * unit).abs() < 1e-12);
        cleanup(&path);
    }
}
