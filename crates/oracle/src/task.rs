//! Structured unit-task descriptors.
//!
//! Following the paper's framing, the interesting object is not the prompt
//! wording but the *data processing operation* a prompt encodes: which items
//! go in, what relationship is asked about, and what comes out. A
//! [`TaskDescriptor`] captures exactly that. Prompt templates (in
//! `crowdprompt-core`) render descriptors into text; the simulator executes
//! descriptors against the latent world model.

use crate::hash::Fingerprint;
use crate::world::ItemId;

/// What ordering criterion a sort/compare/rate task refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortCriterion {
    /// Order by a latent scalar score registered in the world model
    /// (e.g. "how chocolatey"). Higher scores sort first.
    LatentScore,
    /// Order lexicographically by the item's registered sort key
    /// (e.g. alphabetical word ordering). Smaller keys sort first.
    Lexicographic,
}

/// Coarse vs. fine counting, per §3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMode {
    /// One task that eyeballs the whole batch and estimates a proportion.
    Eyeball,
    /// The engine issues per-item checks instead (this variant exists so the
    /// descriptor can state intent; per-item checks arrive as
    /// [`TaskDescriptor::CheckPredicate`]).
    PerItem,
}

/// A single unit task for the LLM (or crowd worker), mirroring the unit-task
/// taxonomy of the declarative crowdsourcing literature.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskDescriptor {
    /// Sort an entire list in one prompt (the paper's baseline strategy).
    SortList {
        /// Items to sort, in presentation order.
        items: Vec<ItemId>,
        /// Ordering criterion.
        criterion: SortCriterion,
    },
    /// Compare a batch of pairs in one prompt: for each pair, "does the
    /// first item rank before the second?" Batching amortizes prompt
    /// overhead at some accuracy cost (§4's batch-size hyper-parameter).
    CompareBatch {
        /// The pairs to compare, in presentation order.
        pairs: Vec<(ItemId, ItemId)>,
        /// Ordering criterion.
        criterion: SortCriterion,
    },
    /// Compare two items: "does `left` rank before `right`?"
    Compare {
        /// First-listed item (subject to positional bias).
        left: ItemId,
        /// Second-listed item.
        right: ItemId,
        /// Ordering criterion.
        criterion: SortCriterion,
    },
    /// Rate one item on an integer scale.
    Rate {
        /// Item to rate.
        item: ItemId,
        /// Inclusive low end of the scale (paper uses 1).
        scale_min: u8,
        /// Inclusive high end of the scale (paper uses 7).
        scale_max: u8,
        /// Criterion the rating reflects.
        criterion: SortCriterion,
    },
    /// "Are A and B the same entity? Yes or No?" (paper §3.3).
    SameEntity {
        /// First entity.
        left: ItemId,
        /// Second entity.
        right: ItemId,
    },
    /// Coarse-grained entity resolution: group a small batch into duplicate
    /// clusters in one prompt.
    GroupEntities {
        /// Batch of records to group.
        items: Vec<ItemId>,
    },
    /// Impute a missing attribute from the serialized record (paper §3.4),
    /// optionally with few-shot examples rendered into the prompt.
    Impute {
        /// Record with the missing attribute.
        item: ItemId,
        /// Attribute name to fill.
        attribute: String,
        /// Few-shot example records (item, known value) included in the
        /// prompt; affects both cost and simulated accuracy.
        examples: Vec<(ItemId, String)>,
    },
    /// Coarse counting: estimate how many items in the batch satisfy the
    /// predicate by eyeballing (paper §3.1, Marcus et al.).
    CountPredicate {
        /// Batch to eyeball.
        items: Vec<ItemId>,
        /// Named predicate registered in the world model.
        predicate: String,
        /// Declared counting mode.
        mode: CountMode,
    },
    /// Fine-grained check: does this one item satisfy the predicate?
    CheckPredicate {
        /// Item to check.
        item: ItemId,
        /// Named predicate registered in the world model.
        predicate: String,
    },
    /// Assign the item one of the given labels.
    Classify {
        /// Item to label.
        item: ItemId,
        /// Candidate labels; the world model stores the true one.
        labels: Vec<String>,
    },
    /// Ask the model to verify a previously proposed answer (paper §3.5).
    Verify {
        /// The original unit task.
        original: Box<TaskDescriptor>,
        /// The answer whose correctness is being checked.
        proposed_answer: String,
    },
    /// B point-wise unit tasks packed into one prompt with a numbered-answer
    /// output contract: the shared instruction (predicate, label set, or
    /// attribute) is stated once and the model answers one line per item, in
    /// order. Packing amortizes the instruction prefix and divides the call
    /// count by B — the per-prompt batching lever of §4 applied to the
    /// point-wise operators (filter, categorize, per-item count, impute).
    ///
    /// Build through [`TaskDescriptor::packed`], which enforces the packing
    /// contract (non-empty, all sub-tasks packable, pairwise compatible).
    Packed {
        /// The packed sub-tasks, in presentation (and answer) order.
        tasks: Vec<TaskDescriptor>,
    },
}

impl TaskDescriptor {
    /// Short human-readable kind tag, used in traces and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            TaskDescriptor::SortList { .. } => "sort_list",
            TaskDescriptor::Compare { .. } => "compare",
            TaskDescriptor::CompareBatch { .. } => "compare_batch",
            TaskDescriptor::Rate { .. } => "rate",
            TaskDescriptor::SameEntity { .. } => "same_entity",
            TaskDescriptor::GroupEntities { .. } => "group_entities",
            TaskDescriptor::Impute { .. } => "impute",
            TaskDescriptor::CountPredicate { .. } => "count_predicate",
            TaskDescriptor::CheckPredicate { .. } => "check_predicate",
            TaskDescriptor::Classify { .. } => "classify",
            TaskDescriptor::Verify { .. } => "verify",
            TaskDescriptor::Packed { .. } => "packed",
        }
    }

    /// Whether this task kind may appear inside a [`TaskDescriptor::Packed`]
    /// prompt: point-wise tasks over a single item whose answer fits one
    /// line (a yes/no verdict, a label, or an attribute value).
    pub fn packable(&self) -> bool {
        matches!(
            self,
            TaskDescriptor::CheckPredicate { .. }
                | TaskDescriptor::Classify { .. }
                | TaskDescriptor::Impute { .. }
        )
    }

    /// Whether two packable tasks may share one packed prompt: same kind and
    /// same shared instruction (predicate / label set / attribute), so the
    /// instruction prefix can be hoisted and stated once. Few-shot examples
    /// (impute) may differ per record — they render per item.
    pub fn pack_compatible(&self, other: &TaskDescriptor) -> bool {
        match (self, other) {
            (
                TaskDescriptor::CheckPredicate { predicate: a, .. },
                TaskDescriptor::CheckPredicate { predicate: b, .. },
            ) => a == b,
            (
                TaskDescriptor::Classify { labels: a, .. },
                TaskDescriptor::Classify { labels: b, .. },
            ) => a == b,
            (
                TaskDescriptor::Impute { attribute: a, .. },
                TaskDescriptor::Impute { attribute: b, .. },
            ) => a == b,
            _ => false,
        }
    }

    /// Pack point-wise tasks into one multi-item prompt descriptor.
    ///
    /// Enforces the packing contract: at least one task, every task
    /// [`TaskDescriptor::packable`], and all tasks
    /// [`TaskDescriptor::pack_compatible`] with the first (one shared
    /// instruction per prompt). Nested packs are rejected by `packable`.
    pub fn packed(tasks: Vec<TaskDescriptor>) -> Result<TaskDescriptor, crate::error::LlmError> {
        use crate::error::LlmError;
        let first = tasks
            .first()
            .ok_or_else(|| LlmError::InvalidRequest("packed task with no sub-tasks".into()))?;
        for task in &tasks {
            if !task.packable() {
                return Err(LlmError::InvalidRequest(format!(
                    "task kind {:?} is not packable",
                    task.kind()
                )));
            }
            if !first.pack_compatible(task) {
                return Err(LlmError::InvalidRequest(format!(
                    "packed sub-tasks must share one instruction: {:?} vs {:?}",
                    first.kind(),
                    task.kind()
                )));
            }
        }
        Ok(TaskDescriptor::Packed { tasks })
    }

    /// Stable content fingerprint (order-sensitive where order matters).
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_str(self.kind());
        match self {
            TaskDescriptor::SortList { items, criterion } => {
                for it in items {
                    f.write_u64(it.0);
                }
                f.write_u64(criterion_tag(*criterion));
            }
            TaskDescriptor::Compare {
                left,
                right,
                criterion,
            } => {
                f.write_u64(left.0);
                f.write_u64(right.0);
                f.write_u64(criterion_tag(*criterion));
            }
            TaskDescriptor::CompareBatch { pairs, criterion } => {
                for (l, r) in pairs {
                    f.write_u64(l.0);
                    f.write_u64(r.0);
                }
                f.write_u64(criterion_tag(*criterion));
            }
            TaskDescriptor::Rate {
                item,
                scale_min,
                scale_max,
                criterion,
            } => {
                f.write_u64(item.0);
                f.write_u64(u64::from(*scale_min));
                f.write_u64(u64::from(*scale_max));
                f.write_u64(criterion_tag(*criterion));
            }
            TaskDescriptor::SameEntity { left, right } => {
                f.write_u64(left.0);
                f.write_u64(right.0);
            }
            TaskDescriptor::GroupEntities { items } => {
                for it in items {
                    f.write_u64(it.0);
                }
            }
            TaskDescriptor::Impute {
                item,
                attribute,
                examples,
            } => {
                f.write_u64(item.0);
                f.write_str(attribute);
                for (id, v) in examples {
                    f.write_u64(id.0);
                    f.write_str(v);
                }
            }
            TaskDescriptor::CountPredicate {
                items,
                predicate,
                mode,
            } => {
                for it in items {
                    f.write_u64(it.0);
                }
                f.write_str(predicate);
                f.write_u64(match mode {
                    CountMode::Eyeball => 0,
                    CountMode::PerItem => 1,
                });
            }
            TaskDescriptor::CheckPredicate { item, predicate } => {
                f.write_u64(item.0);
                f.write_str(predicate);
            }
            TaskDescriptor::Classify { item, labels } => {
                f.write_u64(item.0);
                for l in labels {
                    f.write_str(l);
                }
            }
            TaskDescriptor::Verify {
                original,
                proposed_answer,
            } => {
                f.write_u64(original.fingerprint());
                f.write_str(proposed_answer);
            }
            TaskDescriptor::Packed { tasks } => {
                for t in tasks {
                    f.write_u64(t.fingerprint());
                }
            }
        }
        f.finish()
    }

    /// The item ids this task touches (deduplicated not guaranteed).
    pub fn items(&self) -> Vec<ItemId> {
        match self {
            TaskDescriptor::SortList { items, .. }
            | TaskDescriptor::GroupEntities { items }
            | TaskDescriptor::CountPredicate { items, .. } => items.clone(),
            TaskDescriptor::Compare { left, right, .. }
            | TaskDescriptor::SameEntity { left, right } => vec![*left, *right],
            TaskDescriptor::CompareBatch { pairs, .. } => {
                pairs.iter().flat_map(|(l, r)| [*l, *r]).collect()
            }
            TaskDescriptor::Rate { item, .. }
            | TaskDescriptor::CheckPredicate { item, .. }
            | TaskDescriptor::Classify { item, .. } => vec![*item],
            TaskDescriptor::Impute { item, examples, .. } => {
                let mut v = vec![*item];
                v.extend(examples.iter().map(|(id, _)| *id));
                v
            }
            TaskDescriptor::Verify { original, .. } => original.items(),
            TaskDescriptor::Packed { tasks } => {
                tasks.iter().flat_map(TaskDescriptor::items).collect()
            }
        }
    }
}

fn criterion_tag(c: SortCriterion) -> u64 {
    match c {
        SortCriterion::LatentScore => 0,
        SortCriterion::Lexicographic => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_order_sensitive_for_compare() {
        let a = TaskDescriptor::Compare {
            left: ItemId(1),
            right: ItemId(2),
            criterion: SortCriterion::LatentScore,
        };
        let b = TaskDescriptor::Compare {
            left: ItemId(2),
            right: ItemId(1),
            criterion: SortCriterion::LatentScore,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_criteria() {
        let a = TaskDescriptor::Compare {
            left: ItemId(1),
            right: ItemId(2),
            criterion: SortCriterion::LatentScore,
        };
        let b = TaskDescriptor::Compare {
            left: ItemId(1),
            right: ItemId(2),
            criterion: SortCriterion::Lexicographic,
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn items_collects_examples() {
        let t = TaskDescriptor::Impute {
            item: ItemId(1),
            attribute: "city".into(),
            examples: vec![(ItemId(2), "berkeley".into()), (ItemId(3), "sf".into())],
        };
        assert_eq!(t.items(), vec![ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn verify_fingerprint_depends_on_inner_task() {
        let inner1 = TaskDescriptor::SameEntity {
            left: ItemId(1),
            right: ItemId(2),
        };
        let inner2 = TaskDescriptor::SameEntity {
            left: ItemId(1),
            right: ItemId(3),
        };
        let v1 = TaskDescriptor::Verify {
            original: Box::new(inner1),
            proposed_answer: "yes".into(),
        };
        let v2 = TaskDescriptor::Verify {
            original: Box::new(inner2),
            proposed_answer: "yes".into(),
        };
        assert_ne!(v1.fingerprint(), v2.fingerprint());
    }

    #[test]
    fn packed_constructor_enforces_contract() {
        let check = |i: u64| TaskDescriptor::CheckPredicate {
            item: ItemId(i),
            predicate: "p".into(),
        };
        // Valid homogeneous pack.
        let packed = TaskDescriptor::packed(vec![check(1), check(2)]).unwrap();
        assert_eq!(packed.kind(), "packed");
        assert_eq!(packed.items(), vec![ItemId(1), ItemId(2)]);
        // Empty pack rejected.
        assert!(TaskDescriptor::packed(vec![]).is_err());
        // Mismatched predicates rejected.
        let other = TaskDescriptor::CheckPredicate {
            item: ItemId(3),
            predicate: "q".into(),
        };
        assert!(TaskDescriptor::packed(vec![check(1), other]).is_err());
        // Non-packable kinds rejected.
        let compare = TaskDescriptor::Compare {
            left: ItemId(1),
            right: ItemId(2),
            criterion: SortCriterion::LatentScore,
        };
        assert!(TaskDescriptor::packed(vec![compare]).is_err());
        // Nested packs rejected (packed itself is not packable).
        let inner = TaskDescriptor::packed(vec![check(1)]).unwrap();
        assert!(TaskDescriptor::packed(vec![inner]).is_err());
    }

    #[test]
    fn packed_fingerprint_is_order_sensitive_and_composition_sensitive() {
        let check = |i: u64| TaskDescriptor::CheckPredicate {
            item: ItemId(i),
            predicate: "p".into(),
        };
        let ab = TaskDescriptor::packed(vec![check(1), check(2)]).unwrap();
        let ba = TaskDescriptor::packed(vec![check(2), check(1)]).unwrap();
        let abc = TaskDescriptor::packed(vec![check(1), check(2), check(3)]).unwrap();
        assert_ne!(ab.fingerprint(), ba.fingerprint());
        assert_ne!(ab.fingerprint(), abc.fingerprint());
        // A pack of one is not fingerprint-identical to the bare task (the
        // engine dispatches singletons unpacked precisely for cache parity).
        assert_ne!(
            TaskDescriptor::packed(vec![check(1)])
                .unwrap()
                .fingerprint(),
            check(1).fingerprint()
        );
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            TaskDescriptor::SortList {
                items: vec![],
                criterion: SortCriterion::LatentScore,
            }
            .kind(),
            TaskDescriptor::GroupEntities { items: vec![] }.kind(),
            TaskDescriptor::CheckPredicate {
                item: ItemId(0),
                predicate: String::new(),
            }
            .kind(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
