//! Deterministic approximate tokenizer.
//!
//! Commercial LLM pricing is per token under a BPE vocabulary we do not ship.
//! For cost accounting we only need a *stable, monotone* approximation; the
//! standard industry rule of thumb is ~4 characters or ~0.75 words per token.
//! We blend a word/punctuation count with a character-length estimate, which
//! tracks real tokenizers closely on English prose and record-style text.

/// Count approximate tokens in `text`.
///
/// Properties (tested below and by property tests):
/// * deterministic,
/// * `count_tokens("") == 0`,
/// * monotone under concatenation: `count(a + b) >= max(count(a), count(b))`.
pub fn count_tokens(text: &str) -> u32 {
    if text.is_empty() {
        return 0;
    }
    let mut words: u32 = 0;
    let mut punct: u32 = 0;
    let mut in_word = false;
    let mut chars: u32 = 0;
    for c in text.chars() {
        chars += 1;
        if c.is_alphanumeric() {
            if !in_word {
                words += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !c.is_whitespace() {
                punct += 1;
            }
        }
    }
    // Long words get split into multiple BPE pieces; approximate that with a
    // character-driven floor of one token per 4 characters.
    let char_floor = chars.div_ceil(4);
    let blended = words + punct;
    blended.max(char_floor).max(1)
}

/// Count tokens for a slice of texts (e.g. a rendered few-shot prompt).
pub fn count_tokens_all<S: AsRef<str>>(texts: &[S]) -> u32 {
    texts.iter().map(|t| count_tokens(t.as_ref())).sum()
}

/// Truncate `text` to approximately `max_tokens`, respecting char boundaries.
///
/// Used by the simulator to emulate `max_tokens` cut-offs (finish reason
/// `Length`). Returns the truncated text and whether truncation occurred.
pub fn truncate_to_tokens(text: &str, max_tokens: u32) -> (&str, bool) {
    if count_tokens(text) <= max_tokens {
        return (text, false);
    }
    // Binary search the longest char-boundary prefix within budget.
    let indices: Vec<usize> = text
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(text.len()))
        .collect();
    let (mut lo, mut hi) = (0usize, indices.len() - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if count_tokens(&text[..indices[mid]]) <= max_tokens {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    (&text[..indices[lo]], true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
    }

    #[test]
    fn single_word() {
        assert_eq!(count_tokens("hello"), 2); // ceil(5/4) = 2
        assert_eq!(count_tokens("hi"), 1);
    }

    #[test]
    fn prose_tracks_word_count() {
        let text = "Are Citation A and Citation B the same? Yes or No?";
        let t = count_tokens(text);
        // 11 words + 2 punctuation marks, char floor ceil(51/4)=13.
        assert!((11..=16).contains(&t), "got {t}");
    }

    #[test]
    fn long_unbroken_word_uses_char_floor() {
        let text = "a".repeat(100);
        assert_eq!(count_tokens(&text), 25);
    }

    #[test]
    fn monotone_under_concat() {
        let a = "chocolate fudge brownie";
        let b = "; lemon sorbet";
        let ab = format!("{a}{b}");
        assert!(count_tokens(&ab) >= count_tokens(a));
        assert!(count_tokens(&ab) >= count_tokens(b));
    }

    #[test]
    fn count_all_sums() {
        let parts = ["one two", "three"];
        assert_eq!(
            count_tokens_all(&parts),
            count_tokens("one two") + count_tokens("three")
        );
    }

    #[test]
    fn truncate_noop_when_within_budget() {
        let (out, cut) = truncate_to_tokens("short text", 100);
        assert_eq!(out, "short text");
        assert!(!cut);
    }

    #[test]
    fn truncate_respects_budget() {
        let text = "alpha beta gamma delta epsilon zeta eta theta";
        let (out, cut) = truncate_to_tokens(text, 4);
        assert!(cut);
        assert!(count_tokens(out) <= 4);
        assert!(text.starts_with(out));
    }

    #[test]
    fn truncate_handles_multibyte() {
        let text = "héllo wörld ünïcode tèxt çontent";
        let (out, _) = truncate_to_tokens(text, 3);
        assert!(text.starts_with(out));
        assert!(count_tokens(out) <= 3);
    }
}
