//! Request/response types and the [`LanguageModel`] trait.

use crate::error::LlmError;
use crate::hash::Fingerprint;
use crate::pricing::Pricing;
use crate::task::TaskDescriptor;

/// Token usage for a single completion call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Tokens in the rendered prompt.
    pub prompt_tokens: u32,
    /// Tokens in the generated completion.
    pub completion_tokens: u32,
}

impl Usage {
    /// Total tokens (prompt + completion).
    pub fn total(&self) -> u32 {
        self.prompt_tokens + self.completion_tokens
    }
}

impl std::ops::Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            prompt_tokens: self.prompt_tokens + rhs.prompt_tokens,
            completion_tokens: self.completion_tokens + rhs.completion_tokens,
        }
    }
}

impl std::ops::AddAssign for Usage {
    fn add_assign(&mut self, rhs: Usage) {
        *self = *self + rhs;
    }
}

/// Why generation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The model emitted a natural stop.
    Stop,
    /// Output was cut off by the `max_tokens` limit.
    Length,
}

/// A single completion request.
///
/// `prompt` is the rendered natural-language text (used for token accounting
/// and context-window checks, exactly as a real API would). `task` is the
/// structured payload the prompt renders; the simulator executes it against
/// the world model. A real network-backed implementation of
/// [`LanguageModel`] would ignore `task` and send `prompt` over the wire.
#[derive(Debug, Clone)]
pub struct CompletionRequest {
    /// Rendered prompt text.
    pub prompt: String,
    /// Structured description of the unit task the prompt encodes.
    pub task: TaskDescriptor,
    /// Sampling temperature; `0.0` means deterministic.
    pub temperature: f64,
    /// Maximum completion tokens (`None` = model default).
    pub max_tokens: Option<u32>,
    /// Monotone sequence number used to decorrelate repeated sampling of the
    /// same prompt at temperature > 0 (e.g. self-consistency voting).
    pub sample_index: u32,
    /// Wall-clock deadline for this call's *run*, if any. Dispatchers clip
    /// retry backoff and hedge waits against it and stop retrying once it
    /// passes, so a deadlined batch never overshoots chasing stragglers.
    /// Excluded from [`CompletionRequest::fingerprint`]: a deadline changes
    /// scheduling, never the answer, so caching is unaffected.
    pub deadline: Option<std::time::Instant>,
}

impl CompletionRequest {
    /// Build a request with default sampling parameters (temperature 0).
    pub fn new(prompt: impl Into<String>, task: TaskDescriptor) -> Self {
        CompletionRequest {
            prompt: prompt.into(),
            task,
            temperature: 0.0,
            max_tokens: None,
            sample_index: 0,
            deadline: None,
        }
    }

    /// Set the sampling temperature.
    #[must_use]
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Set the max-tokens cap.
    #[must_use]
    pub fn with_max_tokens(mut self, m: u32) -> Self {
        self.max_tokens = Some(m);
        self
    }

    /// Set the sample index (for repeated sampling at temperature > 0).
    #[must_use]
    pub fn with_sample_index(mut self, i: u32) -> Self {
        self.sample_index = i;
        self
    }

    /// Set (or clear) the run deadline this call must respect.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Time remaining until the deadline, if one is set. `Some(ZERO)` when
    /// the deadline has already passed.
    pub fn remaining(&self, now: std::time::Instant) -> Option<std::time::Duration> {
        self.deadline.map(|d| d.saturating_duration_since(now))
    }

    /// Stable fingerprint of the request content, suitable as a cache key.
    ///
    /// Includes the sample index only when temperature is positive, so that
    /// deterministic (temperature-0) requests are cached across samples.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_str(&self.prompt);
        f.write_u64(self.task.fingerprint());
        f.write_f64(self.temperature);
        f.write_u64(u64::from(self.max_tokens.unwrap_or(0)));
        if self.temperature > 0.0 {
            f.write_u64(u64::from(self.sample_index));
        }
        f.finish()
    }
}

/// A completion response.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionResponse {
    /// The generated text (may include chatter around the answer).
    pub text: String,
    /// Token usage for this call.
    pub usage: Usage,
    /// Why generation stopped.
    pub finish_reason: FinishReason,
    /// Model that produced the response.
    pub model: String,
    /// Whether this response was served from a client-side cache (cached
    /// responses incur no spend; budget guards skip them).
    pub cached: bool,
    /// The billing schedule this response is charged under — the serving
    /// backend's pricing, not necessarily the tier's reference pricing.
    /// With multi-backend routing, backends carry price multipliers, so
    /// the ledger, budget tracker, and operator cost meters all price a
    /// response from this field to stay mutually consistent.
    pub pricing: Pricing,
    /// The model's confidence in its answer, in `(0.5, 1.0]`, when the task
    /// has a binary answer — the simulator's analogue of answer-token log
    /// probabilities (§2 of the paper notes real APIs expose these).
    /// `None` for task kinds without a single binary answer.
    pub confidence: Option<f64>,
}

/// A language model backend: the simulator here, or a network client in a
/// production deployment. Object safe; engines hold `Arc<dyn LanguageModel>`.
pub trait LanguageModel: Send + Sync {
    /// Stable model identifier (e.g. `"sim-gpt35"`).
    fn name(&self) -> &str;
    /// Maximum prompt size in tokens.
    fn context_window(&self) -> u32;
    /// Billing schedule.
    fn pricing(&self) -> Pricing;
    /// Execute one completion request.
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, LlmError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskDescriptor;
    use crate::world::ItemId;

    fn dummy_task() -> TaskDescriptor {
        TaskDescriptor::CheckPredicate {
            item: ItemId(1),
            predicate: "is_positive".into(),
        }
    }

    #[test]
    fn usage_arithmetic() {
        let a = Usage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        let b = Usage {
            prompt_tokens: 1,
            completion_tokens: 2,
        };
        assert_eq!((a + b).total(), 18);
        let mut c = a;
        c += b;
        assert_eq!(c.prompt_tokens, 11);
    }

    #[test]
    fn fingerprint_ignores_sample_index_at_temp_zero() {
        let r1 = CompletionRequest::new("p", dummy_task()).with_sample_index(0);
        let r2 = CompletionRequest::new("p", dummy_task()).with_sample_index(5);
        assert_eq!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn fingerprint_varies_sample_index_at_positive_temp() {
        let r1 = CompletionRequest::new("p", dummy_task())
            .with_temperature(0.7)
            .with_sample_index(0);
        let r2 = CompletionRequest::new("p", dummy_task())
            .with_temperature(0.7)
            .with_sample_index(1);
        assert_ne!(r1.fingerprint(), r2.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_deadline() {
        let r1 = CompletionRequest::new("p", dummy_task());
        let r2 = CompletionRequest::new("p", dummy_task())
            .with_deadline(Some(std::time::Instant::now()));
        assert_eq!(r1.fingerprint(), r2.fingerprint());
        assert_eq!(
            r2.remaining(std::time::Instant::now()),
            Some(std::time::Duration::ZERO)
        );
        assert_eq!(r1.remaining(std::time::Instant::now()), None);
    }

    #[test]
    fn fingerprint_sensitive_to_prompt_and_task() {
        let base = CompletionRequest::new("p", dummy_task());
        let other_prompt = CompletionRequest::new("q", dummy_task());
        assert_ne!(base.fingerprint(), other_prompt.fingerprint());

        let other_task = CompletionRequest::new(
            "p",
            TaskDescriptor::CheckPredicate {
                item: ItemId(2),
                predicate: "is_positive".into(),
            },
        );
        assert_ne!(base.fingerprint(), other_task.fingerprint());
    }
}
