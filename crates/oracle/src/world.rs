//! The latent world model: ground truth the simulator answers from.
//!
//! In a crowdsourcing simulation, a "worker" is modelled as ground truth plus
//! noise. The [`WorldModel`] is that ground truth: latent scalar scores,
//! lexicographic keys, entity cluster ids, true attribute values, and
//! predicate truth. **Only** the simulator and the metrics layer may consult
//! it; the declarative engine sees item texts alone, exactly as a production
//! system would.

use std::collections::HashMap;

/// Opaque identifier of a data item (record, snippet, entity mention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u64);

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// Latent ground truth registry.
///
/// Built once by a dataset generator and then shared (behind `Arc`) with the
/// simulated model. All lookups are by [`ItemId`].
#[derive(Debug, Default, Clone)]
pub struct WorldModel {
    texts: HashMap<ItemId, String>,
    scores: HashMap<ItemId, f64>,
    sort_keys: HashMap<ItemId, String>,
    clusters: HashMap<ItemId, u64>,
    attrs: HashMap<(ItemId, String), String>,
    flags: HashMap<(ItemId, String), bool>,
    /// How much surface evidence of the latent score the text carries, in
    /// `[0, 1]`. Items with high salience (e.g. "chocolate" in the flavor
    /// name) are sorted confidently even by a coarse single-prompt task;
    /// low-salience items are where the oracle guesses.
    salience: HashMap<ItemId, f64>,
    next_id: u64,
}

impl WorldModel {
    /// An empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new item with the given display text, returning its id.
    pub fn add_item(&mut self, text: impl Into<String>) -> ItemId {
        let id = ItemId(self.next_id);
        self.next_id += 1;
        self.texts.insert(id, text.into());
        id
    }

    /// Number of registered items.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the world has no items.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// All registered item ids, in insertion (id) order.
    pub fn item_ids(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self.texts.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Set the latent scalar score of an item (higher ranks first).
    pub fn set_score(&mut self, id: ItemId, score: f64) {
        self.scores.insert(id, score);
    }

    /// Set the lexicographic sort key of an item.
    pub fn set_sort_key(&mut self, id: ItemId, key: impl Into<String>) {
        self.sort_keys.insert(id, key.into());
    }

    /// Set the true entity cluster of an item.
    pub fn set_cluster(&mut self, id: ItemId, cluster: u64) {
        self.clusters.insert(id, cluster);
    }

    /// Set the true value of a named attribute of an item.
    pub fn set_attr(&mut self, id: ItemId, attr: impl Into<String>, value: impl Into<String>) {
        self.attrs.insert((id, attr.into()), value.into());
    }

    /// Set the truth of a named predicate for an item.
    pub fn set_flag(&mut self, id: ItemId, predicate: impl Into<String>, value: bool) {
        self.flags.insert((id, predicate.into()), value);
    }

    /// Set the surface salience of an item's latent score (clamped to
    /// `[0, 1]`).
    pub fn set_salience(&mut self, id: ItemId, salience: f64) {
        self.salience.insert(id, salience.clamp(0.0, 1.0));
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Display text of the item.
    pub fn text(&self, id: ItemId) -> Option<&str> {
        self.texts.get(&id).map(String::as_str)
    }

    /// Latent score, if registered.
    pub fn score(&self, id: ItemId) -> Option<f64> {
        self.scores.get(&id).copied()
    }

    /// Lexicographic sort key, if registered.
    pub fn sort_key(&self, id: ItemId) -> Option<&str> {
        self.sort_keys.get(&id).map(String::as_str)
    }

    /// True entity cluster, if registered.
    pub fn cluster(&self, id: ItemId) -> Option<u64> {
        self.clusters.get(&id).copied()
    }

    /// True attribute value, if registered.
    pub fn attr(&self, id: ItemId, attr: &str) -> Option<&str> {
        self.attrs.get(&(id, attr.to_owned())).map(String::as_str)
    }

    /// Predicate truth, if registered.
    pub fn flag(&self, id: ItemId, predicate: &str) -> Option<bool> {
        self.flags.get(&(id, predicate.to_owned())).copied()
    }

    /// All distinct registered values of the named attribute, sorted.
    ///
    /// The simulator uses this as the answer pool when it imputes a value
    /// incorrectly (a wrong-but-plausible value, like a real model would).
    pub fn values_of_attr(&self, attr: &str) -> Vec<&str> {
        let mut vals: Vec<&str> = self
            .attrs
            .iter()
            .filter(|((_, a), _)| a == attr)
            .map(|(_, v)| v.as_str())
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Surface salience in `[0,1]`; defaults to `0.5` when unregistered.
    pub fn salience_of(&self, id: ItemId) -> f64 {
        self.salience.get(&id).copied().unwrap_or(0.5)
    }

    /// Whether two items belong to the same true entity cluster.
    ///
    /// Returns `None` if either item has no registered cluster.
    pub fn same_cluster(&self, a: ItemId, b: ItemId) -> Option<bool> {
        Some(self.cluster(a)? == self.cluster(b)?)
    }

    /// The gold ranking of the given items under the latent score
    /// (descending; ties broken by id for determinism).
    pub fn gold_ranking_by_score(&self, items: &[ItemId]) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = items.to_vec();
        v.sort_by(|a, b| {
            let sa = self.score(*a).unwrap_or(f64::NEG_INFINITY);
            let sb = self.score(*b).unwrap_or(f64::NEG_INFINITY);
            sb.partial_cmp(&sa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        v
    }

    /// The gold ranking of the given items under the lexicographic key
    /// (ascending; ties broken by id).
    pub fn gold_ranking_by_key(&self, items: &[ItemId]) -> Vec<ItemId> {
        let mut v: Vec<ItemId> = items.to_vec();
        v.sort_by(|a, b| {
            let ka = self.sort_key(*a).unwrap_or("");
            let kb = self.sort_key(*b).unwrap_or("");
            ka.cmp(kb).then(a.cmp(b))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut w = WorldModel::new();
        let a = w.add_item("chocolate fudge");
        let b = w.add_item("lemon sorbet");
        assert_ne!(a, b);
        assert_eq!(w.len(), 2);
        assert_eq!(w.text(a), Some("chocolate fudge"));

        w.set_score(a, 0.95);
        w.set_score(b, 0.02);
        assert_eq!(w.score(a), Some(0.95));
        assert_eq!(w.gold_ranking_by_score(&[b, a]), vec![a, b]);
    }

    #[test]
    fn lexicographic_gold_ranking() {
        let mut w = WorldModel::new();
        let z = w.add_item("zebra");
        let a = w.add_item("apple");
        w.set_sort_key(z, "zebra");
        w.set_sort_key(a, "apple");
        assert_eq!(w.gold_ranking_by_key(&[z, a]), vec![a, z]);
    }

    #[test]
    fn clusters_and_same_cluster() {
        let mut w = WorldModel::new();
        let a = w.add_item("cite A");
        let b = w.add_item("cite A'");
        let c = w.add_item("cite C");
        w.set_cluster(a, 1);
        w.set_cluster(b, 1);
        w.set_cluster(c, 2);
        assert_eq!(w.same_cluster(a, b), Some(true));
        assert_eq!(w.same_cluster(a, c), Some(false));
        let d = w.add_item("unclustered");
        assert_eq!(w.same_cluster(a, d), None);
    }

    #[test]
    fn attrs_and_flags() {
        let mut w = WorldModel::new();
        let a = w.add_item("record");
        w.set_attr(a, "city", "berkeley");
        w.set_flag(a, "is_positive", true);
        assert_eq!(w.attr(a, "city"), Some("berkeley"));
        assert_eq!(w.attr(a, "state"), None);
        assert_eq!(w.flag(a, "is_positive"), Some(true));
        assert_eq!(w.flag(a, "other"), None);
    }

    #[test]
    fn salience_defaults_and_clamps() {
        let mut w = WorldModel::new();
        let a = w.add_item("x");
        assert_eq!(w.salience_of(a), 0.5);
        w.set_salience(a, 7.0);
        assert_eq!(w.salience_of(a), 1.0);
        w.set_salience(a, -1.0);
        assert_eq!(w.salience_of(a), 0.0);
    }

    #[test]
    fn item_ids_sorted() {
        let mut w = WorldModel::new();
        let ids: Vec<ItemId> = (0..10).map(|i| w.add_item(format!("item {i}"))).collect();
        assert_eq!(w.item_ids(), ids);
    }
}
