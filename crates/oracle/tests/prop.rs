//! Property tests for the oracle substrate: tokenizer laws, simulator
//! determinism, cache-key behaviour, and pricing arithmetic.

use std::sync::Arc;

use crowdprompt_oracle::model::ModelProfile;
use crowdprompt_oracle::sim::SimulatedLlm;
use crowdprompt_oracle::task::{SortCriterion, TaskDescriptor};
use crowdprompt_oracle::tokenizer::{count_tokens, truncate_to_tokens};
use crowdprompt_oracle::types::{CompletionRequest, LanguageModel};
use crowdprompt_oracle::world::WorldModel;
use crowdprompt_oracle::{LlmClient, Pricing, Usage};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenizer_monotone_under_concatenation(a in ".{0,200}", b in ".{0,200}") {
        let ab = format!("{a}{b}");
        prop_assert!(count_tokens(&ab) >= count_tokens(&a));
        prop_assert!(count_tokens(&ab) >= count_tokens(&b));
        // And subadditive-ish: concatenation can merge at most one token
        // boundary, never create more than the sum plus one.
        prop_assert!(count_tokens(&ab) <= count_tokens(&a) + count_tokens(&b) + 1);
    }

    #[test]
    fn tokenizer_truncation_respects_budget(text in ".{0,300}", cap in 0u32..64) {
        let (prefix, truncated) = truncate_to_tokens(&text, cap);
        prop_assert!(text.starts_with(prefix));
        if truncated {
            prop_assert!(count_tokens(prefix) <= cap);
        } else {
            prop_assert_eq!(prefix, text.as_str());
        }
    }

    #[test]
    fn pricing_is_linear_in_usage(
        inp in 0u32..100_000,
        out in 0u32..100_000,
        rate_in in 0.0f64..0.1,
        rate_out in 0.0f64..0.1
    ) {
        let p = Pricing::new(rate_in, rate_out);
        let u = Usage { prompt_tokens: inp, completion_tokens: out };
        let double = Usage { prompt_tokens: inp * 2, completion_tokens: out * 2 };
        prop_assert!((p.cost_usd(double) - 2.0 * p.cost_usd(u)).abs() < 1e-9);
        prop_assert!(p.cost_usd(u) >= 0.0);
    }

    #[test]
    fn simulator_is_deterministic_per_seed(
        seed in any::<u64>(),
        scores in prop::collection::vec(0.0f64..1.0, 2..12)
    ) {
        let mut w = WorldModel::new();
        let ids: Vec<_> = scores
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let id = w.add_item(format!("item {i}"));
                w.set_score(id, *s);
                id
            })
            .collect();
        let world = Arc::new(w);
        let make = || SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::clone(&world), seed);
        let req = CompletionRequest::new(
            "compare the first two items",
            TaskDescriptor::Compare {
                left: ids[0],
                right: ids[1],
                criterion: SortCriterion::LatentScore,
            },
        );
        let a = make().complete(&req).unwrap();
        let b = make().complete(&req).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn client_cache_hits_preserve_text_and_usage(seed in any::<u64>()) {
        let mut w = WorldModel::new();
        let id = w.add_item("thing");
        w.set_flag(id, "p", true);
        let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(w), seed);
        let client = LlmClient::new(Arc::new(llm));
        let req = CompletionRequest::new(
            "check",
            TaskDescriptor::CheckPredicate { item: id, predicate: "p".into() },
        );
        let first = client.complete(&req).unwrap();
        let second = client.complete(&req).unwrap();
        prop_assert_eq!(&first.text, &second.text);
        prop_assert_eq!(first.usage, second.usage);
        prop_assert!(!first.cached);
        prop_assert!(second.cached);
    }

    #[test]
    fn sort_responses_never_exceed_input_plus_hallucinations(
        n in 2usize..30,
        seed in any::<u64>()
    ) {
        let mut w = WorldModel::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let id = w.add_item(format!("entry number {i}"));
                w.set_score(id, i as f64 / n as f64);
                id
            })
            .collect();
        let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(w), seed);
        let req = CompletionRequest::new(
            "sort these",
            TaskDescriptor::SortList { items: ids, criterion: SortCriterion::LatentScore },
        );
        let resp = llm.complete(&req).unwrap();
        let lines = resp.text.lines().filter(|l| !l.trim().is_empty()).count();
        // Entries = n - dropped + hallucinated; hallucinations are
        // per-item Bernoulli so the line count is bounded by 2n + 1
        // (for a possible preamble line).
        prop_assert!(lines <= 2 * n + 1, "lines {lines} for n {n}");
    }

    #[test]
    fn fingerprints_distinguish_distinct_compares(
        a in 0u64..50, b in 0u64..50, c in 0u64..50, d in 0u64..50
    ) {
        use crowdprompt_oracle::world::ItemId;
        prop_assume!((a, b) != (c, d));
        let t1 = TaskDescriptor::Compare {
            left: ItemId(a),
            right: ItemId(b),
            criterion: SortCriterion::LatentScore,
        };
        let t2 = TaskDescriptor::Compare {
            left: ItemId(c),
            right: ItemId(d),
            criterion: SortCriterion::LatentScore,
        };
        prop_assert_ne!(t1.fingerprint(), t2.fingerprint());
    }
}
