//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: warm up briefly, pick an iteration
//! count targeting a fixed measurement window, then report the mean
//! nanoseconds per iteration over three samples (minimum taken). Results are
//! printed to stdout and, when the `CRITERION_JSON` environment variable
//! names a file, appended to it as JSON lines — that is how the repo's
//! `BENCH_*.json` baselines are produced.
//!
//! Environment knobs: `CRITERION_JSON=<path>` (JSON-lines output file),
//! `CRITERION_MEASURE_MS=<ms>` (measurement window per sample, default 200),
//! `CRITERION_WARMUP_MS=<ms>` (warmup window, default 50).

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// The benchmark harness root.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    json_path: Option<String>,
}

fn env_ms(key: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 50),
            measure: env_ms("CRITERION_MEASURE_MS", 200),
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            ns_per_iter: None,
            iters: 0,
        };
        f(&mut bencher);
        self.report(name, &bencher);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn report(&self, name: &str, bencher: &Bencher) {
        let ns = bencher.ns_per_iter.unwrap_or(f64::NAN);
        println!(
            "bench: {name:<48} {ns:>14.1} ns/iter  ({} iters)",
            bencher.iters
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"name\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}\n",
                name.replace('"', "'"),
                ns,
                bencher.iters
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Set the upstream sample count (no-op; the shim always takes three
    /// samples — provided for API compatibility).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// How much setup output to batch per measurement (shim: one per iteration,
/// the distinction only affects upstream's allocation strategy).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Measures a closure's throughput.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    ns_per_iter: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` called back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: count iterations that fit the warmup window.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < self.warmup {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / calibration_iters.max(1) as f64;
        let target = ((self.measure.as_secs_f64() / per_iter) as u64).clamp(1, 1_000_000_000);
        // Three samples; keep the fastest (least-noise) estimate.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..target {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / target as f64;
            best = best.min(ns);
        }
        self.ns_per_iter = Some(best);
        self.iters = target * 3 + calibration_iters;
    }

    /// Measure `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        let mut spent = Duration::ZERO;
        while start.elapsed() < self.warmup {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            calibration_iters += 1;
        }
        let per_iter = (spent.as_secs_f64() / calibration_iters.max(1) as f64).max(1e-9);
        let target = ((self.measure.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let inputs: Vec<I> = (0..target).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t.elapsed().as_nanos() as f64 / target as f64;
            best = best.min(ns);
        }
        self.ns_per_iter = Some(best);
        self.iters = target * 3 + calibration_iters;
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, n| {
            b.iter_batched(|| *n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
