//! Deterministic interleaving explorer — a loom-style model checker for
//! small, closed concurrency models, built on real OS threads held in
//! lockstep.
//!
//! # How it works
//!
//! [`explore`] runs a model closure once per *schedule*. Inside the closure,
//! the model uses this crate's [`Mutex`], [`Condvar`], [`spawn`], [`choice`],
//! and [`yield_now`] instead of the std equivalents. Every one of those
//! operations is a *yield point*: the calling thread parks, and a central
//! scheduler picks which thread runs next. Exactly one model thread is ever
//! runnable at a time, so the interleaving is fully determined by the
//! scheduler's decision sequence — and by nothing else.
//!
//! The decision sequence is the schedule. Two sources:
//!
//! * [`Mode::Exhaustive`] — depth-first enumeration with prefix replay:
//!   after each run, the deepest decision with an untried alternative is
//!   bumped and everything before it is replayed verbatim. Visits every
//!   distinct schedule exactly once (up to `max_schedules`).
//! * [`Mode::Random`] — per-iteration SplitMix64-seeded choices; distinct
//!   schedules are counted by hashing the decision trace.
//!
//! # What it detects
//!
//! * **Deadlock / lost wakeup** — no runnable thread while some thread is
//!   still blocked (a notify that raced ahead of its wait parks the waiter
//!   forever; the scheduler sees it immediately, in the very schedule where
//!   it happens).
//! * **Assertion failures** — any panic in a model thread fails the run.
//!
//! Failures panic with the full decision trace; re-run the same model under
//! [`replay`] with that trace to step the exact failing schedule again.
//!
//! # Non-goals
//!
//! Weak-memory effects are out of scope: shared state lives behind the
//! virtual locks, so models check *protocol* races (ordering, wakeups,
//! double-dispatch), not data races the borrow checker already prevents.

use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

// ---------------------------------------------------------------------------
// Public configuration
// ---------------------------------------------------------------------------

/// How schedules are generated.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first enumeration of every distinct schedule.
    Exhaustive,
    /// `iterations` runs with pseudo-random decisions derived from `seed`.
    Random { seed: u64, iterations: usize },
}

/// Exploration budget and strategy.
#[derive(Debug, Clone)]
pub struct Config {
    pub mode: Mode,
    /// Hard cap on schedules run, whatever the mode asks for.
    pub max_schedules: usize,
}

impl Config {
    pub fn exhaustive(max_schedules: usize) -> Self {
        Config {
            mode: Mode::Exhaustive,
            max_schedules,
        }
    }

    pub fn random(seed: u64, iterations: usize) -> Self {
        Config {
            mode: Mode::Random { seed, iterations },
            max_schedules: iterations,
        }
    }
}

/// What an exploration covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Schedules actually run.
    pub schedules: usize,
    /// Distinct decision traces among them (== `schedules` for exhaustive).
    pub distinct: usize,
    /// Exhaustive only: the full schedule space was enumerated within the
    /// budget. Random mode never claims completeness.
    pub complete: bool,
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedLock(usize),
    /// Waiting on condvar `.0`, will reacquire lock `.1` when woken.
    Waiting(usize, usize),
    BlockedJoin(usize),
    Finished,
}

struct Sched {
    threads: Vec<TState>,
    current: Option<usize>,
    /// Decision values to replay before generating fresh ones.
    prefix: Vec<u32>,
    /// All branching decisions made this run: (options, chosen).
    trace: Vec<(u32, u32)>,
    /// SplitMix64 state for fresh decisions; `None` = DFS default (always 0).
    rng: Option<u64>,
    locks: Vec<Option<usize>>, // holder per lock
    n_cvars: usize,
    abort: bool,
    failure: Option<String>,
    all_done: bool,
}

struct SimCore {
    sched: StdMutex<Sched>,
    cv: StdCondvar,
}

/// Sentinel unwind payload for tearing down parked threads after a failure.
struct Abort;

thread_local! {
    static CTX: RefCell<Option<(Arc<SimCore>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<SimCore>, usize) {
    CTX.with(|c| c.borrow().clone())
        // lint: allow(no-unwrap) — usage contract: primitives panic outside a run
        .expect("interleave primitives are only usable inside explore()/replay()")
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Sched {
    /// Draw the next branching decision among `options` alternatives.
    fn decide(&mut self, options: u32) -> u32 {
        if options <= 1 {
            return 0;
        }
        let idx = self.trace.len();
        let chosen = if idx < self.prefix.len() {
            self.prefix[idx].min(options - 1)
        } else if let Some(state) = self.rng.as_mut() {
            (splitmix(state) % u64::from(options)) as u32
        } else {
            0
        };
        self.trace.push((options, chosen));
        chosen
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            let decisions: Vec<u32> = self.trace.iter().map(|&(_, c)| c).collect();
            self.failure = Some(format!(
                "{message}\n  schedule: {decisions:?}\n  replay with interleave::replay(&{decisions:?}, model)"
            ));
        }
        self.abort = true;
    }

    /// Pick the next thread to run, or conclude the run (all finished) or
    /// fail it (deadlock: someone is blocked and nobody is runnable).
    fn pick_next(&mut self) {
        let runnable: Vec<usize> = (0..self.threads.len())
            .filter(|&i| self.threads[i] == TState::Runnable)
            .collect();
        if runnable.is_empty() {
            if self.threads.iter().all(|&t| t == TState::Finished) {
                self.all_done = true;
                self.current = None;
            } else {
                let states: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(i, t)| format!("t{i}={t:?}"))
                    .collect();
                self.fail(format!(
                    "deadlock: no runnable thread ({})",
                    states.join(", ")
                ));
            }
            return;
        }
        let k = self.decide(runnable.len() as u32);
        self.current = Some(runnable[k as usize]);
    }
}

impl SimCore {
    fn new(prefix: Vec<u32>, rng: Option<u64>) -> Self {
        SimCore {
            sched: StdMutex::new(Sched {
                threads: Vec::new(),
                current: None,
                prefix,
                trace: Vec::new(),
                rng,
                locks: Vec::new(),
                n_cvars: 0,
                abort: false,
                failure: None,
                all_done: false,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Yield: apply `transition` to the scheduler state, hand control to the
    /// next chosen thread, and park until this thread is scheduled again.
    fn pause<R>(&self, me: usize, transition: impl FnOnce(&mut Sched) -> R) -> R {
        let mut s = self.locked();
        let out = transition(&mut s);
        s.pick_next();
        self.cv.notify_all();
        loop {
            if s.abort {
                drop(s);
                panic::panic_any(Abort);
            }
            if s.current == Some(me) {
                return out;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Final yield of a thread: mark it finished and hand off without
    /// expecting to be scheduled again.
    fn finish(&self, me: usize) {
        let mut s = self.locked();
        s.threads[me] = TState::Finished;
        for t in s.threads.iter_mut() {
            if *t == TState::BlockedJoin(me) {
                *t = TState::Runnable;
            }
        }
        s.pick_next();
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Model-facing primitives
// ---------------------------------------------------------------------------

/// A scheduler-visible mutex. `lock()` and guard drop are yield points; the
/// scheduler explores every admissible acquisition order.
pub struct Mutex<T> {
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// Safety: the scheduler runs exactly one model thread at a time and tracks
// lock ownership; `data` is only reachable through a held guard.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    core: Arc<SimCore>,
    me: usize,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Take the guard apart without running its drop (and without leaking
    /// the `Arc`): `Condvar::wait` releases the lock itself, atomically with
    /// entering the wait state.
    fn dismantle(self) -> (&'a Mutex<T>, Arc<SimCore>, usize) {
        let this = std::mem::ManuallyDrop::new(self);
        let core = unsafe { std::ptr::read(&this.core) };
        (this.mutex, core, this.me)
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (core, _) = ctx();
        let mut s = core.locked();
        s.locks.push(None);
        Mutex {
            id: s.locks.len() - 1,
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (core, me) = ctx();
        // Visible step before the acquisition attempt: others may interleave.
        core.pause(me, |_| {});
        loop {
            let acquired = {
                let mut s = core.locked();
                if s.locks[self.id].is_none() {
                    s.locks[self.id] = Some(me);
                    true
                } else {
                    false
                }
            };
            if acquired {
                return MutexGuard {
                    mutex: self,
                    core,
                    me,
                };
            }
            core.pause(me, |s| s.threads[me] = TState::BlockedLock(self.id));
        }
    }
}

fn release_lock(s: &mut Sched, lock: usize) {
    s.locks[lock] = None;
    for t in s.threads.iter_mut() {
        if *t == TState::BlockedLock(lock) {
            *t = TState::Runnable;
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let id = self.mutex.id;
        // Never park or reschedule during an unwind (assertion failure while
        // holding the guard): just release the lock and keep the scheduler
        // frozen until the wrapper records the panic — keeps the failure's
        // decision trace deterministic for replay.
        if std::thread::panicking() {
            let mut s = self.core.locked();
            release_lock(&mut s, id);
            return;
        }
        self.core.pause(self.me, |s| release_lock(s, id));
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

/// A scheduler-visible condition variable. `notify_one` with several waiters
/// is itself a branching decision: every waiter-selection is explored.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    pub fn new() -> Self {
        let (core, _) = ctx();
        let mut s = core.locked();
        s.n_cvars += 1;
        Condvar { id: s.n_cvars - 1 }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning. No spurious wakeups: a parked
    /// waiter runs again only after a notify — which is exactly what makes
    /// lost-wakeup bugs visible as deadlocks.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let cv = self.id;
        let (mutex, core, me) = guard.dismantle();
        let lock = mutex.id;
        core.pause(me, |s| {
            release_lock(s, lock);
            s.threads[me] = TState::Waiting(cv, lock);
        });
        // Notified and scheduled: contend for the lock again.
        loop {
            let acquired = {
                let mut s = core.locked();
                if s.locks[lock].is_none() {
                    s.locks[lock] = Some(me);
                    true
                } else {
                    false
                }
            };
            if acquired {
                return MutexGuard { mutex, core, me };
            }
            core.pause(me, |s| s.threads[me] = TState::BlockedLock(lock));
        }
    }

    /// Wake one waiter (scheduler's choice among them); a notify with no
    /// waiter is lost, exactly like the real primitive.
    pub fn notify_one(&self) {
        let cv = self.id;
        let (core, me) = ctx();
        core.pause(me, |s| {
            let waiters: Vec<usize> = (0..s.threads.len())
                .filter(|&i| matches!(s.threads[i], TState::Waiting(c, _) if c == cv))
                .collect();
            if !waiters.is_empty() {
                let k = s.decide(waiters.len() as u32);
                s.threads[waiters[k as usize]] = TState::Runnable;
            }
        });
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        let cv = self.id;
        let (core, me) = ctx();
        core.pause(me, |s| {
            for t in s.threads.iter_mut() {
                if matches!(*t, TState::Waiting(c, _) if c == cv) {
                    *t = TState::Runnable;
                }
            }
        });
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Handle to a model thread spawned with [`spawn`].
pub struct JoinHandle {
    id: usize,
}

impl JoinHandle {
    /// Park until the thread finishes. Unlike `std`, a panicking child fails
    /// the whole schedule directly, so `join` returns nothing.
    pub fn join(self) {
        let (core, me) = ctx();
        let target = self.id;
        loop {
            let finished = {
                let s = core.locked();
                s.threads[target] == TState::Finished
            };
            if finished {
                return;
            }
            core.pause(me, |s| s.threads[me] = TState::BlockedJoin(target));
        }
    }
}

struct OsHandles {
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static OS_HANDLES: RefCell<Option<Arc<OsHandles>>> = const { RefCell::new(None) };
}

/// Spawn a model thread. A yield point: the new thread is immediately
/// schedulable, and the scheduler decides who runs first.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (core, me) = ctx();
    let registry = OS_HANDLES
        .with(|h| h.borrow().clone())
        // lint: allow(no-unwrap) — usage contract: spawn panics outside a run
        .expect("spawn outside explore()");
    let id = {
        let mut s = core.locked();
        s.threads.push(TState::Runnable);
        s.threads.len() - 1
    };
    let child_core = Arc::clone(&core);
    let child_registry = Arc::clone(&registry);
    let os = std::thread::spawn(move || {
        run_model_thread(child_core, child_registry, id, f);
    });
    registry
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);
    core.pause(me, |_| {});
    JoinHandle { id }
}

/// An explicit visible step with no state change — use to mark points where
/// the real code does externally observable work (a backend call, an fsync).
pub fn yield_now() {
    let (core, me) = ctx();
    core.pause(me, |_| {});
}

/// A model-level branching decision with `options` alternatives (crash
/// injection, message reordering, ...). Explored like any scheduling choice.
pub fn choice(options: u32) -> u32 {
    let (core, me) = ctx();
    core.pause(me, |s| s.decide(options))
}

fn run_model_thread(core: Arc<SimCore>, registry: Arc<OsHandles>, id: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&core), id)));
    OS_HANDLES.with(|h| *h.borrow_mut() = Some(registry));
    // Park until scheduled for the first time (thread 0 starts scheduled).
    {
        let mut s = core.locked();
        while !s.abort && s.current != Some(id) {
            s = core.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.abort {
            return;
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    match result {
        Ok(()) => core.finish(id),
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_none() {
                let message = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("model thread panicked");
                let mut s = core.locked();
                s.threads[id] = TState::Finished;
                s.fail(format!("thread t{id} panicked: {message}"));
                core.cv.notify_all();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

/// Run one schedule; returns the branching trace, or the failure message.
fn run_one(
    prefix: Vec<u32>,
    rng: Option<u64>,
    f: &(impl Fn() + Send + Sync),
) -> Result<Vec<(u32, u32)>, String> {
    let core = Arc::new(SimCore::new(prefix, rng));
    let registry = Arc::new(OsHandles {
        handles: StdMutex::new(Vec::new()),
    });
    {
        let mut s = core.locked();
        s.threads.push(TState::Runnable);
        s.current = Some(0);
    }
    // The model closure runs as thread 0 on a scoped thread, so `f` needs
    // only to outlive this call, not 'static.
    std::thread::scope(|scope| {
        let core0 = Arc::clone(&core);
        let registry0 = Arc::clone(&registry);
        scope.spawn(move || run_model_thread(core0, registry0, 0, f));
        // Wait for the run to conclude: all threads finished, or a failure.
        {
            let mut s = core.locked();
            while !s.all_done && !s.abort {
                s = core.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
        // Release any still-parked threads so their OS threads exit.
        core.cv.notify_all();
        let handles =
            std::mem::take(&mut *registry.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    });
    let s = core.locked();
    match &s.failure {
        Some(message) => Err(message.clone()),
        None => Ok(s.trace.clone()),
    }
}

fn trace_hash(trace: &[(u32, u32)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(options, chosen) in trace {
        for part in [options, chosen] {
            h ^= u64::from(part);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Explore the model's schedule space per `config`. Panics (with the
/// decision trace of the failing schedule) on the first deadlock, lost
/// wakeup, or model assertion failure.
pub fn explore(config: Config, f: impl Fn() + Send + Sync) -> Report {
    match config.mode {
        Mode::Exhaustive => {
            let mut prefix: Vec<u32> = Vec::new();
            let mut schedules = 0;
            loop {
                if schedules >= config.max_schedules {
                    return Report {
                        schedules,
                        distinct: schedules,
                        complete: false,
                    };
                }
                let trace = match run_one(prefix.clone(), None, &f) {
                    Ok(trace) => trace,
                    Err(message) => panic!("interleave: schedule failed\n{message}"),
                };
                schedules += 1;
                // DFS backtrack: bump the deepest decision with an untried
                // alternative; drop everything after it.
                let Some(deepest) = trace
                    .iter()
                    .rposition(|&(options, chosen)| chosen + 1 < options)
                else {
                    return Report {
                        schedules,
                        distinct: schedules,
                        complete: true,
                    };
                };
                prefix = trace[..deepest].iter().map(|&(_, c)| c).collect();
                prefix.push(trace[deepest].1 + 1);
            }
        }
        Mode::Random { seed, iterations } => {
            let mut seen = HashSet::new();
            let mut schedules = 0;
            for i in 0..iterations.min(config.max_schedules) {
                let mut stream = seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                let rng = splitmix(&mut stream);
                let trace = match run_one(Vec::new(), Some(rng), &f) {
                    Ok(trace) => trace,
                    Err(message) => panic!(
                        "interleave: schedule failed (seed {seed}, iteration {i})\n{message}"
                    ),
                };
                schedules += 1;
                seen.insert(trace_hash(&trace));
            }
            Report {
                schedules,
                distinct: seen.len(),
                complete: false,
            }
        }
    }
}

/// Re-run exactly one schedule from a decision trace printed by a failure.
/// Panics if that schedule still fails — run it under a debugger or with
/// added logging to watch the failing interleaving step by step.
pub fn replay(decisions: &[u32], f: impl Fn() + Send + Sync) {
    if let Err(message) = run_one(decisions.to_vec(), None, &f) {
        panic!("interleave: replayed schedule failed\n{message}");
    }
}

/// True when the environment pins a smaller exploration budget (CI sets
/// `INTERLEAVE_SCHEDULES` to keep wall time bounded).
pub fn budget(default: usize) -> usize {
    std::env::var("INTERLEAVE_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter through separate read and
    /// write steps *without* holding the lock across them: the classic lost
    /// update. The explorer must find a schedule where the final count is 1.
    #[test]
    fn exhaustive_finds_lost_update() {
        let report = explore(Config::exhaustive(50_000), || {
            let counter = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                handles.push(spawn(move || {
                    let read = *counter.lock();
                    yield_now(); // lock dropped between read and write
                    *counter.lock() = read + 1;
                }));
            }
            for h in handles {
                h.join();
            }
            let count = *counter.lock();
            assert!((1..=2).contains(&count));
        });
        assert!(report.complete, "small model should enumerate fully");
        assert!(report.schedules > 10, "expected a nontrivial space");

        // Assert the lost update is actually reachable: a model that
        // insists on count == 2 must fail under exploration.
        let result = panic::catch_unwind(|| {
            explore(Config::exhaustive(50_000), || {
                let counter = Arc::new(Mutex::new(0u32));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let counter = Arc::clone(&counter);
                    handles.push(spawn(move || {
                        let read = *counter.lock();
                        yield_now();
                        *counter.lock() = read + 1;
                    }));
                }
                for h in handles {
                    h.join();
                }
                assert_eq!(*counter.lock(), 2, "lost update");
            })
        });
        let message = match result {
            Ok(_) => panic!("explorer missed the lost update"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        assert!(message.contains("lost update"), "wrong failure: {message}");
        assert!(message.contains("schedule:"), "no trace in: {message}");
    }

    /// Holding the lock across the read-modify-write closes the race: every
    /// schedule ends at 2, and exploration completes cleanly.
    #[test]
    fn exhaustive_passes_correct_counter() {
        let report = explore(Config::exhaustive(10_000), || {
            let counter = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                handles.push(spawn(move || {
                    let mut guard = counter.lock();
                    *guard += 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.complete);
    }

    /// notify-before-wait is a lost wakeup: the waiter parks forever and the
    /// explorer reports a deadlock naming the waiting thread.
    #[test]
    fn lost_wakeup_is_reported_as_deadlock() {
        let result = panic::catch_unwind(|| {
            explore(Config::exhaustive(10_000), || {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let waiter = {
                    let pair = Arc::clone(&pair);
                    spawn(move || {
                        let (flag, cv) = &*pair;
                        let guard = flag.lock();
                        // BUG: waits without checking the predicate first;
                        // if the notify already fired, this parks forever.
                        let guard = cv.wait(guard);
                        assert!(*guard);
                    })
                };
                let notifier = {
                    let pair = Arc::clone(&pair);
                    spawn(move || {
                        let (flag, cv) = &*pair;
                        *flag.lock() = true;
                        cv.notify_one();
                    })
                };
                notifier.join();
                waiter.join();
            })
        });
        let message = match result {
            Ok(_) => panic!("explorer missed the lost wakeup"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        assert!(message.contains("deadlock"), "wrong failure: {message}");
        assert!(message.contains("Waiting"), "no waiter in: {message}");
    }

    /// The same protocol written correctly (while-loop recheck) has no lost
    /// wakeup: exploration completes with zero failures.
    #[test]
    fn correct_wait_loop_has_no_lost_wakeup() {
        let report = explore(Config::exhaustive(10_000), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiter = {
                let pair = Arc::clone(&pair);
                spawn(move || {
                    let (flag, cv) = &*pair;
                    let mut guard = flag.lock();
                    while !*guard {
                        guard = cv.wait(guard);
                    }
                })
            };
            let notifier = {
                let pair = Arc::clone(&pair);
                spawn(move || {
                    let (flag, cv) = &*pair;
                    *flag.lock() = true;
                    cv.notify_one();
                })
            };
            notifier.join();
            waiter.join();
        });
        assert!(report.complete);
    }

    /// Random mode reaches many distinct schedules and stays within budget.
    #[test]
    fn random_mode_counts_distinct_schedules() {
        let report = explore(Config::random(42, 300), || {
            let counter = Arc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let counter = Arc::clone(&counter);
                handles.push(spawn(move || {
                    *counter.lock() += 1;
                    yield_now();
                    *counter.lock() += 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 6);
        });
        assert_eq!(report.schedules, 300);
        assert!(report.distinct > 50, "only {} distinct", report.distinct);
        assert!(!report.complete);
    }

    /// `choice` folds model-level branching (e.g. crash injection) into the
    /// explored space, and failing schedules replay deterministically.
    #[test]
    fn choice_branches_are_explored_and_replayable() {
        let model = || {
            let cell = Arc::new(Mutex::new(0u32));
            let writer = {
                let cell = Arc::clone(&cell);
                spawn(move || {
                    let crash = choice(2) == 1;
                    if !crash {
                        *cell.lock() = 7;
                    }
                })
            };
            writer.join();
            let value = *cell.lock();
            assert!(value == 0 || value == 7);
        };
        let report = explore(Config::exhaustive(10_000), model);
        assert!(report.complete);
        assert!(report.schedules >= 2, "both crash branches must run");

        // Extract a failing trace, then replay it and expect the same fail.
        let result = panic::catch_unwind(|| {
            explore(Config::exhaustive(10_000), || {
                let v = choice(3);
                assert!(v != 2, "branch 2 is poison");
            })
        });
        let message = match result {
            Ok(_) => panic!("choice branch not explored"),
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
        };
        let decisions = parse_schedule(&message);
        let replayed = panic::catch_unwind(|| {
            replay(&decisions, || {
                let v = choice(3);
                assert!(v != 2, "branch 2 is poison");
            })
        });
        assert!(replayed.is_err(), "replay must reproduce the failure");
    }

    /// notify_one with several waiters branches on which waiter wakes.
    #[test]
    fn notify_one_explores_waiter_selection() {
        let report = explore(Config::exhaustive(50_000), || {
            let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let pair = Arc::clone(&pair);
                handles.push(spawn(move || {
                    let (slots, cv) = &*pair;
                    let mut guard = slots.lock();
                    while *guard == 0 {
                        guard = cv.wait(guard);
                    }
                    *guard -= 1;
                }));
            }
            let producer = {
                let pair = Arc::clone(&pair);
                spawn(move || {
                    let (slots, cv) = &*pair;
                    for _ in 0..2 {
                        *slots.lock() += 1;
                        cv.notify_one();
                    }
                })
            };
            producer.join();
            for h in handles {
                h.join();
            }
            let (slots, _) = &*pair;
            assert_eq!(*slots.lock(), 0);
        });
        assert!(report.schedules > 100, "waiter selection space too small");
    }

    fn parse_schedule(message: &str) -> Vec<u32> {
        let start = message.find("schedule: [").expect("trace in message") + "schedule: [".len();
        let end = message[start..].find(']').expect("closing bracket") + start;
        message[start..end]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("decision"))
            .collect()
    }
}
