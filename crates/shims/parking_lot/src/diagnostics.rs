//! Lock diagnostics, compiled only under `--cfg lock_diagnostics`.
//!
//! Every shim lock is tagged at construction with its creation site (via
//! `#[track_caller]`, so the tag names the `Mutex::new` call in *user*
//! code) and lazily assigned a process-wide numeric id on first
//! acquisition. Acquisitions maintain:
//!
//! * a **per-thread held-lock stack** — which shim locks this thread holds
//!   right now, each with the site that acquired it;
//! * a **process-wide acquisition-order graph** — a directed edge `A → B`
//!   the first time any thread acquires `B` while holding `A`, with the
//!   acquiring site as witness.
//!
//! Detectors fire when an acquisition would create a cycle in that graph
//! (lock-order inversion for 2-cycles, potential deadlock for longer
//! ones), when a thread reacquires a lock it already holds, or when a
//! thread holding any lock parks on a [`crate::Condvar`] or crosses a
//! [`crate::blocking_region`] marker. A finding renders a `rustc`-style
//! diagnostic and panics, so the test (or chaos schedule) that produced
//! the ordering fails loudly; [`expect_violations`] suppresses the panic
//! for negative tests that *prove* a detector fires.
//!
//! Findings are ordering-based, not occurrence-based: the inversion is
//! reported even when this run's interleaving happened to win the race.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::panic::Location;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// What a detector found. See the [module docs](self) for the detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Two locks acquired in opposite orders on different code paths.
    OrderInversion,
    /// An acquisition closing a longer cycle in the order graph.
    OrderCycle,
    /// A thread reacquiring a lock it already holds (including
    /// `RwLock` read-after-read, which deadlocks against a queued writer).
    SelfReacquire,
    /// A lock held while parking on a condvar or crossing a
    /// [`crate::blocking_region`] boundary.
    HeldAcrossBlocking,
}

impl FindingKind {
    fn code(self) -> &'static str {
        match self {
            FindingKind::OrderInversion => "lock-order-inversion",
            FindingKind::OrderCycle => "lock-order-cycle",
            FindingKind::SelfReacquire => "lock-self-reacquire",
            FindingKind::HeldAcrossBlocking => "lock-held-across-blocking",
        }
    }
}

/// One detector hit: the kind plus a fully rendered `rustc`-style report.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which detector fired.
    pub kind: FindingKind,
    /// The rendered diagnostic (multi-line, `error[code]: ... --> file:line:col`).
    pub message: String,
}

/// Per-lock metadata: creation site plus the lazily assigned id.
pub(crate) struct LockMeta {
    site: &'static Location<'static>,
    id: AtomicU32,
}

impl LockMeta {
    #[track_caller]
    pub(crate) const fn new() -> Self {
        LockMeta {
            site: Location::caller(),
            id: AtomicU32::new(0),
        }
    }
}

/// How a lock is being acquired, for diagnostics text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Mutex,
    Read,
    Write,
}

impl Kind {
    fn describe(self) -> &'static str {
        match self {
            Kind::Mutex => "mutex",
            Kind::Read => "rwlock (read)",
            Kind::Write => "rwlock (write)",
        }
    }
}

/// First-witness data for one order-graph edge `from → to`.
struct EdgeWitness {
    acquire_site: &'static Location<'static>,
}

#[derive(Default)]
struct Registry {
    /// Lock id (1-based) → creation site.
    sites: Vec<&'static Location<'static>>,
    /// Order-graph adjacency (kept acyclic: cycle-closing edges are
    /// reported, not inserted, so traversals stay cheap).
    adj: HashMap<u32, Vec<u32>>,
    /// First witness per recorded edge.
    edges: HashMap<(u32, u32), EdgeWitness>,
    /// All findings, in discovery order (deduplicated by message).
    findings: Vec<Finding>,
    seen: HashSet<String>,
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Registry::default()))
}

#[derive(Clone, Copy)]
struct Held {
    id: u32,
    kind: Kind,
    site: &'static Location<'static>,
}

thread_local! {
    /// The shim locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// When `Some`, findings on this thread are collected instead of
    /// panicking (see [`expect_violations`]).
    static EXPECTING: Cell<bool> = const { Cell::new(false) };
    static COLLECTED: RefCell<Vec<Finding>> = const { RefCell::new(Vec::new()) };
}

/// Everything recorded so far, across all threads.
pub fn findings() -> Vec<Finding> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .findings
        .clone()
}

/// Run `f` with findings on this thread *collected* rather than fatal,
/// returning `f`'s result and the findings it produced. The negative-test
/// entry point: prove a detector fires without failing the test.
///
/// [`FindingKind::SelfReacquire`] still panics inside the scope — carrying
/// on would genuinely deadlock on the relock; catch the panic and inspect
/// [`findings`] instead.
pub fn expect_violations<R>(f: impl FnOnce() -> R) -> (R, Vec<Finding>) {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            EXPECTING.with(|e| e.set(self.0));
        }
    }
    let previous = EXPECTING.with(|e| e.replace(true));
    COLLECTED.with(|c| c.borrow_mut().clear());
    let _reset = Reset(previous);
    let result = f();
    let collected = COLLECTED.with(|c| std::mem::take(&mut *c.borrow_mut()));
    (result, collected)
}

pub(crate) mod imp {
    use super::*;
    pub(crate) use super::{Kind, LockMeta};

    fn lock_id(meta: &LockMeta) -> u32 {
        match meta.id.load(Ordering::Acquire) {
            0 => {
                let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
                // Double-checked under the registry lock: another thread
                // may have registered this lock while we waited.
                let current = meta.id.load(Ordering::Acquire);
                if current != 0 {
                    return current;
                }
                reg.sites.push(meta.site);
                let id = reg.sites.len() as u32;
                meta.id.store(id, Ordering::Release);
                id
            }
            id => id,
        }
    }

    fn site_of(reg: &Registry, id: u32) -> &'static Location<'static> {
        reg.sites[(id - 1) as usize]
    }

    /// Record (and act on) one finding. Panics with the rendered report
    /// unless the thread is inside [`expect_violations`] — except
    /// self-reacquisition, which must panic to avoid a real deadlock.
    fn report(kind: FindingKind, message: String) {
        let fresh = {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            let fresh = reg.seen.insert(message.clone());
            if fresh {
                reg.findings.push(Finding {
                    kind,
                    message: message.clone(),
                });
            }
            fresh
        };
        let expecting = EXPECTING.with(|e| e.get());
        if expecting {
            if fresh {
                COLLECTED.with(|c| {
                    c.borrow_mut().push(Finding {
                        kind,
                        message: message.clone(),
                    })
                });
            }
            if kind != FindingKind::SelfReacquire {
                return;
            }
        }
        panic!("{message}");
    }

    /// Shortest path `from →* to` over the (acyclic) order graph, as lock
    /// ids including both endpoints; `None` if unreachable.
    fn path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut queue = std::collections::VecDeque::from([from]);
        let mut parent: HashMap<u32, u32> = HashMap::new();
        while let Some(node) = queue.pop_front() {
            if node == to {
                let mut chain = vec![to];
                let mut at = to;
                while at != from {
                    at = parent[&at];
                    chain.push(at);
                }
                chain.reverse();
                return Some(chain);
            }
            for &next in reg.adj.get(&node).into_iter().flatten() {
                if next != from && !parent.contains_key(&next) {
                    parent.insert(next, node);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Pre-acquisition checks for a *blocking* acquire: self-reacquisition
    /// and order-graph cycles. Called before the underlying lock call so a
    /// certain deadlock panics instead of hanging.
    #[track_caller]
    pub(crate) fn before_blocking_acquire(meta: &LockMeta, kind: Kind) {
        let id = lock_id(meta);
        let acquire_site = Location::caller();
        let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
        if let Some(prior) = held.iter().find(|h| h.id == id) {
            report(
                FindingKind::SelfReacquire,
                format!(
                    "error[{code}]: thread reacquires the {what} it already holds \
                     (created at {created}) — this deadlocks (or, for rwlock \
                     reads, deadlocks against any queued writer)\n  \
                     --> {site} (reacquisition)\n  \
                     = note: first acquired as {prior_kind} at {prior_site}",
                    code = FindingKind::SelfReacquire.code(),
                    what = kind.describe(),
                    created = meta.site,
                    site = acquire_site,
                    prior_kind = prior.kind.describe(),
                    prior_site = prior.site,
                ),
            );
        }
        if held.is_empty() {
            return;
        }
        let mut reports: Vec<(FindingKind, String)> = Vec::new();
        {
            let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
            for h in &held {
                if reg.edges.contains_key(&(h.id, id)) {
                    continue;
                }
                // Would `h.id → id` close a cycle? Existing paths only run
                // over previously accepted (acyclic) edges.
                if let Some(chain) = path(&reg, id, h.id) {
                    let kind_found = if chain.len() == 2 {
                        FindingKind::OrderInversion
                    } else {
                        FindingKind::OrderCycle
                    };
                    let witness = reg.edges.get(&(chain[0], chain[1])).map(|e| e.acquire_site);
                    let cycle: Vec<String> = chain
                        .iter()
                        .map(|&n| format!("lock@{}", site_of(&reg, n)))
                        .collect();
                    let mut message = format!(
                        "error[{code}]: acquiring the {what} created at {created} \
                         while holding the {held_kind} created at {held_site} \
                         inverts the established order {cycle} -> back to start \
                         — a potential deadlock\n  \
                         --> {site} (this acquisition)\n  \
                         = note: holder acquired its lock at {holder_at}",
                        code = kind_found.code(),
                        what = kind.describe(),
                        created = meta.site,
                        held_kind = h.kind.describe(),
                        held_site = site_of(&reg, h.id),
                        cycle = cycle.join(" -> "),
                        site = acquire_site,
                        holder_at = h.site,
                    );
                    if let Some(w) = witness {
                        message
                            .push_str(&format!("\n  = note: opposite order first observed at {w}"));
                    }
                    reports.push((kind_found, message));
                } else {
                    reg.edges.insert((h.id, id), EdgeWitness { acquire_site });
                    reg.adj.entry(h.id).or_default().push(id);
                }
            }
        }
        for (kind_found, message) in reports {
            report(kind_found, message);
        }
    }

    /// Record a successful acquisition on the thread's held stack.
    #[track_caller]
    pub(crate) fn after_acquire(meta: &LockMeta, kind: Kind) {
        let id = lock_id(meta);
        let site = Location::caller();
        HELD.with(|h| h.borrow_mut().push(Held { id, kind, site }));
    }

    /// Drop bookkeeping: remove the newest held entry for this lock.
    /// Guards may drop in any order, so this searches from the top.
    pub(crate) fn on_release(meta: &LockMeta) {
        let id = meta.id.load(Ordering::Acquire);
        if id == 0 {
            return;
        }
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(at) = held.iter().rposition(|e| e.id == id) {
                held.remove(at);
            }
        });
    }

    /// Parking on a condvar releases the waited mutex but keeps every
    /// other guard alive across the sleep — report those, then unwind the
    /// waited lock from the held stack (the reacquire re-adds it).
    #[track_caller]
    pub(crate) fn before_condvar_wait(meta: &LockMeta) {
        let id = lock_id(meta);
        let wait_site = Location::caller();
        let others: Vec<Held> =
            HELD.with(|h| h.borrow().iter().copied().filter(|e| e.id != id).collect());
        if !others.is_empty() {
            let listing: Vec<String> = others
                .iter()
                .map(|h| format!("{} acquired at {}", h.kind.describe(), h.site))
                .collect();
            report(
                FindingKind::HeldAcrossBlocking,
                format!(
                    "error[{code}]: Condvar::wait parks this thread while it \
                     still holds {n} other shim lock(s) — a convoy and \
                     lost-wakeup shape\n  \
                     --> {site} (the wait)\n  \
                     = note: held: {listing}",
                    code = FindingKind::HeldAcrossBlocking.code(),
                    n = others.len(),
                    site = wait_site,
                    listing = listing.join("; "),
                ),
            );
        }
        on_release(meta);
    }

    /// [`crate::blocking_region`] entry: report every held lock.
    pub(crate) fn check_blocking_region(what: &str, site: &'static Location<'static>) {
        let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
        if held.is_empty() {
            return;
        }
        let listing: Vec<String> = held
            .iter()
            .map(|h| format!("{} acquired at {}", h.kind.describe(), h.site))
            .collect();
        report(
            FindingKind::HeldAcrossBlocking,
            format!(
                "error[{code}]: entering blocking region `{what}` while \
                 holding {n} shim lock(s) — guards must not span backend \
                 dispatch or sleeps\n  \
                 --> {site} (the boundary)\n  \
                 = note: held: {listing}",
                code = FindingKind::HeldAcrossBlocking.code(),
                n = held.len(),
                site = site,
                listing = listing.join("; "),
            ),
        );
    }
}
