//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate — and, since PR 8, the workspace's **sync facade**: every
//! `Mutex`/`RwLock`/`Condvar` in library code goes through these wrappers
//! (`tools/repolint` rule `sync-facade` enforces it), so one build flag
//! instruments every lock in the process.
//!
//! # Two builds
//!
//! * **Default build** — thin non-poisoning wrappers over `std::sync`
//!   (a poisoned std lock is recovered transparently, matching
//!   parking_lot's behaviour of never poisoning). No bookkeeping, no
//!   extra fields: behaviour is byte-identical to the pre-diagnostics
//!   shim.
//! * **`--cfg lock_diagnostics`** (set via `RUSTFLAGS`) — every lock is
//!   tagged with its creation site, every acquisition updates a per-thread
//!   held-lock stack and a process-wide acquisition-order graph, and four
//!   detectors fire `rustc`-style diagnostics (then panic, so CI fails the
//!   offending test) on:
//!
//!   1. **lock-order inversion** — `A` then `B` on one thread, `B` then
//!      `A` on another (a 2-cycle in the order graph);
//!   2. **lock-order cycle** — any longer cycle (`A → B → C → A`), the
//!      general potential-deadlock shape;
//!   3. **self-reacquisition** — relocking a lock the thread already
//!      holds (including `RwLock` read-after-read, which deadlocks
//!      against a queued writer);
//!   4. **guard held across a blocking boundary** — holding any shim lock
//!      while entering a region marked with [`blocking_region`] (backend
//!      dispatch, retry sleeps, hedge waits) or while parking on
//!      [`Condvar::wait`].
//!
//!   Negative tests (`tests/lock_diagnostics.rs` at the workspace root)
//!   prove each detector fires; the full test + chaos suites run under
//!   the flag in CI and must report zero findings.
//!
//! Detection is *order-graph based*, not occurrence based: an inversion is
//! reported even when the interleaving that would actually deadlock never
//! happens in the run — that is the point of running it in CI.

#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

#[cfg(lock_diagnostics)]
pub mod diagnostics;

#[cfg(lock_diagnostics)]
use diagnostics::imp as diag;

/// Marks a blocking boundary: backend dispatch, a retry/backoff sleep, a
/// hedge wait — anywhere a thread may stall for backend-scale time.
///
/// Under `--cfg lock_diagnostics`, entering a blocking region while
/// holding **any** shim lock is reported (holding a lock across a backend
/// call serializes every peer on backend latency, and holding one across
/// a sleep is a convoy generator). In the default build this compiles to
/// an empty inline function — zero cost, zero behaviour change.
#[cfg(not(lock_diagnostics))]
#[inline(always)]
pub fn blocking_region(_what: &str) {}

/// Marks a blocking boundary (diagnostics build): reports any shim lock
/// held by the current thread. See the default-build docs.
#[cfg(lock_diagnostics)]
#[track_caller]
pub fn blocking_region(what: &str) {
    diag::check_blocking_region(what, core::panic::Location::caller());
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock that never poisons.
pub struct Mutex<T: ?Sized> {
    #[cfg(lock_diagnostics)]
    meta: diag::LockMeta,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(lock_diagnostics)]
            meta: diag::LockMeta::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lock_diagnostics)]
        diag::before_blocking_acquire(&self.meta, diag::Kind::Mutex);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Mutex);
        MutexGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner: Some(inner),
        }
    }

    /// Acquire the lock if it is free right now; `None` otherwise. Never
    /// blocks, so it records no lock-order edges under diagnostics (a
    /// `try_lock` cannot deadlock) — but a returned guard does join the
    /// held-lock stack.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Mutex);
        Some(MutexGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[cfg_attr(lock_diagnostics, track_caller)]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A guard for [`Mutex::lock`]; derefs to the protected value.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(lock_diagnostics)]
    meta: &'a diag::LockMeta,
    // `Option` so `Condvar::wait` can move the std guard out through
    // `&mut`; it is `None` only transiently inside `wait`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside Condvar::wait"),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside Condvar::wait"),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(lock_diagnostics)]
        diag::on_release(self.meta);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    #[cfg(lock_diagnostics)]
    meta: diag::LockMeta,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock holding `value`.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(lock_diagnostics)]
            meta: diag::LockMeta::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lock_diagnostics)]
        diag::before_blocking_acquire(&self.meta, diag::Kind::Read);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Read);
        RwLockReadGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner,
        }
    }

    /// Acquire an exclusive write guard.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lock_diagnostics)]
        diag::before_blocking_acquire(&self.meta, diag::Kind::Write);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Write);
        RwLockWriteGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner,
        }
    }

    /// Acquire a read guard if no writer holds or is blocked on the lock;
    /// `None` otherwise. Never blocks; records no order edges.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Read);
        Some(RwLockReadGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner,
        })
    }

    /// Acquire the write guard if the lock is entirely free; `None`
    /// otherwise. Never blocks; records no order edges.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(lock_diagnostics)]
        diag::after_acquire(&self.meta, diag::Kind::Write);
        Some(RwLockWriteGuard {
            #[cfg(lock_diagnostics)]
            meta: &self.meta,
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[cfg_attr(lock_diagnostics, track_caller)]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(lock_diagnostics)]
    meta: &'a diag::LockMeta,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(lock_diagnostics)]
        diag::on_release(self.meta);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(lock_diagnostics)]
    meta: &'a diag::LockMeta,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(lock_diagnostics)]
        diag::on_release(self.meta);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// The outcome of a [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed (the predicate
    /// should be re-checked rather than assumed signalled).
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's guard-by-reference API: `wait`
/// takes `&mut MutexGuard` and reacquires the same lock before returning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wake one thread blocked in [`Condvar::wait`] on this condvar.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every thread blocked in [`Condvar::wait`] on this condvar.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically release `guard`'s mutex and park until notified, then
    /// reacquire the mutex. Spurious wakeups are possible — wait in a
    /// predicate loop.
    ///
    /// Under `--cfg lock_diagnostics`, parking while holding any *other*
    /// shim lock is reported (sleeping with a lock held is the
    /// lost-wakeup/convoy shape the explorer hunts), and the reacquire is
    /// re-checked against the order graph like any acquisition.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(lock_diagnostics)]
        diag::before_condvar_wait(guard.meta);
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard emptied outside Condvar::wait"),
        };
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(lock_diagnostics)]
        diag::after_acquire(guard.meta, diag::Kind::Mutex);
    }

    /// Like [`Condvar::wait`] with an upper bound on the park time. The
    /// mutex is reacquired before returning in both outcomes.
    #[cfg_attr(lock_diagnostics, track_caller)]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(lock_diagnostics)]
        diag::before_condvar_wait(guard.meta);
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard emptied outside Condvar::wait"),
        };
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        #[cfg(lock_diagnostics)]
        diag::after_acquire(guard.meta, diag::Kind::Mutex);
        WaitTimeoutResult(result.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 5);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    // -- try_lock / try_write / try_read contention semantics --------------

    #[test]
    fn try_lock_fails_while_held_and_succeeds_after_release() {
        let m = Mutex::new(7);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held mutex must refuse try_lock");
        }
        let g = m.try_lock().expect("released mutex must grant try_lock");
        assert_eq!(*g, 7);
    }

    #[test]
    fn try_write_fails_under_any_reader_try_read_fails_under_writer() {
        let l = RwLock::new(0u32);
        {
            let _r = l.read();
            assert!(l.try_write().is_none(), "reader blocks try_write");
            assert!(l.try_read().is_some(), "a second reader is always admitted");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "writer blocks try_read");
            assert!(l.try_write().is_none(), "writer blocks try_write");
        }
        assert!(l.try_write().is_some(), "free lock grants try_write");
    }

    #[test]
    fn try_lock_contention_across_threads_admits_exactly_one() {
        let m = Arc::new(Mutex::new(()));
        let holders = Arc::new(AtomicUsize::new(0));
        let g = m.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let holders = Arc::clone(&holders);
                std::thread::spawn(move || {
                    if m.try_lock().is_some() {
                        holders.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(holders.load(Ordering::SeqCst), 0, "all contenders refused");
        drop(g);
        assert!(m.try_lock().is_some());
    }

    // -- Condvar ------------------------------------------------------------

    #[test]
    fn condvar_wait_observes_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                true
            })
        };
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out_without_notification() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let started = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(result.timed_out(), "no notifier: the wait must time out");
        assert!(
            started.elapsed() >= Duration::from_millis(15),
            "timeout must actually elapse (allowing scheduler slop)"
        );
        // The guard is live again after the timeout: the mutex is held.
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_wakes_early_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                *lock.lock() = true;
                cv.notify_all();
            })
        };
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*ready {
            let result = cv.wait_for(&mut ready, Duration::from_millis(50));
            // Tolerate spurious timeouts while the notifier races in, but
            // never spin past the deadline.
            assert!(
                !result.timed_out() || Instant::now() < deadline,
                "notification lost"
            );
        }
        notifier.join().unwrap();
    }

    // -- guard-drop ordering ------------------------------------------------

    #[test]
    fn out_of_order_guard_drops_release_each_lock_once() {
        let a = Mutex::new(1);
        let b = Mutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        // Drop in acquisition order (a first), not reverse order: each
        // lock must be released exactly when *its* guard drops.
        drop(ga);
        assert!(a.try_lock().is_some(), "a released by dropping ga");
        assert!(b.try_lock().is_none(), "b still held by gb");
        drop(gb);
        assert!(b.try_lock().is_some(), "b released by dropping gb");
    }

    #[test]
    fn rwlock_read_guards_release_independently() {
        let l = RwLock::new(0);
        let r1 = l.read();
        // The second guard comes via `try_read`: blocking read-after-read
        // on one thread is exactly what the self-reacquire detector (a
        // real deadlock against a queued writer) rejects under
        // `--cfg lock_diagnostics`.
        let r2 = l.try_read().expect("second reader always admitted");
        drop(r1);
        assert!(
            l.try_write().is_none(),
            "one reader remains: writer refused"
        );
        drop(r2);
        assert!(l.try_write().is_some(), "all readers gone: writer admitted");
    }

    #[test]
    fn mutex_guard_drop_wakes_blocked_locker() {
        let m = Arc::new(Mutex::new(0));
        let g = m.lock();
        let blocked = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || *m.lock() + 1)
        };
        // Give the blocked thread time to park on the lock, then release.
        std::thread::sleep(Duration::from_millis(10));
        drop(g);
        assert_eq!(blocked.join().unwrap(), 1);
    }
}
