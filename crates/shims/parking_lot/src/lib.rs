//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: [`Mutex`] and [`RwLock`] with parking_lot's non-poisoning API,
//! implemented as thin wrappers over `std::sync`. A poisoned std lock (a
//! panic while held) is recovered transparently, matching parking_lot's
//! behaviour of never poisoning.

#![warn(missing_docs)]

use std::fmt;

/// A guard for [`Mutex::lock`]; derefs to the protected value.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// A guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// A guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 5);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
