//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset of its API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_flat_map`, range and simple string-pattern strategies,
//! tuple composition, `prop::collection::vec` / `prop::collection::hash_set`
//! (see [`prop::collection`]), [`prop::option::of`], [`prop::bool::ANY`],
//! and [`any`].
//!
//! Differences from upstream: cases are sampled (256 per test by default,
//! override with `PROPTEST_CASES`), failures are reported by the panicking
//! assertion rather than shrunk to a minimal counterexample, and string
//! patterns support only the `class{m,n}` shapes used in this repository
//! (character classes, `.`, literals, each with an optional `{m,n}`
//! repetition).

#![warn(missing_docs)]

pub mod test_runner {
    //! The deterministic RNG driving test-case generation.

    /// A SplitMix64 generator seeded per test and case, so runs are
    /// reproducible without any persisted state.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for case number `case` of the named test.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform `usize` in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            lo + (self.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Number of cases each property runs (`PROPTEST_CASES` env override).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % width;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % width;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    // -- string pattern strategies ------------------------------------------

    enum Atom {
        Class(Vec<char>),
        AnyAscii,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unterminated character class");
                        match c {
                            ']' => break,
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range start");
                                let hi = chars.next().expect("range end");
                                for x in lo..=hi {
                                    set.push(x);
                                }
                            }
                            _ => {
                                if let Some(p) = prev.replace(c) {
                                    set.push(p);
                                }
                            }
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    Atom::Class(set)
                }
                '.' => Atom::AnyAscii,
                other => Atom::Literal(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let n = rng.usize_in(piece.min, piece.max);
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Class(set) => {
                            assert!(!set.is_empty(), "empty character class");
                            out.push(set[rng.usize_in(0, set.len() - 1)]);
                        }
                        Atom::AnyAscii => {
                            out.push(char::from(rng.usize_in(0x20, 0x7E) as u8));
                        }
                        Atom::Literal(c) => out.push(*c),
                    }
                }
            }
            out
        }
    }
}

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A size specification: a fixed size or a (half-open or inclusive)
        /// range of sizes.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`](fn@vec).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.usize_in(self.size.min, self.size.max);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `HashSet`s whose elements come from `element`.
        ///
        /// Tries to reach a size in the requested range; duplicate samples
        /// are retried a bounded number of times, so a narrow element domain
        /// may yield fewer elements than requested.
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = rng.usize_in(self.size.min, self.size.max);
                let mut out = std::collections::HashSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 10 + 16 {
                    out.insert(self.element.sample(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A fair coin.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// A strategy for either boolean with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding `None` about a quarter of the time and
        /// `Some(inner sample)` otherwise, like upstream's default weight.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to `continue` on the case loop generated by [`proptest!`], so it
/// must appear at the top level of the property body (not inside a nested
/// loop or closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(
            (a, b) in (0usize..10, -5i32..=5),
            v in prop::collection::vec(0.0f64..1.0, 2..8),
            s in "[a-z ]{0,12}",
            flag in any::<bool>(),
            opt in prop::option::of(1u8..4),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
            prop_assert_eq!(flag as u8 <= 1, true);
            if let Some(x) = opt {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn map_and_flat_map_compose(
            pair in prop::collection::vec(0i32..100, 1..10).prop_flat_map(|v| {
                let n = v.len();
                (Just(v), prop::collection::vec((-5i32..=5).prop_map(f64::from), n..=n))
            })
        ) {
            let (v, w) = pair;
            prop_assert_eq!(v.len(), w.len());
        }
    }

    #[test]
    fn determinism_per_case() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec(0u64..1000, 3..10);
        let mut a = crate::test_runner::TestRng::for_case("t", 5);
        let mut b = crate::test_runner::TestRng::for_case("t", 5);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }
}
