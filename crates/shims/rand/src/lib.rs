//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container for this repository has no network access, so this
//! workspace vendors the *exact* subset of the rand 0.9 API its code uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `random_range`/`random_bool`, and [`seq::SliceRandom::shuffle`]. The
//! implementations are straightforward and deterministic; they are not the
//! upstream algorithms and make no cryptographic claims.

#![warn(missing_docs)]

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same scheme upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convert 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convert 32 random bits into a uniform `f32` in `[0, 1)`.
#[inline]
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A half-open or inclusive range that a `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % width;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f32(rng.next_u32()) * (self.end - self.start)
    }
}

/// Types with a canonical uniform distribution over their whole domain
/// (floats: `[0, 1)`), for [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one sample.
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for f32 {
    fn sample_standard<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
        unit_f32(rng.next_u32())
    }
}

/// Extension methods over any [`RngCore`], mirroring rand 0.9 names.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// A sample from `T`'s standard distribution (integers: full domain;
    /// floats: `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..9usize);
            assert!((3..9).contains(&v));
            let f = rng.random_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
