//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`] over the local `rand` shim's traits.
//!
//! The block function is a faithful ChaCha implementation (8 rounds, 64-bit
//! block counter); the word-level output order is not guaranteed to match
//! upstream `rand_chacha`, so streams are deterministic per seed but not
//! bit-identical to the real crate. Nothing in this workspace depends on the
//! exact stream — only on determinism and statistical quality.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic, seedable ChaCha RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 64-bit counter, 2 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Bit balance across a large sample.
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = f64::from(ones) / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "one-bit fraction {frac}");
    }
}
