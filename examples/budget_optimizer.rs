//! Automatic strategy selection under a budget: the paper's §4 vision.
//!
//! The toolkit labels a small validation sample, runs every candidate sort
//! strategy on it, measures accuracy and cost, extrapolates cost to the
//! full dataset, and recommends the most accurate strategy the budget can
//! afford — AutoML for prompting strategies.
//!
//! Run with: `cargo run -p crowdprompt --example budget_optimizer`

use std::sync::Arc;

use crowdprompt::core::optimize::{evaluate_sort_strategies, pareto_frontier, recommend};
use crowdprompt::data::FlavorDataset;
use crowdprompt::prelude::*;

fn main() {
    let data = FlavorDataset::sample(40, 9);

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 9);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .criterion("by how chocolatey they are")
        .build();

    // A small labelled validation sample (the user supplies gold labels for
    // ~10 items; the optimizer explores on those).
    let sample: Vec<_> = data.items.iter().take(10).copied().collect();
    let sample_gold = data.world.gold_ranking_by_score(&sample);

    let candidates = vec![
        SortStrategy::SinglePrompt,
        SortStrategy::Rating {
            scale_min: 1,
            scale_max: 7,
        },
        SortStrategy::BucketThenCompare { buckets: 4 },
        SortStrategy::Pairwise,
    ];
    let trials = evaluate_sort_strategies(
        session.engine(),
        &sample,
        &sample_gold,
        SortCriterion::LatentScore,
        &candidates,
    )
    .expect("validation trials run");

    println!("validation trials on a 10-item sample:");
    println!("strategy                 tau     sample cost  cost growth");
    println!("{}", "-".repeat(60));
    for t in &trials {
        println!(
            "{:<24} {:+.3}  ${:<10.5} O(n^{})",
            t.name, t.accuracy, t.sample_cost_usd, t.cost_exponent
        );
    }

    println!("\nPareto frontier (no strategy dominates these):");
    for t in pareto_frontier(&trials) {
        println!(
            "  {:<24} tau {:+.3} at ${:.5}",
            t.name, t.accuracy, t.sample_cost_usd
        );
    }

    // Recommendations for a 100k-item production run at various budgets.
    let full_n = 100_000;
    println!("\nrecommendations for a {full_n}-item production run:");
    println!("budget      pick                     extrapolated cost");
    println!("{}", "-".repeat(58));
    for budget in [1.0f64, 25.0, 500.0, 100_000.0] {
        let pick =
            recommend(&trials, sample.len(), full_n, budget).expect("candidates are non-empty");
        println!(
            "${budget:<10} {:<24} ${:.2}",
            pick.name,
            pick.extrapolated_cost(sample.len(), full_n)
        );
    }
}
