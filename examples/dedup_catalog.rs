//! Full catalog deduplication — the paper's §1 motivating example, solved
//! the CrowdER way: a free embedding index blocks the candidate space, the
//! LLM confirms only plausible pairs, and union-find closes confirmed edges
//! into duplicate groups.
//!
//! Run with: `cargo run -p crowdprompt --example dedup_catalog`

use std::sync::Arc;

use crowdprompt::data::{CitationDataset, CitationParams};
use crowdprompt::prelude::*;

fn main() {
    // A citation corpus where many papers appear in 2–3 textual variants.
    let params = CitationParams {
        n_entities: 120,
        duplicated_fraction: 0.6,
        bridge_fraction: 1.0,
        ..CitationParams::small()
    };
    let data = CitationDataset::generate(&params, 21);

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 21);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.mentions))
        .budget(Budget::usd(2.0))
        .tracing(true)
        .build();

    let build_start = std::time::Instant::now();
    let index = session.mention_index(&data.mentions).expect("index builds");
    println!(
        "blocking index over {} mentions: {} backend, built in {:.2?} \
         (parallel embed + flat storage)",
        index.len(),
        index.blocking().index_kind(),
        build_start.elapsed(),
    );

    println!(
        "deduplicating {} citation mentions (all-pairs would be {} comparisons)\n",
        data.mentions.len(),
        data.mentions.len() * (data.mentions.len() - 1) / 2
    );

    let out = session
        .dedup(&data.mentions, &index, 4, 1.2)
        .expect("dedup runs in budget");
    let clusters = &out.value;
    let multi = clusters.iter().filter(|c| c.len() > 1).count();
    println!(
        "found {} clusters ({} with duplicates) using {} LLM calls (${:.4})",
        clusters.len(),
        multi,
        out.calls,
        out.cost_usd,
    );

    // Score against the latent truth (pairwise F1 over mention pairs).
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    let cluster_of: std::collections::HashMap<_, _> = clusters
        .iter()
        .enumerate()
        .flat_map(|(c, members)| members.iter().map(move |m| (*m, c)))
        .collect();
    for i in 0..data.mentions.len() {
        for j in (i + 1)..data.mentions.len() {
            let (a, b) = (data.mentions[i], data.mentions[j]);
            let predicted = cluster_of[&a] == cluster_of[&b];
            let actual = data.world.same_cluster(a, b) == Some(true);
            match (predicted, actual) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    println!("pairwise precision {precision:.3}, recall {recall:.3} against the latent clustering");

    let example = clusters.iter().find(|c| c.len() >= 3);
    if let Some(group) = example {
        println!("\nan example duplicate group:");
        for id in group {
            println!("  - {}", data.text(*id));
        }
    }

    if let Some(trace) = session.trace() {
        println!("\n{}", trace.summary().render());
    }
}
