//! Entity resolution with internal consistency: the paper's §3.3 workflow.
//!
//! A batch of "are these two citations the same paper?" questions is
//! answered three ways: plain pairwise questioning, then k-NN neighbor
//! expansion with transitive closure for k = 1 and 2. The closure flips
//! "no" answers to "yes" whenever a chain of confident duplicate edges
//! connects the two records — recovering duplicates whose surface forms are
//! too garbled to match directly.
//!
//! Run with: `cargo run -p crowdprompt --example entity_resolution`

use std::sync::Arc;

use crowdprompt::data::{CitationDataset, CitationParams};
use crowdprompt::metrics::BinaryConfusion;
use crowdprompt::oracle::world::ItemId;
use crowdprompt::prelude::*;

fn main() {
    // A synthetic DBLP-vs-Scholar style corpus: latent paper entities
    // rendered as canonical, lightly-abbreviated, and heavily-garbled
    // mentions, plus a labelled validation pair set skewed toward hard
    // questions.
    let params = CitationParams {
        n_pairs: 600,
        n_entities: 400,
        ..CitationParams::paper_scale()
    };
    let data = CitationDataset::generate(&params, 11);

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 11);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.mentions))
        .budget(Budget::usd(5.0))
        .build();

    let questions: Vec<(ItemId, ItemId)> = data.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
    let gold: Vec<bool> = data.pairs.iter().map(|(_, _, d)| *d).collect();

    // The embedding index over all mentions (the ada-002 stand-in).
    let index = session
        .mention_index(&data.mentions)
        .expect("index builds from corpus texts");

    println!(
        "{} duplicate questions over {} citation mentions\n",
        questions.len(),
        data.mentions.len()
    );
    println!("strategy          F1     recall  precision  LLM calls  cost");
    println!("{}", "-".repeat(64));
    for (name, strategy) in [
        ("baseline      ", ResolveStrategy::Pairwise),
        (
            "transitive k=1",
            ResolveStrategy::TransitivityAugmented { k: 1 },
        ),
        (
            "transitive k=2",
            ResolveStrategy::TransitivityAugmented { k: 2 },
        ),
    ] {
        let out = session
            .resolve_pairs(&questions, &strategy, Some(&index))
            .expect("resolve runs");
        let confusion = BinaryConfusion::from_pairs(&out.value, &gold);
        println!(
            "{name}    {:.3}  {:.3}   {:.3}      {:>6}     ${:.4}",
            confusion.f1().unwrap_or(0.0),
            confusion.recall().unwrap_or(0.0),
            confusion.precision().unwrap_or(0.0),
            out.calls,
            out.cost_usd,
        );
    }

    // Show one flipped pair: answered "no" directly but connected by a path.
    let baseline = session
        .resolve_pairs(&questions, &ResolveStrategy::Pairwise, None)
        .unwrap();
    let augmented = session
        .resolve_pairs(
            &questions,
            &ResolveStrategy::TransitivityAugmented { k: 2 },
            Some(&index),
        )
        .unwrap();
    if let Some(i) =
        (0..questions.len()).find(|&i| gold[i] && !baseline.value[i] && augmented.value[i])
    {
        let (a, b) = questions[i];
        println!("\nexample flip (missed directly, recovered by transitivity):");
        println!("  A: {}", data.text(a));
        println!("  B: {}", data.text(b));
    }
}
