//! Hybrid LLM / non-LLM imputation: the paper's §3.4 workflow.
//!
//! Missing `city` values are filled for restaurant records three ways:
//! free k-NN over record-text embeddings, LLM-only prompting, and the
//! hybrid that trusts k-NN when all neighbors agree and pays for the LLM
//! only on the ambiguous remainder.
//!
//! Run with: `cargo run -p crowdprompt --example imputation_pipeline`

use std::sync::Arc;

use crowdprompt::data::products::restaurants;
use crowdprompt::oracle::world::ItemId;
use crowdprompt::prelude::*;

fn main() {
    let data = restaurants(300, 5);

    let llm = SimulatedLlm::new(
        ModelProfile::claude2_like(),
        Arc::new(data.world.clone()),
        5,
    );
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.records))
        .budget(Budget::usd(10.0))
        .build();

    // The labeled pool: records with known city values (leave-one-out when
    // imputing a record that is itself in the pool).
    let labeled: Vec<(ItemId, String)> = data
        .records
        .iter()
        .map(|id| (*id, data.gold_value(*id).to_owned()))
        .collect();
    let pool = session.labeled_pool(&labeled).expect("pool builds");

    let accuracy = |values: &[String]| {
        100.0
            * values
                .iter()
                .zip(&data.records)
                .filter(|(v, id)| v.as_str() == data.gold_value(**id))
                .count() as f64
            / data.records.len() as f64
    };

    println!(
        "Imputing `city` for {} restaurant records\n",
        data.records.len()
    );
    println!("strategy          accuracy  LLM calls  tokens   cost");
    println!("{}", "-".repeat(58));
    for (name, strategy) in [
        ("k-NN only     ", ImputeStrategy::KnnOnly { k: 3 }),
        ("hybrid, 0-shot", ImputeStrategy::Hybrid { k: 3, shots: 0 }),
        ("LLM-only 0shot", ImputeStrategy::LlmOnly { shots: 0 }),
        ("hybrid, 3-shot", ImputeStrategy::Hybrid { k: 3, shots: 3 }),
        ("LLM-only 3shot", ImputeStrategy::LlmOnly { shots: 3 }),
    ] {
        let out = session
            .impute(&data.records, "city", &pool, &strategy)
            .expect("impute runs");
        println!(
            "{name}    {:>5.1}%   {:>6}   {:>7}  ${:.4}",
            accuracy(&out.value),
            out.calls,
            out.usage.total(),
            out.cost_usd,
        );
    }

    // Peek at the gate: which records did the hybrid route to the LLM?
    let hybrid = session
        .impute(
            &data.records,
            "city",
            &pool,
            &ImputeStrategy::Hybrid { k: 3, shots: 0 },
        )
        .unwrap();
    println!(
        "\nhybrid routed {} of {} records to the LLM ({:.0}% saved)",
        hybrid.calls,
        data.records.len(),
        100.0 * (1.0 - hybrid.calls as f64 / data.records.len() as f64)
    );
    println!("\nexample record the k-NN gate answered for free:");
    if let Some(&id) = data.records.iter().find(|id| {
        // Unambiguous records have unanimous same-city neighborhoods.
        data.world.flag(**id, "ambiguous") == Some(false)
    }) {
        println!("  {}", data.text(id));
        println!("  -> {}", data.gold_value(id));
    }
}
