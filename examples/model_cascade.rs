//! Multi-model routing (§3.5): a cheap model answers the easy questions, an
//! expensive one is consulted only when the cheap answer is not confident,
//! and a sequential stopping rule spends votes where disagreement lives.
//!
//! Run with: `cargo run -p crowdprompt --example model_cascade`

use std::sync::Arc;

use crowdprompt::core::cascade::{sequential_ask, CascadeTier, ModelCascade};
use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::task::TaskDescriptor;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::oracle::Pricing;
use crowdprompt::prelude::*;

fn main() {
    // A moderation-style workload: 60 claims to validate.
    let mut world = WorldModel::new();
    let items: Vec<ItemId> = (0..60)
        .map(|i| {
            let id = world.add_item(format!("user-submitted claim {i}"));
            world.set_flag(id, "acceptable", i % 3 != 0);
            id
        })
        .collect();
    let world = Arc::new(world);

    let tier = |accuracy: f64, price_mult: f64, name: &str, seed: u64| -> Arc<LlmClient> {
        let mut profile = ModelProfile::gpt35_like()
            .with_name(name.to_owned())
            .with_noise(NoiseProfile {
                check_accuracy: accuracy,
                malformed_rate: 0.0,
                ..NoiseProfile::perfect()
            });
        profile.pricing = Pricing::new(0.0002 * price_mult, 0.0004 * price_mult);
        let llm = SimulatedLlm::new(profile, Arc::clone(&world), seed);
        Arc::new(LlmClient::new(Arc::new(llm)).without_cache())
    };

    let cheap = tier(0.78, 1.0, "sim-small", 1);
    let strong = tier(0.97, 40.0, "sim-large", 2);
    let corpus = Corpus::from_world(&world, &items);

    // --- FrugalGPT-style cascade --------------------------------------------
    let cascade = ModelCascade::new(
        vec![
            CascadeTier {
                client: Arc::clone(&cheap),
                accuracy: 0.78,
                votes: 3,
                temperature: 1.0,
            },
            CascadeTier {
                client: Arc::clone(&strong),
                accuracy: 0.97,
                votes: 3,
                temperature: 1.0,
            },
        ],
        corpus.clone(),
    )
    .with_margin(0.9); // escalate unless the cheap tier is unanimous

    let tasks: Vec<TaskDescriptor> = items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "acceptable".into(),
        })
        .collect();
    let out = cascade.ask_many(tasks).expect("cascade runs");

    let escalated = out.value.iter().filter(|v| v.deepest_tier > 0).count();
    let correct = out
        .value
        .iter()
        .enumerate()
        .filter(|(i, v)| v.answer == (i % 3 != 0))
        .count();
    println!("cascade over {} claims:", items.len());
    println!(
        "  escalated to the strong model: {escalated}/{}",
        items.len()
    );
    println!(
        "  accuracy: {:.1}%",
        100.0 * correct as f64 / items.len() as f64
    );
    println!("  cost: ${:.4}", out.cost_usd);

    // All-strong comparison.
    let engine = Engine::new(Arc::clone(&strong), corpus.clone());
    let mut all_strong_cost = 0.0;
    for id in &items {
        for s in 0..3 {
            let resp = engine
                .run_sampled(
                    TaskDescriptor::CheckPredicate {
                        item: *id,
                        predicate: "acceptable".into(),
                    },
                    1.0,
                    s,
                )
                .unwrap();
            all_strong_cost += engine.cost_of_response(&resp);
        }
    }
    println!("  (asking the strong model everything: ${all_strong_cost:.4})");

    // --- Sequential stopping rule --------------------------------------------
    println!("\nsequential asking (stop at ~95% posterior confidence):");
    let engine = Engine::new(cheap, corpus);
    let mut total_votes = 0u32;
    for &id in items.iter().take(10) {
        let out = sequential_ask(
            &engine,
            TaskDescriptor::CheckPredicate {
                item: id,
                predicate: "acceptable".into(),
            },
            0.78,
            (19.0f64).ln(),
            15,
            1.0,
        )
        .expect("sequential ask runs");
        total_votes += out.value.1;
    }
    println!(
        "  10 items resolved with {total_votes} votes total \
         (uniform 15-vote polling would use 150)"
    );
}
