//! Quality control (§3.5): estimating model accuracy from a validation set,
//! self-consistency voting, Dawid–Skene EM across multiple models, and
//! self-verification.
//!
//! Run with: `cargo run -p crowdprompt --example quality_control`

use std::sync::Arc;

use crowdprompt::core::quality::{
    dawid_skene, estimate_accuracy_yes_no, self_consistent_yes_no, verify_answer,
};
use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::task::TaskDescriptor;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

fn main() {
    // A predicate-checking workload with known truth.
    let mut world = WorldModel::new();
    let items: Vec<ItemId> = (0..120)
        .map(|i| {
            let id = world.add_item(format!("support ticket {i}: the app crashed on login"));
            world.set_flag(id, "is_bug_report", i % 4 != 3);
            id
        })
        .collect();
    let truth: Vec<bool> = (0..items.len()).map(|i| i % 4 != 3).collect();
    let world = Arc::new(world);

    let engine_with_accuracy = |acc: f64, seed: u64, name: &str| -> Engine {
        let profile = ModelProfile::gpt35_like()
            .with_name(name.to_owned())
            .with_noise(NoiseProfile {
                check_accuracy: acc,
                malformed_rate: 0.0,
                ..NoiseProfile::perfect()
            });
        let llm = SimulatedLlm::new(profile, Arc::clone(&world), seed);
        Engine::new(
            Arc::new(LlmClient::new(Arc::new(llm))),
            Corpus::from_world(&world, &items),
        )
    };

    let check = |id: ItemId| TaskDescriptor::CheckPredicate {
        item: id,
        predicate: "is_bug_report".into(),
    };

    // 1. Accuracy estimation on a labelled validation slice.
    let engine = engine_with_accuracy(0.8, 1, "sim-primary");
    let validation: Vec<(TaskDescriptor, bool)> = items
        .iter()
        .take(40)
        .zip(&truth)
        .map(|(id, t)| (check(*id), *t))
        .collect();
    let est = estimate_accuracy_yes_no(&engine, &validation).expect("estimation runs");
    println!(
        "1. validation-set accuracy estimate: {:.3} (true per-call accuracy: 0.80)",
        est.value
    );

    // 2. Self-consistency: sample the same task 9 times at temperature 1,
    //    majority vote.
    let hard_item = items[0];
    let voted =
        self_consistent_yes_no(&engine, check(hard_item), 9, 1.0).expect("self-consistency runs");
    println!(
        "2. self-consistency on one task: verdict={} after {} samples (truth: true)",
        voted.value, voted.calls
    );

    // 3. Dawid–Skene EM across three models of unknown, unequal accuracy.
    let engines = [
        engine_with_accuracy(0.92, 2, "sim-a"),
        engine_with_accuracy(0.72, 3, "sim-b"),
        engine_with_accuracy(0.58, 4, "sim-c"),
    ];
    let mut votes: Vec<Vec<Option<bool>>> = Vec::new();
    for engine in &engines {
        let responses = engine
            .run_many(items.iter().map(|id| check(*id)).collect())
            .expect("checks run");
        votes.push(
            responses
                .iter()
                .map(|r| crowdprompt::core::extract::yes_no(&r.text).ok())
                .collect(),
        );
    }
    let ds = dawid_skene(&votes, 100);
    let labels = ds.labels();
    let em_acc =
        labels.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / items.len() as f64;
    println!(
        "3. Dawid-Skene over 3 models: label accuracy {:.3}; estimated model accuracies {:?}",
        em_acc,
        ds.worker_accuracy
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 4. Self-verification: have the model check a proposed answer.
    let ok = verify_answer(&engine, check(items[0]), "yes").expect("verify runs");
    let bad = verify_answer(&engine, check(items[0]), "no").expect("verify runs");
    println!(
        "4. self-verification: endorses correct answer = {}, endorses wrong answer = {}",
        ok.value, bad.value
    );
}
