//! EXPLAIN before and after the planner's rewrites, under a tight budget.
//!
//! The same declarative query — two filters (one expensive, one cheap),
//! then the top 4 items by quality — is lowered twice:
//!
//! * **verbatim**: the chain exactly as declared (what the eager
//!   `Session` path would run);
//! * **optimized**: sort+take fused into top-k, filters reordered
//!   cheapest-first, and (under the tight budget) unpinned strategies
//!   downgraded until the estimate fits.
//!
//! Run with: `cargo run -p crowdprompt --example query_plan`

use std::sync::Arc;

use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

fn main() {
    let mut world = WorldModel::new();
    let items: Vec<ItemId> = (0..60)
        .map(|i| {
            let id = world.add_item(format!("support ticket {i:02}: printer on fire ..."));
            world.set_score(id, ((i as f64) * 3.77).sin().abs());
            world.set_flag(id, "actionable", i % 2 == 0);
            world.set_flag(id, "escalated", i % 3 == 0);
            id
        })
        .collect();

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(world.clone()), 11);
    let engine = Engine::new(
        Arc::new(LlmClient::new(Arc::new(llm))),
        Corpus::from_world(&world, &items),
    )
    .with_budget(Budget::usd(0.06)) // tight: forces the planner to economize
    .with_criterion_label("by severity");

    // The expensive filter is declared *first*; the planner will notice the
    // cheap one should run before it.
    let query = || {
        Query::over(&items)
            .filter_with(
                "escalated",
                FilterStrategy::MajorityVote {
                    votes: 5,
                    temperature_pct: 70,
                },
            )
            .filter("actionable")
            .sort(SortCriterion::LatentScore)
            .take(4)
    };

    println!("== BEFORE rewrites (verbatim lowering) ==");
    let verbatim = query()
        .plan_with(&engine, PlanOptions::verbatim())
        .expect("verbatim lowering");
    println!("{}", verbatim.explain());

    println!("== AFTER rewrites (cost-based planner) ==");
    let plan = query().plan_on(&engine).expect("optimized lowering");
    println!("{}", plan.explain());

    let run = plan.execute_on(&engine).expect("plan fits the budget");
    println!(
        "executed: {} calls, ${:.4} actual vs ${:.4} estimated ({} survivors)",
        run.total_calls(),
        run.total_cost_usd(),
        plan.estimated_cost_usd(),
        run.output.items().map_or(0, <[ItemId]>::len),
    );
    for step in &run.steps {
        println!(
            "  {:<24} {:>3} -> {:<3} {:>5} calls  ${:.4}",
            step.name, step.items_in, step.items_out, step.calls, step.cost_usd
        );
    }
}
