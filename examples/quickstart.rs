//! Quickstart: sort 20 ice-cream flavors by chocolateyness under a budget,
//! comparing three prompting strategies — the paper's Table 1 in miniature.
//!
//! Run with: `cargo run -p crowdprompt --example quickstart`

use std::sync::Arc;

use crowdprompt::data::FlavorDataset;
use crowdprompt::metrics::rank::kendall_tau_b_rankings;
use crowdprompt::prelude::*;

fn main() {
    // 1. A workload: 20 flavors with latent "chocolateyness" ground truth.
    //    (In production the items come from your own data; here a seeded
    //    generator provides both the items and the gold ordering we score
    //    against.)
    let data = FlavorDataset::paper(42);

    // 2. A model. The simulator stands in for a chat-completion API and is
    //    calibrated to gpt-3.5-turbo-like noise. Any `LanguageModel`
    //    implementation plugs in here.
    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 7);

    // 3. A declarative session: corpus + budget + criterion.
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .budget(Budget::usd(1.00))
        .criterion("by how chocolatey they are")
        .seed(42)
        .build();

    // 4. The same declared operation, three strategies, three
    //    cost/accuracy trade-offs.
    println!("Sorting 20 flavors by chocolateyness (budget $1.00)\n");
    for (name, strategy) in [
        ("single prompt ", SortStrategy::SinglePrompt),
        (
            "rating (1-7)  ",
            SortStrategy::Rating {
                scale_min: 1,
                scale_max: 7,
            },
        ),
        ("pairwise      ", SortStrategy::Pairwise),
    ] {
        let out = session
            .sort(&data.items, SortCriterion::LatentScore, &strategy)
            .expect("sort runs within budget");
        let tau = kendall_tau_b_rankings(&out.value.order, &data.gold).unwrap_or(0.0);
        println!(
            "{name}  tau={tau:+.3}  calls={:>3}  tokens={:>5}  cost=${:.4}",
            out.calls,
            out.usage.total(),
            out.cost_usd,
        );
    }

    println!("\ntotal session spend: ${:.4}", session.spent_usd());
    println!("\nTop 5 by the pairwise strategy:");
    let out = session
        .sort(
            &data.items,
            SortCriterion::LatentScore,
            &SortStrategy::Pairwise,
        )
        .unwrap();
    for (i, id) in out.value.order.iter().take(5).enumerate() {
        println!(
            "  {}. {}",
            i + 1,
            session.engine().corpus().text(*id).unwrap_or("?")
        );
    }
}
