//! Multi-backend routing: one model tier served by a fast-but-flaky and a
//! slow-but-steady backend, with hedged requests taming the latency tail.
//!
//! Run with `cargo run --example routed_backends`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::WorldModel;
use crowdprompt::prelude::*;

fn build_session(
    world: &WorldModel,
    items: &[crowdprompt::oracle::ItemId],
    hedged: bool,
) -> Session {
    let model: Arc<dyn LanguageModel> = Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like(),
        Arc::new(world.clone()),
        7,
    ));
    // Two backends over ONE simulator: identical answers, different
    // latency/price/reliability — which backend serves a call can never
    // change a result, only how fast and at what price it arrives.
    let fast: Arc<dyn Backend> = Arc::new(
        SimBackend::new("fast-flaky", Arc::clone(&model))
            // 1.5 ms typical, 8% of calls straggle at 25x (~37 ms).
            .with_latency(LatencyProfile::with_tail(1_500, 0.08, 25.0))
            .with_price_multiplier(0.8)
            .with_transport_noise(NoiseProfile {
                unavailable_prob: 0.02,
                ..NoiseProfile::perfect()
            })
            .with_seed(1),
    );
    let slow: Arc<dyn Backend> = Arc::new(
        SimBackend::new("slow-steady", Arc::clone(&model))
            .with_latency(LatencyProfile::fixed(9_000))
            .with_seed(2),
    );
    let mut routing = RoutingConfig::new()
        .backends(vec![fast, slow])
        .max_retries(3);
    if hedged {
        routing = routing.hedge_after(Duration::from_millis(3));
    }
    Session::builder()
        .routing(routing)
        .corpus(Corpus::from_world(world, items))
        .budget(Budget::usd(0.50))
        .criterion("by urgency")
        .build()
}

fn main() {
    let mut world = WorldModel::new();
    let items: Vec<_> = (0..96)
        .map(|i| {
            let id = world.add_item(format!("support ticket {i}: customer issue {}", i % 11));
            world.set_flag(id, "urgent", i % 3 == 0);
            id
        })
        .collect();

    // The same 96-ticket triage, unhedged vs hedged.
    let mut baseline = Vec::new();
    for hedged in [false, true] {
        let session = build_session(&world, &items, hedged);
        let started = Instant::now();
        let kept = session
            .filter(&items, "urgent", FilterStrategy::Single)
            .expect("routing absorbs transient failures");
        let wall = started.elapsed();
        if baseline.is_empty() {
            baseline = kept.value.clone();
        } else {
            assert_eq!(baseline, kept.value, "hedging never changes results");
        }

        let client = session.engine().client();
        let stats = client.router().expect("routed session").stats();
        println!(
            "{:10} {:>7.1} ms wall | {} calls billed, ${:.6} | hedges {} (won {}) | retries {}",
            if hedged { "hedged" } else { "unhedged" },
            wall.as_secs_f64() * 1e3,
            client.ledger().calls(),
            client.ledger().spend_usd(),
            stats.hedges_launched,
            stats.hedges_won,
            stats.retries,
        );
        for backend in &stats.per_backend {
            println!(
                "    {:12} dispatches {:>3}, wins {:>3}, transient failures {}",
                backend.id, backend.dispatches, backend.wins, backend.transient_failures
            );
        }
        // The accounting invariant: meter == ledger == budget.
        assert!((kept.cost_usd - client.ledger().spend_usd()).abs() < 1e-9);
        assert!((kept.cost_usd - session.engine().budget().spent_usd()).abs() < 1e-9);
    }

    // EXPLAIN shows the roster and the reference schedule estimates use.
    let session = build_session(&world, &items, true);
    let plan = session
        .plan(session.query(&items).filter("urgent"))
        .unwrap();
    println!("\n{}", plan.explain());
}
