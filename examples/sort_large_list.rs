//! Coarse→fine hybrid sorting of a large list: the paper's Table 2 workflow.
//!
//! A 100-word alphabetical sort in one prompt silently drops words and
//! hallucinates new ones. The sort→insert hybrid issues one coarse sort,
//! discards hallucinations, and re-inserts each missing word with
//! bidirectional pairwise comparisons, choosing the alignment-maximizing
//! index.
//!
//! Run with: `cargo run -p crowdprompt --example sort_large_list`

use std::sync::Arc;

use crowdprompt::data::WordsDataset;
use crowdprompt::metrics::rank::kendall_tau_b_rankings;
use crowdprompt::prelude::*;

fn main() {
    let data = WordsDataset::paper(2);

    let llm = SimulatedLlm::new(
        ModelProfile::claude2_like(),
        Arc::new(data.world.clone()),
        2,
    );
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .budget(Budget::usd(2.0))
        .seed(2)
        .build();

    println!(
        "Sorting {} words alphabetically (sim-claude-2)\n",
        data.items.len()
    );
    for (name, strategy) in [
        ("one prompt      ", SortStrategy::SinglePrompt),
        ("sort then insert", SortStrategy::SortThenInsert),
    ] {
        let out = session
            .sort(&data.items, SortCriterion::Lexicographic, &strategy)
            .expect("sort runs");
        let tau = kendall_tau_b_rankings(&out.value.order, &data.gold).unwrap_or(0.0);
        println!(
            "{name}  tau={tau:.3}  dropped_by_model={}  hallucinated={}  calls={}  tokens={}",
            out.value.missing,
            out.value.hallucinated,
            out.calls,
            out.usage.total(),
        );
        // Sanity: both strategies return a complete permutation of the input.
        assert_eq!(out.value.order.len(), data.items.len());
    }

    println!("\nwhy the hybrid wins: the coarse pass costs one prompt; each of");
    println!("the k missing words costs 2n cheap comparisons; and comparing in");
    println!("both directions cancels the model's position bias before the");
    println!("alignment-maximizing insertion index is chosen.");
}
