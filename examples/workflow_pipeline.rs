//! A production-style multi-step workflow (§1's framing), declared through
//! the plan layer: filter in-policy reviews, keep the electronics ones,
//! rank by helpfulness, take the top 5 — one declarative query, one shared
//! budget, an EXPLAIN before spending and a per-node audit after.
//!
//! Run with: `cargo run -p crowdprompt --example workflow_pipeline`

use std::sync::Arc;

use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

fn main() {
    // 80 product reviews with latent helpfulness, policy flags, categories.
    let mut world = WorldModel::new();
    let items: Vec<ItemId> = (0..80)
        .map(|i| {
            let id = world.add_item(format!("review {i:02}: the device arrived and ..."));
            world.set_score(id, (i as f64 * 7.31).sin().abs());
            world.set_flag(id, "in_policy", i % 5 != 0);
            world.set_attr(
                id,
                "label",
                if i % 2 == 0 { "electronics" } else { "apparel" },
            );
            id
        })
        .collect();

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(world.clone()), 3);
    let engine = Engine::new(
        Arc::new(LlmClient::new(Arc::new(llm))),
        Corpus::from_world(&world, &items),
    )
    .with_budget(Budget::usd(2.0))
    .with_criterion_label("by how helpful the review is");

    // Declare *what*: in-policy electronics reviews, best 5 by helpfulness.
    // The planner decides *how* — here it fuses sort+take(5) into a top-k
    // node instead of paying for a full sort.
    let query = Query::over(&items)
        .filter("in_policy")
        .hint_selectivity(0.8)
        .keep_label(
            vec!["electronics".to_owned(), "apparel".to_owned()],
            "electronics",
        )
        .sort(SortCriterion::LatentScore)
        .take(5);

    let plan = query.plan_on(&engine).expect("query lowers");
    println!("{}", plan.explain());

    let run = plan.execute_on(&engine).expect("plan runs in budget");

    println!("step                        in -> out   calls  tokens   cost");
    println!("{}", "-".repeat(66));
    for step in &run.steps {
        println!(
            "{:<26} {:>4} -> {:<4}  {:>4}  {:>6}   ${:.4}",
            step.name,
            step.items_in,
            step.items_out,
            step.calls,
            step.usage.total(),
            step.cost_usd,
        );
    }
    println!(
        "\ntotal: {} calls, ${:.4} (plan estimated ${:.4}); final set:",
        run.total_calls(),
        run.total_cost_usd(),
        plan.estimated_cost_usd(),
    );
    for id in run.output.items().expect("item plan") {
        println!(
            "  {}  (helpfulness {:.2})",
            engine.corpus().text(*id).unwrap_or("?"),
            world.score(*id).unwrap_or(0.0),
        );
    }
}
