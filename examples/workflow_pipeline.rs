//! A production-style multi-step workflow (§1's framing): filter in-policy
//! reviews, keep the electronics ones, rank them by helpfulness, and take
//! the top 5 — one declared pipeline, one shared budget, a per-step audit.
//!
//! Run with: `cargo run -p crowdprompt --example workflow_pipeline`

use std::sync::Arc;

use crowdprompt::core::workflow::Pipeline;
use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;
use crowdprompt::core::ops::filter::FilterStrategy;

fn main() {
    // 80 product reviews with latent helpfulness, policy flags, categories.
    let mut world = WorldModel::new();
    let items: Vec<ItemId> = (0..80)
        .map(|i| {
            let id = world.add_item(format!("review {i:02}: the device arrived and ..."));
            world.set_score(id, (i as f64 * 7.31).sin().abs());
            world.set_flag(id, "in_policy", i % 5 != 0);
            world.set_attr(
                id,
                "label",
                if i % 2 == 0 { "electronics" } else { "apparel" },
            );
            id
        })
        .collect();

    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(world.clone()), 3);
    let engine = Engine::new(
        Arc::new(LlmClient::new(Arc::new(llm))),
        Corpus::from_world(&world, &items),
    )
    .with_budget(Budget::usd(2.0))
    .with_criterion_label("by how helpful the review is");

    let pipeline = Pipeline::new()
        .filter("in_policy", FilterStrategy::Single)
        .categorize_and_keep(
            vec!["electronics".to_owned(), "apparel".to_owned()],
            "electronics",
        )
        .sort(
            SortCriterion::LatentScore,
            SortStrategy::Rating {
                scale_min: 1,
                scale_max: 7,
            },
        )
        .truncate(5);

    let result = pipeline.run(&engine, &items).expect("pipeline runs in budget");

    println!("step                        in -> out   calls  tokens   cost");
    println!("{}", "-".repeat(66));
    for step in &result.steps {
        println!(
            "{:<26} {:>4} -> {:<4}  {:>4}  {:>6}   ${:.4}",
            step.name,
            step.items_in,
            step.items_out,
            step.calls,
            step.usage.total(),
            step.cost_usd,
        );
    }
    println!(
        "\ntotal: {} calls, ${:.4}; final set:",
        result.total_calls(),
        result.total_cost_usd()
    );
    for id in &result.items {
        println!(
            "  {}  (helpfulness {:.2})",
            engine.corpus().text(*id).unwrap_or("?"),
            world.score(*id).unwrap_or(0.0),
        );
    }
}
