//! Property tests for the approximate IVF + SQ8 tier against the exact
//! recall oracle (PR 6).
//!
//! The exact [`BruteForceIndex`] is the in-tree oracle: approximation is
//! a *tested* contract, not a vibe. Properties, over random corpora,
//! dimensionalities, and seeds:
//!
//! (a) recall@k against the oracle meets the configured target,
//! (b) returned neighbors exactly obey the ascending-distance /
//!     tie-by-index contract, with distances bit-identical to the
//!     oracle's fused computation for every returned row,
//! (c) quantization round-trip error stays within the derived per-dim
//!     bound,
//! (d) `nprobe = centroid_count` degrades to exact results
//!     bit-identically (structurally: the same brute-force code runs).
//!
//! The proptest shim is deterministic per (test name, case index), so
//! these assertions are reproducible, never flaky.

use crowdprompt::embed::{
    quantize_into, BruteForceIndex, IvfIndex, IvfParams, KnnIndex, Metric, NearestNeighbors,
    VectorStore,
};
use proptest::prelude::*;

/// Recall@k the property corpora are tuned to meet (clustered data with
/// every query's own cluster probed comfortably clears it; the 1M bench
/// asserts the production 0.95 target on the realistic tier).
const RECALL_TARGET: f64 = 0.90;

/// Deterministic clustered corpus: `n` rows around `centers` well-spread
/// anchor points with small noise — the shape blocking corpora have
/// (near-duplicate records cluster in embedding space).
fn clustered_corpus(n: usize, dims: usize, centers: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let c = (next() as usize) % centers.max(1);
            (0..dims)
                .map(|d| {
                    let anchor = ((c * 37 + d * 11) % 29) as f32;
                    let noise = (next() % 1000) as f32 / 1000.0 - 0.5;
                    anchor + noise * 0.3
                })
                .collect()
        })
        .collect()
}

fn build_pair(
    vectors: Vec<Vec<f32>>,
    nlist: usize,
    nprobe: usize,
    seed: u64,
) -> (BruteForceIndex, IvfIndex) {
    let exact = BruteForceIndex::new(vectors.clone(), Metric::L2);
    let ivf = IvfIndex::build(
        VectorStore::from_rows(vectors),
        Metric::L2,
        IvfParams {
            nlist,
            nprobe,
            rescore: 32,
            train_iters: 4,
            train_sample: 768,
            seed,
        },
    );
    (exact, ivf)
}

proptest! {
    /// (a) Recall@k against the exact oracle meets the configured target.
    #[test]
    fn recall_meets_target(
        (n, dims, centers) in (400usize..1200, 8usize..40, 4usize..10),
        seed in 0u64..1_000_000,
    ) {
        let vectors = clustered_corpus(n, dims, centers, seed);
        // Probe a third of the lists; one list per latent cluster.
        let (exact, ivf) = build_pair(vectors, centers, centers.div_ceil(3), seed);
        let k = 10;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            let query = exact.store().row((q * 53) % n).to_vec();
            let truth: Vec<usize> = exact.nearest(&query, k).iter().map(|h| h.index).collect();
            let got: Vec<usize> = ivf.nearest(&query, k).iter().map(|h| h.index).collect();
            total += truth.len();
            hit += truth.iter().filter(|i| got.contains(i)).count();
        }
        let recall = hit as f64 / total.max(1) as f64;
        prop_assert!(
            recall >= RECALL_TARGET,
            "recall@{k} = {recall} < {RECALL_TARGET} (n={n}, dims={dims}, centers={centers})"
        );
    }

    /// (b) Returned neighbors obey the ascending-distance / tie-by-index
    /// contract, and every returned distance is bit-identical to the
    /// oracle's fused computation for that row.
    #[test]
    fn rescored_results_obey_the_exact_contract(
        (n, dims, centers, k) in (100usize..600, 4usize..32, 2usize..8, 1usize..15),
        seed in 0u64..1_000_000,
    ) {
        let vectors = clustered_corpus(n, dims, centers, seed);
        let (exact, ivf) = build_pair(vectors, centers.max(2), 1, seed);
        for q in 0..8 {
            let query = exact.store().row((q * 97) % n).to_vec();
            let hits = ivf.nearest(&query, k);
            prop_assert!(hits.len() <= k);
            // Strictly ascending under (distance, index): no duplicates.
            for w in hits.windows(2) {
                let asc = w[0].distance < w[1].distance
                    || (w[0].distance == w[1].distance && w[0].index < w[1].index);
                prop_assert!(asc, "contract violated: {:?} then {:?}", w[0], w[1]);
            }
            // Distances are the oracle's own: querying for enough
            // neighbors to cover each returned row must reproduce the
            // exact (distance, index) pair bit-for-bit.
            let oracle = exact.nearest(&query, n);
            for h in &hits {
                let reference = oracle
                    .iter()
                    .find(|o| o.index == h.index)
                    .expect("returned row must be oracle-rankable");
                prop_assert_eq!(h.distance.to_bits(), reference.distance.to_bits());
            }
        }
    }

    /// (c) Quantization round-trip error stays within the derived
    /// per-dimension bound.
    #[test]
    fn quantization_round_trip_within_bound(
        row in prop::collection::vec(-1000.0f32..1000.0, 1..300),
    ) {
        let mut codes = Vec::new();
        let meta = quantize_into(&row, &mut codes);
        let bound = meta.round_trip_bound();
        for (&c, &x) in codes.iter().zip(&row) {
            let back = meta.offset + meta.scale * f32::from(c);
            prop_assert!(
                (back - x).abs() <= bound,
                "|{back} - {x}| > {bound} (offset {}, scale {})",
                meta.offset,
                meta.scale
            );
        }
    }

    /// (d) `nprobe = centroid_count` degrades to exact results
    /// bit-identically — same hits, same order, same distance bits.
    #[test]
    fn full_probe_is_bit_identical_to_exact(
        (n, dims, centers, k) in (50usize..500, 2usize..32, 1usize..9, 1usize..12),
        seed in 0u64..1_000_000,
    ) {
        let vectors = clustered_corpus(n, dims, centers, seed);
        let (exact, ivf) = build_pair(vectors, centers, centers, seed);
        for q in 0..10 {
            let query = exact.store().row((q * 41) % n).to_vec();
            let a = ivf.nearest(&query, k);
            let b = exact.nearest(&query, k);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.index, y.index);
                prop_assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
            // And the excluding form too.
            let xa = ivf.nearest_excluding(&query, k, (q * 41) % n);
            let xb = exact.nearest_excluding(&query, k, (q * 41) % n);
            prop_assert_eq!(xa, xb);
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate shapes (IVF path)
// ---------------------------------------------------------------------------

fn small_params(nlist: usize, nprobe: usize) -> IvfParams {
    IvfParams {
        nlist,
        nprobe,
        rescore: 16,
        train_iters: 3,
        train_sample: 256,
        seed: 11,
    }
}

#[test]
fn empty_corpus_yields_no_hits() {
    let ivf = IvfIndex::build(
        VectorStore::from_rows(Vec::new()),
        Metric::L2,
        small_params(4, 2),
    );
    assert!(ivf.is_empty());
    assert!(ivf.nearest(&[1.0, 2.0], 5).is_empty());
}

#[test]
fn k_zero_and_k_beyond_corpus() {
    let vectors = clustered_corpus(40, 6, 3, 5);
    let (exact, ivf) = build_pair(vectors, 3, 1, 5);
    let query = exact.store().row(7).to_vec();
    assert!(ivf.nearest(&query, 0).is_empty());
    // k > N falls back to the exact path and returns every row, exactly.
    assert_eq!(ivf.nearest(&query, 100), exact.nearest(&query, 100));
}

#[test]
fn all_identical_vectors_collapse_to_one_centroid() {
    let ivf = IvfIndex::build(
        VectorStore::from_rows(vec![vec![3.0, -1.0, 4.0]; 50]),
        Metric::L2,
        small_params(8, 2),
    );
    assert_eq!(ivf.nlist(), 1, "duplicate corpus must train one centroid");
    let hits = ivf.nearest(&[3.0, -1.0, 4.0], 4);
    assert_eq!(
        hits.iter().map(|h| h.index).collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "ties break by insertion index"
    );
    assert!(hits.iter().all(|h| h.distance == 0.0));
}

#[test]
fn nan_rows_are_filtered_deterministically() {
    let mut vectors = clustered_corpus(60, 5, 3, 9);
    vectors[10] = vec![f32::NAN; 5];
    vectors[20][2] = f32::NAN;
    let (exact, ivf) = build_pair(vectors, 3, 3, 9);
    let query = exact.store().row(0).to_vec();
    let hits = ivf.nearest(&query, 60);
    assert_eq!(hits.len(), 58, "the two NaN rows are unreachable");
    assert!(hits.iter().all(|h| ![10, 20].contains(&h.index)));
    assert!(hits.iter().all(|h| !h.distance.is_nan()));
    // Identical to the oracle's own filtering (full probe → exact path).
    assert_eq!(hits, exact.nearest(&query, 60));
    // A NaN query returns no hits on either path.
    assert!(ivf.nearest(&[f32::NAN; 5], 3).is_empty());
}

#[test]
fn corpus_smaller_than_centroid_count() {
    let vectors = clustered_corpus(5, 4, 2, 13);
    let ivf = IvfIndex::build(
        VectorStore::from_rows(vectors.clone()),
        Metric::L2,
        small_params(64, 16),
    );
    assert!(ivf.nlist() <= 5, "nlist must clamp to the corpus");
    let exact = BruteForceIndex::new(vectors, Metric::L2);
    let query = exact.store().row(2).to_vec();
    assert_eq!(ivf.nearest(&query, 3), exact.nearest(&query, 3));
}

#[test]
fn auto_tuned_routes_by_shape_and_target() {
    // Small corpus: recall target is ignored, exact scan chosen.
    let small = clustered_corpus(500, 40, 4, 1);
    assert_eq!(
        KnnIndex::auto_tuned(small, Metric::L2, 0.95).kind(),
        "brute_force"
    );
    // A recall target >= 1.0 demands exact even at scale (narrow corpus
    // here so the build stays cheap; shape routing is covered in-crate).
    let narrow = clustered_corpus(5000, 8, 4, 2);
    assert_eq!(
        KnnIndex::auto_tuned(narrow, Metric::L2, 1.0).kind(),
        "vp_tree"
    );
}
