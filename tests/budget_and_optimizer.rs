//! Integration tests for budget enforcement and automatic strategy
//! selection through the public facade.

use std::sync::Arc;

use crowdprompt::core::optimize::{
    evaluate_sort_strategies, pareto_frontier, recommend, sort_cost_exponent,
};
use crowdprompt::data::FlavorDataset;
use crowdprompt::prelude::*;

fn session_with_budget(budget: Budget, seed: u64) -> (Session, FlavorDataset) {
    let data = FlavorDataset::sample(30, seed);
    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like(),
        Arc::new(data.world.clone()),
        seed,
    );
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .budget(budget)
        .criterion("by how chocolatey they are")
        .seed(seed)
        .build();
    (session, data)
}

#[test]
fn token_budget_is_enforced_end_to_end() {
    let (session, data) = session_with_budget(Budget::tokens(500), 1);
    // A 30-item pairwise sort needs hundreds of calls; 500 tokens cannot
    // cover it.
    let result = session.sort(
        &data.items,
        SortCriterion::LatentScore,
        &SortStrategy::Pairwise,
    );
    assert!(matches!(result, Err(EngineError::BudgetExceeded { .. })));
    // The tracker never exceeds the cap.
    assert!(session.engine().budget().spent_tokens() <= 500);
}

#[test]
fn usd_budget_partial_progress_then_refusal() {
    let (session, data) = session_with_budget(Budget::usd(0.004), 2);
    // Cheap operation fits...
    session
        .sort(
            &data.items,
            SortCriterion::LatentScore,
            &SortStrategy::SinglePrompt,
        )
        .expect("cheap op fits");
    let spent_after_first = session.spent_usd();
    assert!(spent_after_first > 0.0);
    // ...until the budget runs dry on repeated expensive work.
    let mut refused = false;
    for _ in 0..50 {
        // Different strategies to avoid the response cache making calls free.
        if session
            .sort(
                &data.items,
                SortCriterion::LatentScore,
                &SortStrategy::Rating {
                    scale_min: 1,
                    scale_max: 7,
                },
            )
            .is_err()
        {
            refused = true;
            break;
        }
    }
    assert!(refused, "budget should eventually refuse");
    assert!(
        session.spent_usd() <= 0.004 + 0.001,
        "overshoot bounded by one call"
    );
}

#[test]
fn optimizer_trials_reflect_cost_structure() {
    let (session, data) = session_with_budget(Budget::Unlimited, 3);
    let sample: Vec<_> = data.items.iter().take(10).copied().collect();
    let gold = data.world.gold_ranking_by_score(&sample);
    let candidates = vec![
        SortStrategy::SinglePrompt,
        SortStrategy::Rating {
            scale_min: 1,
            scale_max: 7,
        },
        SortStrategy::Pairwise,
    ];
    let trials = evaluate_sort_strategies(
        session.engine(),
        &sample,
        &gold,
        SortCriterion::LatentScore,
        &candidates,
    )
    .unwrap();
    assert_eq!(trials.len(), 3);
    // Cost ordering on the sample: pairwise > rating > single prompt.
    assert!(trials[2].sample_tokens > trials[1].sample_tokens);
    assert!(trials[1].sample_tokens > trials[0].sample_tokens);
    // Exponents drive extrapolation.
    assert_eq!(sort_cost_exponent(&SortStrategy::Pairwise), 2);
    assert_eq!(sort_cost_exponent(&SortStrategy::SinglePrompt), 1);
    let pairwise = &trials[2];
    let at_100 = pairwise.extrapolated_cost(10, 100);
    assert!(
        at_100 > pairwise.sample_cost_usd * 50.0,
        "quadratic blow-up expected"
    );
}

#[test]
fn recommendation_degrades_gracefully_with_budget() {
    let (session, data) = session_with_budget(Budget::Unlimited, 4);
    let sample: Vec<_> = data.items.iter().take(10).copied().collect();
    let gold = data.world.gold_ranking_by_score(&sample);
    let candidates = vec![SortStrategy::SinglePrompt, SortStrategy::Pairwise];
    let trials = evaluate_sort_strategies(
        session.engine(),
        &sample,
        &gold,
        SortCriterion::LatentScore,
        &candidates,
    )
    .unwrap();
    // Generous budget: the more accurate strategy (pairwise here, given
    // the gpt35 noise profile) is chosen.
    let rich = recommend(&trials, 10, 1000, 1e6).unwrap();
    let best_tau = trials
        .iter()
        .map(|t| t.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((rich.accuracy - best_tau).abs() < 1e-9);
    // Starvation budget: the cheapest extrapolated strategy is returned.
    let poor = recommend(&trials, 10, 1000, 1e-9).unwrap();
    assert_eq!(poor.name, "single-prompt");
    // The frontier never contains a strictly dominated strategy.
    let frontier = pareto_frontier(&trials);
    for f in &frontier {
        assert!(!trials
            .iter()
            .any(|t| { t.accuracy > f.accuracy && t.sample_cost_usd < f.sample_cost_usd }));
    }
}
