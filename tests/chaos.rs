//! Chaos suite (PR 7): randomized scripted fault schedules × failure
//! policies, end to end through the routing layer.
//!
//! Each property draws a random [`FaultSchedule`] (outages, rate-limit
//! storms, latency spikes at random call ordinals) and asserts the
//! invariants that must hold under *any* interleaving:
//!
//! * **Convergence** — every submitted task ends in exactly one bucket:
//!   a completed response or a quarantine entry carrying its error chain.
//! * **Money conservation** — the operator's meter (summed per-response
//!   cost), the client's cost ledger, and the budget tracker agree on
//!   total spend; nobody is billed for a call that never completed.
//! * **Maximal salvage** — with a healthy standby backend in the fleet,
//!   degrade mode quarantines nothing and every answer is correct, no
//!   matter what the schedule does to the flaky backend.
//!
//! The suite asserts *invariants*, not exact outcomes: which items
//! quarantine under a given schedule depends on scheduling races, and
//! pinning it would make the tests flaky rather than strong.

// The pre-PR10 per-knob builder methods stay exercised here on purpose:
// they are deprecated delegating shims and must keep working unchanged.
#![allow(deprecated)]

use std::sync::Arc;

use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::route::BreakerConfig;
use crowdprompt::oracle::task::TaskDescriptor;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;
use proptest::prelude::*;

/// Absolute slack for comparing the three spend representations: the
/// ledger rounds each call to whole nanodollars and the two f64 meters sum
/// in different orders, so they agree to well under a micro-dollar at this
/// suite's call counts — but not to the bit.
const MONEY_TOL: f64 = 1e-6;

fn keep_world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("chaos record {i}"));
            w.set_flag(id, "keep", i % 2 == 0);
            id
        })
        .collect();
    (w, items)
}

/// Draw a random fault schedule: 1–3 windows over the first ~70 call
/// ordinals, each an outage, a rate-limit storm with a small Retry-After
/// hint, or a latency spike (harmless here — `SimBackend` defaults to zero
/// latency, which keeps the suite fast while still exercising the branch).
fn random_schedule(seed: u64) -> FaultSchedule {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let windows = (0..1 + next() % 3)
        .map(|_| {
            let from = next() % 40;
            let len = 1 + next() % 30;
            let kind = match next() % 3 {
                0 => FaultKind::Outage,
                1 => FaultKind::RateLimitStorm {
                    retry_after_ms: 1 + next() % 15,
                },
                _ => FaultKind::LatencySpike {
                    mult: 2.0 + (next() % 10) as f64,
                },
            };
            FaultWindow::new(from, from + len, kind)
        })
        .collect();
    FaultSchedule::new(windows)
}

fn perfect_sim(w: &WorldModel, seed: u64) -> Arc<dyn LanguageModel> {
    Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        seed,
    ))
}

/// One routed session over the given backends. `parallelism(1)` keeps the
/// budget's f64 summation order deterministic enough for tight money
/// comparisons; the invariants themselves do not depend on it.
fn routed_session(
    w: &WorldModel,
    items: &[ItemId],
    backends: Vec<Arc<dyn Backend>>,
    policy: Option<FailurePolicy>,
) -> Session {
    let client = Arc::new(LlmClient::routed(
        BackendRegistry::new(backends).unwrap(),
        RoutePolicy {
            max_retries: 2,
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: std::time::Duration::from_millis(5),
            },
            ..RoutePolicy::default()
        },
    ));
    let mut builder = Session::builder()
        .client(client)
        .corpus(Corpus::from_world(w, items))
        .criterion("by index")
        .parallelism(1);
    if let Some(policy) = policy {
        builder = builder.failure_policy(policy);
    }
    builder.build()
}

fn check_tasks(items: &[ItemId]) -> Vec<TaskDescriptor> {
    items
        .iter()
        .map(|&item| TaskDescriptor::CheckPredicate {
            item,
            predicate: "keep".to_owned(),
        })
        .collect()
}

/// Assert the three spend representations agree: operator meter (summed
/// per-response cost), client ledger, budget tracker.
fn assert_money_conserved(session: &Session, meter: f64) {
    let budget = session.spent_usd();
    let ledger = session.engine().client().ledger().spend_usd();
    assert!(
        (budget - ledger).abs() <= MONEY_TOL,
        "budget {budget} != ledger {ledger}"
    );
    assert!(
        (meter - budget).abs() <= MONEY_TOL,
        "meter {meter} != budget {budget}"
    );
}

proptest! {
    /// Degrade mode under an arbitrary schedule: every task converges to
    /// exactly one bucket, quarantine entries carry their evidence, and
    /// the money books balance on whatever was salvaged.
    #[test]
    fn degrade_partitions_every_task_and_conserves_money(
        (n, max_attempts) in (6usize..16, 2u32..6),
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = keep_world(n);
        let backend: Arc<dyn Backend> = Arc::new(
            SimBackend::new("flaky", perfect_sim(&w, seed))
                .with_fault_schedule(random_schedule(seed)),
        );
        let session = routed_session(
            &w,
            &items,
            vec![backend],
            Some(FailurePolicy::Degrade { max_attempts }),
        );
        let outcome = session.engine().run_many_outcome(check_tasks(&items));

        // Convergence: one result per task, and the quarantine list is
        // exactly the Err positions, in order, with evidence attached.
        prop_assert_eq!(outcome.results.len(), n);
        prop_assert_eq!(outcome.ok_count() + outcome.quarantined.len(), n);
        let err_indices: Vec<usize> = outcome
            .results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();
        let quarantine_indices: Vec<usize> =
            outcome.quarantined.iter().map(|q| q.index).collect();
        prop_assert_eq!(&quarantine_indices, &err_indices);
        for q in &outcome.quarantined {
            prop_assert!(!q.errors.is_empty(), "quarantine without evidence");
            prop_assert!(
                q.errors.len() <= max_attempts as usize,
                "item {} burned {} attempts against an allowance of {max_attempts}",
                q.index,
                q.errors.len()
            );
        }

        // Money: only salvaged responses are billed, and all three books
        // agree. Tasks are unique and failures are never cached, so each
        // success is exactly one paid call.
        let meter: f64 = outcome
            .successes()
            .map(|(_, r)| r.pricing.cost_usd(r.usage))
            .sum();
        assert_money_conserved(&session, meter);
        let ledger = session.engine().client().ledger();
        prop_assert_eq!(ledger.calls(), outcome.ok_count() as u64);
    }

    /// Fail-fast under an arbitrary schedule: the batch either completes
    /// whole or errors, and either way nobody is billed for work the
    /// client never finished — budget and ledger agree to the end.
    #[test]
    fn failfast_completes_or_errors_with_books_balanced(
        n in 6usize..16,
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = keep_world(n);
        let backend: Arc<dyn Backend> = Arc::new(
            SimBackend::new("flaky", perfect_sim(&w, seed))
                .with_fault_schedule(random_schedule(seed)),
        );
        let session = routed_session(&w, &items, vec![backend], None);
        match session.engine().run_many(check_tasks(&items)) {
            Ok(responses) => {
                prop_assert_eq!(responses.len(), n);
                let meter: f64 = responses
                    .iter()
                    .map(|r| r.pricing.cost_usd(r.usage))
                    .sum();
                assert_money_conserved(&session, meter);
                prop_assert_eq!(
                    session.engine().client().ledger().calls(),
                    n as u64
                );
            }
            Err(_) => {
                // Aborted mid-batch: completed calls were charged to both
                // books identically; nothing was charged for the failure.
                let budget = session.spent_usd();
                let ledger = session.engine().client().ledger().spend_usd();
                prop_assert!(
                    (budget - ledger).abs() <= MONEY_TOL,
                    "after abort: budget {budget} != ledger {ledger}"
                );
            }
        }
    }

    /// Maximal salvage: with a healthy standby in the fleet, degrade mode
    /// quarantines nothing and every answer is correct — whatever the
    /// schedule does to the flaky backend, cross-backend retries find the
    /// healthy one.
    #[test]
    fn healthy_standby_salvages_every_item(
        n in 6usize..16,
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = keep_world(n);
        let llm = perfect_sim(&w, seed);
        let flaky: Arc<dyn Backend> = Arc::new(
            SimBackend::new("flaky", Arc::clone(&llm))
                .with_fault_schedule(random_schedule(seed)),
        );
        let steady: Arc<dyn Backend> = Arc::new(SimBackend::new("steady", llm));
        let session = routed_session(
            &w,
            &items,
            vec![flaky, steady],
            Some(FailurePolicy::Degrade { max_attempts: 8 }),
        );

        let run = session
            .plan(session.query(&items).filter("keep"))
            .unwrap()
            .execute(&session)
            .unwrap();
        let expected: Vec<ItemId> = items.iter().copied().step_by(2).collect();
        prop_assert_eq!(run.output.items().unwrap(), expected.as_slice());
        prop_assert_eq!(run.steps.len(), 1);
        prop_assert_eq!(
            run.steps[0].quarantined_count(),
            0,
            "a healthy standby must make salvage total: {:?}",
            &run.steps[0].salvage
        );
        prop_assert!(!run.steps[0].salvage.is_empty(), "degrade mode leaves a note");

        // The books balance across the two-backend fleet too.
        let budget = session.spent_usd();
        let ledger = session.engine().client().ledger().spend_usd();
        prop_assert!(
            (budget - ledger).abs() <= MONEY_TOL,
            "budget {budget} != ledger {ledger}"
        );
    }
}
