//! End-to-end integration tests: every declarative operator run through the
//! public `crowdprompt` facade against seeded workloads.

use std::sync::Arc;

use crowdprompt::core::ops::count::CountStrategy;
use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::core::ops::max::MaxStrategy;
use crowdprompt::data::FlavorDataset;
use crowdprompt::metrics::rank::kendall_tau_b_rankings;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

fn flavor_session(seed: u64) -> (Session, FlavorDataset) {
    let data = FlavorDataset::paper(seed);
    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like(),
        Arc::new(data.world.clone()),
        seed,
    );
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .budget(Budget::usd(5.0))
        .criterion("by how chocolatey they are")
        .seed(seed)
        .build();
    (session, data)
}

#[test]
fn sort_all_strategies_return_permutations() {
    let (session, data) = flavor_session(1);
    for strategy in [
        SortStrategy::SinglePrompt,
        SortStrategy::Pairwise,
        SortStrategy::Rating {
            scale_min: 1,
            scale_max: 7,
        },
        SortStrategy::SortThenInsert,
        SortStrategy::BucketThenCompare { buckets: 4 },
    ] {
        let out = session
            .sort(&data.items, SortCriterion::LatentScore, &strategy)
            .unwrap_or_else(|e| panic!("{strategy:?} failed: {e}"));
        let mut sorted = out.value.order.clone();
        sorted.sort_unstable();
        let mut expected = data.items.clone();
        expected.sort_unstable();
        assert_eq!(sorted, expected, "{strategy:?} must permute the input");
        // Cost accounting is populated for LLM strategies.
        assert!(out.usage.total() > 0);
    }
}

#[test]
fn sort_quality_is_positive_for_all_strategies() {
    let (session, data) = flavor_session(2);
    for strategy in [
        SortStrategy::SinglePrompt,
        SortStrategy::Pairwise,
        SortStrategy::Rating {
            scale_min: 1,
            scale_max: 7,
        },
    ] {
        let out = session
            .sort(&data.items, SortCriterion::LatentScore, &strategy)
            .unwrap();
        let tau = kendall_tau_b_rankings(&out.value.order, &data.gold).unwrap();
        assert!(tau > 0.2, "{strategy:?} tau {tau} too low");
    }
}

#[test]
fn filter_count_categorize_max_topk_cluster_roundtrip() {
    // One world exercising several operators.
    let mut w = WorldModel::new();
    let labels = vec!["hot".to_owned(), "cold".to_owned()];
    let items: Vec<ItemId> = (0..24)
        .map(|i| {
            let id = w.add_item(format!("dish number {i:02}"));
            w.set_score(id, i as f64 / 24.0);
            w.set_flag(id, "spicy", i % 3 == 0);
            w.set_attr(id, "label", if i < 12 { "hot" } else { "cold" });
            w.set_cluster(id, u64::from(i % 4 == 0)); // two clusters
            id
        })
        .collect();
    let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w.clone()), 3);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by heat")
        .build();

    let kept = session
        .filter(&items, "spicy", FilterStrategy::Single)
        .unwrap();
    assert_eq!(kept.value.len(), 8);

    let n = session
        .count(&items, "spicy", CountStrategy::PerItem)
        .unwrap();
    assert_eq!(n.value, 8);

    let cats = session.categorize(&items, &labels).unwrap();
    assert_eq!(cats.value.iter().filter(|l| *l == "hot").count(), 12);

    let max = session
        .max(&items, SortCriterion::LatentScore, MaxStrategy::Tournament)
        .unwrap();
    assert_eq!(max.value, items[23]);

    let top = session
        .top_k(&items, SortCriterion::LatentScore, 3, 3)
        .unwrap();
    assert_eq!(top.value, vec![items[23], items[22], items[21]]);

    let clusters = session.cluster(&items, 8).unwrap();
    let total: usize = clusters.value.iter().map(Vec::len).sum();
    assert_eq!(total, items.len());
    assert_eq!(clusters.value.len(), 2);
}

#[test]
fn budget_is_shared_across_operations() {
    let (session, data) = flavor_session(3);
    let before = session.spent_usd();
    session
        .sort(
            &data.items,
            SortCriterion::LatentScore,
            &SortStrategy::SinglePrompt,
        )
        .unwrap();
    let mid = session.spent_usd();
    assert!(mid > before);
    session
        .sort(
            &data.items,
            SortCriterion::LatentScore,
            &SortStrategy::Rating {
                scale_min: 1,
                scale_max: 7,
            },
        )
        .unwrap();
    assert!(session.spent_usd() > mid);
}

#[test]
fn tight_budget_rejects_expensive_strategy_but_allows_cheap_one() {
    let data = FlavorDataset::paper(4);
    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 4);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        // Enough for one list prompt, nowhere near enough for 190 pairwise.
        .budget(Budget::usd(0.001))
        .criterion("by how chocolatey they are")
        .build();
    let cheap = session.sort(
        &data.items,
        SortCriterion::LatentScore,
        &SortStrategy::SinglePrompt,
    );
    assert!(cheap.is_ok(), "single prompt should fit: {cheap:?}");
    let expensive = session.sort(
        &data.items,
        SortCriterion::LatentScore,
        &SortStrategy::Pairwise,
    );
    assert!(
        matches!(expensive, Err(EngineError::BudgetExceeded { .. })),
        "pairwise should exceed the leftover budget: {expensive:?}"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let (session, data) = flavor_session(9);
        let out = session
            .sort(
                &data.items,
                SortCriterion::LatentScore,
                &SortStrategy::Pairwise,
            )
            .unwrap();
        (out.value.order.clone(), out.usage)
    };
    assert_eq!(run(), run());
}
