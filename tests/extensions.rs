//! Integration tests for the extension features: model cascades, fuzzy
//! joins, multi-step workflows, execution tracing, and the sentiment
//! workload — all through the public facade.

use std::sync::Arc;

use crowdprompt::core::cascade::{CascadeTier, ModelCascade};
use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::core::workflow::Pipeline;
use crowdprompt::core::{Corpus, Engine};
use crowdprompt::data::ReviewsDataset;
use crowdprompt::metrics::rank::kendall_tau_b_rankings;
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::task::TaskDescriptor;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

#[test]
fn sentiment_workload_sorts_filters_and_counts() {
    let data = ReviewsDataset::generate(60, 5);
    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(data.world.clone()), 5);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&data.world, &data.items))
        .criterion("by how positive the sentiment is")
        .tracing(true)
        .build();

    // Sorting on sentiment should clearly beat chance.
    let sorted = session
        .sort(
            &data.items,
            SortCriterion::LatentScore,
            &SortStrategy::Pairwise,
        )
        .unwrap();
    let tau = kendall_tau_b_rankings(&sorted.value.order, &data.gold).unwrap();
    assert!(tau > 0.5, "tau {tau}");

    // Counting positives should land near the truth.
    let count = session
        .count(
            &data.items,
            "positive",
            crowdprompt::core::ops::count::CountStrategy::PerItem,
        )
        .unwrap();
    let err = (count.value as i64 - data.positive_count as i64).unsigned_abs();
    assert!(
        err <= 8,
        "count {} vs truth {}",
        count.value,
        data.positive_count
    );

    // Tracing captured both operations.
    let summary = session.trace().unwrap().summary();
    assert!(summary.by_kind.contains_key("compare"));
    assert!(summary.by_kind.contains_key("check_predicate"));
    assert!(summary.total_calls() >= sorted.calls + count.calls);
}

#[test]
fn workflow_pipeline_composes_and_audits() {
    let data = ReviewsDataset::generate(50, 9);
    let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(data.world.clone()), 9);
    let engine = Engine::new(
        Arc::new(LlmClient::new(Arc::new(llm))),
        Corpus::from_world(&data.world, &data.items),
    )
    .with_criterion_label("by sentiment");

    let result = Pipeline::new()
        .filter("positive", FilterStrategy::Single)
        .sort(SortCriterion::LatentScore, SortStrategy::SinglePrompt)
        .truncate(5)
        .run(&engine, &data.items)
        .unwrap();

    assert_eq!(result.items.len(), 5.min(data.positive_count));
    // With a perfect oracle, the survivors are the top positive snippets.
    for id in &result.items {
        assert_eq!(data.world.flag(*id, "positive"), Some(true));
    }
    // Per-step audit is coherent.
    assert_eq!(result.steps.len(), 3);
    assert_eq!(result.steps[0].items_in, 50);
    assert_eq!(
        result.steps[0].items_out, data.positive_count,
        "perfect filter keeps exactly the positives"
    );
    assert!(result.total_cost_usd() >= 0.0);
}

#[test]
fn fuzzy_join_blocked_vs_all_pairs_through_session() {
    // Two catalogs of the same entities with different formatting.
    let mut w = WorldModel::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..10 {
        let l = w.add_item(format!("contoso gadget unit {i:02} (warehouse listing)"));
        w.set_cluster(l, i);
        left.push(l);
        let r = w.add_item(format!("Contoso Gadget {i:02} retail"));
        w.set_cluster(r, i);
        right.push(r);
    }
    let all: Vec<ItemId> = left.iter().chain(right.iter()).copied().collect();
    let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w.clone()), 4);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&w, &all))
        .build();

    let naive = session
        .fuzzy_join(&left, &right, &JoinStrategy::AllPairs)
        .unwrap();
    let blocked = session
        .fuzzy_join(
            &left,
            &right,
            &JoinStrategy::Blocked {
                candidates: 2,
                max_distance: 1.3,
            },
        )
        .unwrap();
    assert_eq!(naive.value.matches.len(), 10);
    assert_eq!(
        blocked.value.matches, naive.value.matches,
        "blocking must not lose matches here"
    );
    assert!(blocked.calls < naive.calls);
    assert!(blocked.value.pruned_pairs > 0);
}

#[test]
fn cascade_routes_hard_items_to_strong_model() {
    let mut w = WorldModel::new();
    let items: Vec<ItemId> = (0..30)
        .map(|i| {
            let id = w.add_item(format!("ticket {i}"));
            w.set_flag(id, "urgent", i % 2 == 0);
            id
        })
        .collect();
    let world = Arc::new(w);
    let tier = |acc: f64, seed: u64| -> Arc<LlmClient> {
        let profile = ModelProfile::gpt35_like().with_noise(NoiseProfile {
            check_accuracy: acc,
            malformed_rate: 0.0,
            ..NoiseProfile::perfect()
        });
        Arc::new(
            LlmClient::new(Arc::new(SimulatedLlm::new(
                profile,
                Arc::clone(&world),
                seed,
            )))
            .without_cache(),
        )
    };
    let cascade = ModelCascade::new(
        vec![
            CascadeTier {
                client: tier(0.6, 1),
                accuracy: 0.6,
                votes: 5,
                temperature: 1.0,
            },
            CascadeTier {
                client: tier(0.99, 2),
                accuracy: 0.99,
                votes: 3,
                temperature: 1.0,
            },
        ],
        Corpus::from_world(&world, &items),
    )
    .with_margin(0.9);
    let tasks: Vec<TaskDescriptor> = items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "urgent".into(),
        })
        .collect();
    let out = cascade.ask_many(tasks).unwrap();
    let escalated = out.value.iter().filter(|v| v.deepest_tier == 1).count();
    assert!(
        escalated > 5,
        "weak tier should escalate often: {escalated}"
    );
    let correct = out
        .value
        .iter()
        .enumerate()
        .filter(|(i, v)| v.answer == (i % 2 == 0))
        .count();
    assert!(correct >= 25, "cascade accuracy {correct}/30");
}
