//! Failure-injection integration tests: transport errors, malformed
//! responses, context overflows, and extraction hazards exercised through
//! the full stack.

// The pre-PR10 per-knob builder methods stay exercised here on purpose:
// they are deprecated delegating shims and must keep working unchanged.
#![allow(deprecated)]

use std::sync::Arc;

use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::oracle::client::RetryPolicy;
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::oracle::LlmError;
use crowdprompt::prelude::*;

fn flagged_world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("item number {i}"));
            w.set_flag(id, "keep", i % 2 == 0);
            w.set_score(id, i as f64 / n as f64);
            id
        })
        .collect();
    (w, items)
}

/// Which dispatch stack a scenario runs against: a plain single-backend
/// client (retries in the client), or a routed registry of one or two
/// backends (retries in the routing layer). Transport-failure scenarios run
/// across all of them — their guarantees must not depend on the backend set.
#[derive(Debug, Clone, Copy)]
enum Fleet {
    Direct,
    RoutedSingle,
    RoutedPair,
}

const ALL_FLEETS: [Fleet; 3] = [Fleet::Direct, Fleet::RoutedSingle, Fleet::RoutedPair];

/// Build a session over the given fleet with `attempts` total transport
/// attempts per call (however the stack spreads them).
///
/// The routed fleets pin an effectively-disabled circuit breaker: these
/// scenarios drive 100%-failure storms through parallel workers, and a
/// default-threshold breaker would race the assertions (tripping turns
/// `RetriesExhausted` into `CircuitOpen` depending on scheduling). The
/// retry contract is the thing under test here; breaker behaviour has its
/// own tests in `oracle::route`.
fn fleet_session(
    noise: NoiseProfile,
    attempts: u32,
    seed: u64,
    fleet: Fleet,
) -> (Session, Vec<ItemId>) {
    use crowdprompt::oracle::route::BreakerConfig;
    let (w, items) = flagged_world(30);
    let profile = ModelProfile::gpt35_like().with_noise(noise);
    let llm: Arc<dyn LanguageModel> =
        Arc::new(SimulatedLlm::new(profile, Arc::new(w.clone()), seed));
    let routed = |backends: Vec<Arc<dyn Backend>>| {
        Arc::new(LlmClient::routed(
            BackendRegistry::new(backends).unwrap(),
            RoutePolicy {
                max_retries: attempts.saturating_sub(1),
                breaker: BreakerConfig {
                    failure_threshold: u32::MAX,
                    cooldown: std::time::Duration::from_millis(1),
                },
                ..RoutePolicy::default()
            },
        ))
    };
    let builder = Session::builder()
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index");
    let session = match fleet {
        Fleet::Direct => builder.client(Arc::new(LlmClient::new(llm).with_retry(RetryPolicy {
            max_attempts: attempts,
            backoff_ms: 0,
        }))),
        Fleet::RoutedSingle => builder.client(routed(vec![
            Arc::new(SimBackend::new("solo", llm)) as Arc<dyn Backend>
        ])),
        Fleet::RoutedPair => builder.client(routed(vec![
            Arc::new(SimBackend::new("east", Arc::clone(&llm))) as Arc<dyn Backend>,
            Arc::new(SimBackend::new("west", llm)) as Arc<dyn Backend>,
        ])),
    }
    .build();
    (session, items)
}

/// Transport retries performed anywhere in the stack: the client's own
/// retry loop plus the routing layer's cross-backend retries.
fn transport_retries(session: &Session) -> u64 {
    let client = session.engine().client();
    client.stats().retries() + client.router().map_or(0, |r| r.stats().retries)
}

fn session_with(noise: NoiseProfile, retry: RetryPolicy, seed: u64) -> (Session, Vec<ItemId>) {
    fleet_session(noise, retry.max_attempts, seed, Fleet::Direct)
}

#[test]
fn flaky_transport_is_absorbed_by_retries() {
    let noise = NoiseProfile {
        rate_limit_prob: 0.3,
        unavailable_prob: 0.1,
        ..NoiseProfile::perfect()
    };
    for fleet in ALL_FLEETS {
        let (session, items) = fleet_session(noise.clone(), 8, 5, fleet);
        // A 30-item filter fires 30 calls; with 40% failure probability and
        // 8 attempts, every call should eventually succeed — whichever
        // layer owns the retry loop.
        let out = session
            .filter(&items, "keep", FilterStrategy::Single)
            .expect("retries should absorb transient failures");
        assert_eq!(out.value.len(), 15, "{fleet:?}");
        // Retries actually happened somewhere in the stack.
        assert!(transport_retries(&session) > 0, "{fleet:?}");
    }
}

#[test]
fn persistent_transport_failure_surfaces_retries_exhausted() {
    let noise = NoiseProfile {
        rate_limit_prob: 1.0,
        ..NoiseProfile::perfect()
    };
    for fleet in ALL_FLEETS {
        let (session, items) = fleet_session(noise.clone(), 3, 6, fleet);
        let err = session
            .filter(&items, "keep", FilterStrategy::Single)
            .unwrap_err();
        match err {
            EngineError::Llm(LlmError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(
                    attempts, 3,
                    "{fleet:?}: total attempts are configured, not assumed"
                );
            }
            other => panic!("{fleet:?}: expected retry exhaustion, got {other:?}"),
        }
    }
}

#[test]
fn malformed_contradictory_chatter_is_still_extracted() {
    // Every answer is wrapped in the paper's "They are not the same...
    // They are the same." pattern; extraction must still resolve them and
    // the perfect underlying answers must survive.
    let noise = NoiseProfile {
        malformed_rate: 1.0,
        chatter_level: 1.0,
        ..NoiseProfile::perfect()
    };
    let (session, items) = session_with(noise, RetryPolicy::default(), 7);
    let out = session
        .filter(&items, "keep", FilterStrategy::Single)
        .expect("extraction should survive contradictory chatter");
    assert_eq!(out.value.len(), 15, "answers must still be correct");
}

#[test]
fn context_overflow_fails_fast_with_diagnostics() {
    let (w, items) = flagged_world(4000);
    let profile = ModelProfile::gpt35_like(); // 4k-token window
    let llm = SimulatedLlm::new(profile, Arc::new(w.clone()), 8);
    let session = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .build();
    // 4000 items in one sort prompt cannot fit into 4096 tokens.
    let err = session
        .sort(
            &items,
            SortCriterion::LatentScore,
            &SortStrategy::SinglePrompt,
        )
        .unwrap_err();
    match err {
        EngineError::Llm(LlmError::ContextOverflow {
            prompt_tokens,
            context_window,
        }) => {
            assert!(prompt_tokens > context_window);
            assert_eq!(context_window, 4096);
        }
        other => panic!("expected context overflow, got {other:?}"),
    }
    // Nothing was spent on the failed call.
    assert_eq!(session.spent_usd(), 0.0);
}

#[test]
fn max_token_truncation_reported_as_length_finish() {
    use crowdprompt::oracle::task::{SortCriterion as SC, TaskDescriptor};
    use crowdprompt::oracle::types::FinishReason;
    let (w, items) = flagged_world(50);
    let llm = SimulatedLlm::new(ModelProfile::perfect(), Arc::new(w.clone()), 9);
    let client = LlmClient::new(Arc::new(llm));
    let req = CompletionRequest::new(
        "Sort everything.",
        TaskDescriptor::SortList {
            items: items.clone(),
            criterion: SC::LatentScore,
        },
    )
    .with_max_tokens(10);
    let resp = client.complete(&req).unwrap();
    assert_eq!(resp.finish_reason, FinishReason::Length);
    assert!(resp.usage.completion_tokens <= 10);
}

#[test]
fn breaker_opens_heals_and_degraded_batch_completes() {
    // End-to-end circuit-breaker recovery: a scripted outage fails the
    // backend's first calls, the breaker trips open, and a degrade-mode
    // batch started mid-outage keeps re-asking — sleeping the breaker's
    // advertised probe hints — until half-open probes heal the circuit and
    // every item completes. Nothing may quarantine.
    let (w, items) = flagged_world(30);
    let llm: Arc<dyn LanguageModel> = Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        11,
    ));
    // First 12 backend calls are an outage; everything after heals.
    let backend = SimBackend::new("healing", llm).with_fault_schedule(FaultSchedule::new(vec![
        FaultWindow::new(0, 12, FaultKind::Outage),
    ]));
    use crowdprompt::oracle::route::BreakerConfig;
    let client = Arc::new(LlmClient::routed(
        BackendRegistry::new(vec![Arc::new(backend) as Arc<dyn Backend>]).unwrap(),
        RoutePolicy {
            max_retries: 1,
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: std::time::Duration::from_millis(10),
            },
            ..RoutePolicy::default()
        },
    ));
    let session = Session::builder()
        .client(client)
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .failure_policy(FailurePolicy::Degrade { max_attempts: 60 })
        .build();

    let run = session
        .plan(session.query(&items).filter("keep"))
        .unwrap()
        .execute(&session)
        .unwrap();
    // Every keep-flagged item survived the outage.
    assert_eq!(run.output.items().unwrap().len(), 15);
    // The whole batch was salvaged: the step degraded transparently, with
    // zero casualties recorded in its salvage notes.
    assert_eq!(run.steps.len(), 1);
    assert_eq!(run.steps[0].quarantined_count(), 0);
    assert!(
        !run.steps[0].salvage.is_empty(),
        "degrade mode leaves a note"
    );
    // The breaker genuinely opened during the outage...
    let stats = session.engine().client().router().unwrap().stats();
    assert!(
        stats.per_backend[0].breaker_trips >= 1,
        "outage should trip the breaker: {stats:?}"
    );
    // ...and genuinely healed: it is closed now, and a fresh operation
    // completes first-try (served from cache or a healthy backend).
    assert!(!stats.per_backend[0].open, "breaker should have re-closed");
    let again = session
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    assert_eq!(again.value.len(), 15);
}

#[test]
fn cache_prevents_double_billing_across_repeated_operations() {
    let (session, items) = session_with(NoiseProfile::perfect(), RetryPolicy::default(), 10);
    session
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    let spent_once = session.spent_usd();
    let calls_once = session.engine().client().stats().calls();
    // Identical operation: every unit task is a cache hit.
    session
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    assert_eq!(session.engine().client().stats().calls(), calls_once);
    assert!(session.engine().client().stats().cache_hits() >= items.len() as u64);
    // Budget spend does not grow on cached responses.
    assert_eq!(session.spent_usd(), spent_once);
}
