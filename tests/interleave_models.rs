//! Deterministic interleaving models of the repo's five hottest concurrency
//! protocols, driven by the `interleave` explorer (see its crate docs).
//!
//! Each model is a *closed* re-statement of the protocol as implemented in
//! the real code — same lock/condvar discipline, same state machine — small
//! enough for schedule exploration. The explorer runs each through thousands
//! of distinct schedules (seeded-random preemption; override the budget with
//! `INTERLEAVE_SCHEDULES`), failing on any deadlock, lost wakeup, or
//! protocol-invariant violation, and printing the decision trace of a
//! failing schedule for `interleave::replay`.
//!
//! | model | mirrors |
//! |-------|---------|
//! | flight handoff        | `oracle::client` coalescing leader/joiner publish |
//! | breaker half-open     | `oracle::route` probe claim vs concurrent callers |
//! | journal torn tail     | `core::journal` append crash + truncate-at-open  |
//! | hedged cancel         | `oracle::route` first-success vs twin cancel     |
//! | lease quota           | `oracle::route` reserve/confirm/release + expiry |

use std::sync::Arc;

use interleave::{choice, spawn, Condvar, Config, Mutex};

/// Per-model schedule budget; CI pins `INTERLEAVE_SCHEDULES` to bound wall
/// time, local runs default high enough to clear the 1,000-distinct bar.
fn iterations() -> usize {
    interleave::budget(3000)
}

/// The distinct-schedule coverage floor scales down with a pinned budget so
/// a quick `INTERLEAVE_SCHEDULES=50` smoke run still passes.
fn required_distinct(iterations: usize) -> usize {
    (iterations / 3).clamp(1, 1000)
}

/// Model 1 — coalescing flight handoff (`client.rs`): N threads race for
/// the same cache key; the first claims the flight and dispatches the
/// backend exactly once, publishing through `Mutex<Option<_>> + Condvar`;
/// the rest join the flight and wait for the published result.
///
/// Invariants: exactly one backend call, every joiner observes the leader's
/// result, no joiner waits forever (notify_all after publish).
#[test]
fn flight_handoff_coalesces_to_one_backend_call() {
    struct Flight {
        state: Mutex<FlightState>,
        cv: Condvar,
    }
    #[derive(Default)]
    struct FlightState {
        claimed: bool,
        result: Option<u32>,
        backend_calls: u32,
    }

    let n = iterations();
    let report = interleave::explore(Config::random(0x1eaf, n), || {
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::default()),
            cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for _ in 0..3 {
            let flight = Arc::clone(&flight);
            handles.push(spawn(move || {
                let mut s = flight.state.lock();
                if !s.claimed {
                    // Leader: claim under the lock, dispatch outside it.
                    s.claimed = true;
                    drop(s);
                    interleave::yield_now(); // the backend call
                    let mut s = flight.state.lock();
                    s.backend_calls += 1;
                    s.result = Some(42);
                    drop(s);
                    flight.cv.notify_all();
                } else {
                    // Joiner: wait out the flight.
                    while s.result.is_none() {
                        s = flight.cv.wait(s);
                    }
                    assert_eq!(s.result, Some(42), "joiner saw a foreign result");
                }
            }));
        }
        for h in handles {
            h.join();
        }
        let s = flight.state.lock();
        assert_eq!(s.backend_calls, 1, "flight dispatched more than once");
        assert_eq!(s.result, Some(42));
    });
    assert!(
        report.distinct >= required_distinct(n),
        "coverage too low: {report:?}"
    );
}

/// Model 2 — circuit-breaker half-open probe (`route.rs`): the breaker is
/// open and cooled down; three callers race. Exactly one may claim the
/// half-open probe slot (`probing = true` under the breaker lock); its
/// dispatch outcome (explored via `choice`) either closes the breaker or
/// re-opens the cooldown — and the slot is released on *both* paths.
///
/// Invariants: at most one probe in flight at any instant, the probe slot is
/// never stranded (`probing == false` once all callers settle), success
/// closes the breaker, failure re-arms the cooldown.
#[test]
fn breaker_half_open_admits_exactly_one_probe() {
    #[derive(Default)]
    struct Breaker {
        open: bool,
        cooled: bool,
        probing: bool,
        probes_claimed: u32,
        probes_in_flight: u32,
        succeeded: bool,
    }

    let n = iterations();
    let report = interleave::explore(Config::random(0xb4ea, n), || {
        let breaker = Arc::new(Mutex::new(Breaker {
            open: true,
            cooled: true,
            ..Breaker::default()
        }));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let breaker = Arc::clone(&breaker);
            handles.push(spawn(move || {
                let mut b = breaker.lock();
                if !b.open {
                    return; // breaker closed by a successful probe: normal dispatch
                }
                if !b.cooled || b.probing {
                    return; // open and uncooled, or probe already claimed: fail fast
                }
                // Claim the half-open slot — only the dispatching caller
                // may, and only under the lock.
                b.probing = true;
                b.probes_claimed += 1;
                b.probes_in_flight += 1;
                assert_eq!(b.probes_in_flight, 1, "two probes in flight");
                drop(b);
                interleave::yield_now(); // the probe dispatch
                let success = choice(2) == 0;
                let mut b = breaker.lock();
                b.probes_in_flight -= 1;
                b.probing = false; // released on BOTH outcome paths
                if success {
                    b.open = false;
                    b.succeeded = true;
                } else {
                    b.cooled = false; // fresh cooldown
                }
            }));
        }
        for h in handles {
            h.join();
        }
        let b = breaker.lock();
        assert!(!b.probing, "probe slot stranded: breaker starved forever");
        assert_eq!(b.probes_in_flight, 0);
        assert!(
            b.probes_claimed <= 1,
            "cooldown admitted {} probes",
            b.probes_claimed
        );
        if b.succeeded {
            assert!(!b.open, "successful probe must close the breaker");
        }
    });
    assert!(
        report.distinct >= required_distinct(n),
        "coverage too low: {report:?}"
    );
}

/// Model 3 — journal append vs torn-tail truncate (`journal.rs`): appenders
/// serialize whole-record writes (header + body) under the journal lock; a
/// crash (explored via `choice`) can stop the *process* between the two
/// halves, leaving a torn tail. Recovery scans the buffer and truncates at
/// the last complete record boundary.
///
/// Invariants: append is atomic w.r.t. other appenders (no interleaved
/// halves), recovery never leaves a torn record, and every record completed
/// before the crash survives recovery.
#[test]
fn journal_recovery_truncates_exactly_the_torn_tail() {
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Token {
        Header(u32),
        Body(u32),
    }
    #[derive(Default)]
    struct Journal {
        buf: Vec<Token>,
        crashed: bool,
        completed: u32,
    }

    let n = iterations();
    let report = interleave::explore(Config::random(0x70a4, n), || {
        let journal = Arc::new(Mutex::new(Journal::default()));
        let mut handles = Vec::new();
        for id in 0..2u32 {
            let journal = Arc::clone(&journal);
            handles.push(spawn(move || {
                let mut j = journal.lock();
                if j.crashed {
                    return; // process died before this append
                }
                j.buf.push(Token::Header(id));
                // The lock is HELD across the yield: other appenders must
                // not interleave their halves into this record. The yield
                // models the buffered-write window a crash can hit.
                interleave::yield_now();
                if choice(2) == 1 {
                    j.crashed = true; // torn tail: header with no body
                    return;
                }
                j.buf.push(Token::Body(id));
                j.completed += 1;
            }));
        }
        for h in handles {
            h.join();
        }
        // Recovery at reopen: truncate after the last complete record.
        let mut j = journal.lock();
        let mut valid = 0;
        while valid + 1 < j.buf.len() || (valid < j.buf.len() && valid % 2 == 1) {
            match (j.buf.get(valid), j.buf.get(valid + 1)) {
                (Some(Token::Header(a)), Some(Token::Body(b))) if a == b => valid += 2,
                _ => break,
            }
        }
        let completed = j.completed;
        j.buf.truncate(valid);
        // No torn record survives...
        assert!(
            j.buf.len() % 2 == 0,
            "torn record after recovery: {:?}",
            j.buf
        );
        for pair in j.buf.chunks(2) {
            match (pair[0], pair[1]) {
                (Token::Header(a), Token::Body(b)) => {
                    assert_eq!(a, b, "interleaved halves: {:?}", j.buf)
                }
                other => panic!("corrupt pair after recovery: {other:?}"),
            }
        }
        // ...and every record completed before the crash does.
        assert_eq!(
            j.buf.len() as u32 / 2,
            completed,
            "recovery dropped a completed record (or kept a torn one)"
        );
    });
    assert!(
        report.distinct >= required_distinct(n),
        "coverage too low: {report:?}"
    );
}

/// Model 4 — hedged dispatch, first-success vs twin cancel (`route.rs`):
/// two attempt threads race a request; each *always* reports its outcome
/// (explored via `choice`) into the channel, cancelled or not — the real
/// code's guarantee that the coordinator's `recv` can never hang. The
/// coordinator takes the first success as the winner and cancels the twin;
/// the twin's result is discarded, never surfaced.
///
/// Invariants: the coordinator always collects exactly two reports (no lost
/// wakeup), at most one winner, a surfaced winner implies its attempt
/// really succeeded, and the loser is cancelled whenever a winner exists.
#[test]
fn hedged_dispatch_surfaces_exactly_one_result() {
    struct Chan {
        inbox: Mutex<ChanState>,
        cv: Condvar,
    }
    #[derive(Default)]
    struct ChanState {
        messages: Vec<(usize, bool)>,
        cancel: [bool; 2],
    }

    let n = iterations();
    let report = interleave::explore(Config::random(0x4ed6, n), || {
        let chan = Arc::new(Chan {
            inbox: Mutex::new(ChanState::default()),
            cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for attempt in 0..2usize {
            let chan = Arc::clone(&chan);
            handles.push(spawn(move || {
                interleave::yield_now(); // the backend call
                let outcome_ok = choice(2) == 0;
                let mut inbox = chan.inbox.lock();
                // A cancelled attempt still reports (as a failure): dropping
                // the report instead is the lost-wakeup bug the real code
                // guards against by moving senders into the attempt threads.
                let report_ok = outcome_ok && !inbox.cancel[attempt];
                inbox.messages.push((attempt, report_ok));
                drop(inbox);
                chan.cv.notify_one();
            }));
        }
        // Coordinator: first success wins, twin gets cancelled.
        let mut winner: Option<usize> = None;
        let mut received = 0;
        while received < 2 {
            let mut inbox = chan.inbox.lock();
            while inbox.messages.is_empty() {
                inbox = chan.cv.wait(inbox);
            }
            let (attempt, ok) = inbox.messages.remove(0);
            received += 1;
            if ok && winner.is_none() {
                winner = Some(attempt);
                inbox.cancel[1 - attempt] = true;
            }
        }
        for h in handles {
            h.join();
        }
        let inbox = chan.inbox.lock();
        assert!(inbox.messages.is_empty(), "more reports than attempts");
        if let Some(w) = winner {
            assert!(inbox.cancel[1 - w], "winner exists but twin not cancelled");
            assert!(!inbox.cancel[w], "the winner itself was cancelled");
        }
    });
    assert!(
        report.distinct >= required_distinct(n),
        "coverage too low: {report:?}"
    );
}

/// Model 5 — backend-slot quota lease (`route.rs` [`LeaseTable`], driven by
/// `core::serve`): workers race a 2-slot table through the full
/// reserve → confirm → dispatch → release protocol while a clock thread
/// advances the generation counter; `choice` lets any worker crash between
/// reserve and confirm, abandoning its reservation with no release.
///
/// Invariants, mirroring the real table's guarantees:
/// * a slot is only re-granted after its current lease's expiry generation
///   has passed (the reserve-time sweep) — so two dispatchers can overlap
///   on one slot *only* across an expiry, never within a live lease;
/// * release is token-checked: a holder whose lease was swept and
///   re-granted mid-dispatch must not free the new holder's slot;
/// * nothing is stranded: once the clock passes every expiry, every slot
///   is reclaimable even though crashed workers never released.
#[test]
fn lease_quota_regrants_only_across_expiry_and_strands_nothing() {
    const CAPACITY: usize = 2;
    const TTL: u64 = 2;

    #[derive(Clone, Copy)]
    enum Slot {
        Free,
        Held {
            token: u64,
            expires: u64,
            confirmed: bool,
        },
    }
    struct Table {
        slots: Vec<Slot>,
        next_token: u64,
        gen: u64,
        /// Dispatchers currently inside the leased region, per slot.
        occupancy: Vec<u32>,
        /// The previous confirmed holder's expiry, per slot.
        prev_expires: Vec<u64>,
    }

    let n = iterations();
    let report = interleave::explore(Config::random(0x1ea5e, n), || {
        let table = Arc::new(Mutex::new(Table {
            slots: vec![Slot::Free; CAPACITY],
            next_token: 1,
            gen: 0,
            occupancy: vec![0; CAPACITY],
            prev_expires: vec![0; CAPACITY],
        }));
        let mut handles = Vec::new();
        // The clock: generations advance concurrently with the protocol,
        // exactly as `Server::advance_generation` races in-flight batches.
        {
            let table = Arc::clone(&table);
            handles.push(spawn(move || {
                for _ in 0..2 {
                    interleave::yield_now();
                    table.lock().gen += 1;
                }
            }));
        }
        for _ in 0..3 {
            let table = Arc::clone(&table);
            handles.push(spawn(move || {
                // Reserve: sweep expired leases, else take a free slot.
                let mut t = table.lock();
                let now = t.gen;
                let Some(slot) = t.slots.iter().position(|s| match s {
                    Slot::Free => true,
                    Slot::Held { expires, .. } => *expires <= now,
                }) else {
                    return; // saturated: shed, never wait under the lock
                };
                let token = t.next_token;
                t.next_token += 1;
                t.slots[slot] = Slot::Held {
                    token,
                    expires: now + TTL,
                    confirmed: false,
                };
                drop(t);

                interleave::yield_now(); // admission work before dispatch
                if choice(2) == 1 {
                    return; // crash: reservation abandoned, no release
                }

                // Confirm: revalidate token + liveness, renew the expiry.
                let mut t = table.lock();
                let now = t.gen;
                match &mut t.slots[slot] {
                    Slot::Held {
                        token: held,
                        expires,
                        confirmed,
                    } if *held == token && *expires > now => {
                        *expires = now + TTL;
                        *confirmed = true;
                    }
                    _ => return, // reclaimed while we dawdled: shed
                }
                if t.occupancy[slot] > 0 {
                    // The only legal overlap: our reserve swept a lease
                    // whose expiry had already passed.
                    assert!(
                        t.prev_expires[slot] <= now,
                        "slot re-granted inside a live lease"
                    );
                }
                t.occupancy[slot] += 1;
                t.prev_expires[slot] = now + TTL;
                drop(t);

                interleave::yield_now(); // the dispatch itself

                // Release: token-checked, harmless when stale.
                let mut t = table.lock();
                t.occupancy[slot] -= 1;
                match t.slots[slot] {
                    Slot::Held { token: held, .. } if held == token => {
                        t.slots[slot] = Slot::Free;
                    }
                    Slot::Held { .. } => {
                        // Swept and re-granted mid-dispatch: the new
                        // holder's lease must survive our cleanup.
                    }
                    Slot::Free => panic!("release found a foreign free: double-free"),
                }
            }));
        }
        for h in handles {
            h.join();
        }

        let mut t = table.lock();
        assert!(
            t.occupancy.iter().all(|&o| o == 0),
            "dispatcher left inside the leased region"
        );
        // Crashed workers never released — but nothing may be stranded:
        // past every expiry, each slot is free or sweepable.
        t.gen += TTL + 1;
        let now = t.gen;
        for (index, slot) in t.slots.iter().enumerate() {
            match slot {
                Slot::Free => {}
                Slot::Held { expires, .. } => assert!(
                    *expires <= now,
                    "slot {index} stranded beyond every holder's TTL"
                ),
            }
        }
    });
    assert!(
        report.distinct >= required_distinct(n),
        "coverage too low: {report:?}"
    );
}
