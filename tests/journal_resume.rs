//! Crash/resume property tests for the run journal (PR 7).
//!
//! The contract under test: a run journaled to disk, killed at an
//! *arbitrary byte* of the journal file, and resumed by a completely fresh
//! process stack (new client, new cache, new budget) produces results and
//! accounting **bit-identical** to the run that was never interrupted —
//! and re-dispatches only the tasks the torn journal lost.
//!
//! Determinism notes baked into the setup:
//!
//! * `parallelism(1)` — the budget tracker sums `f64` spend in completion
//!   order, and f64 addition is order-dependent; one worker pins the order
//!   so spend can be compared bit-for-bit.
//! * The cost ledger stores integer nanodollars, so it is order-independent
//!   and always comparable exactly.
//! * `NoiseProfile::perfect()` at temperature 0 — the simulated model is a
//!   pure function of the request, so a re-dispatched gap task returns the
//!   same bytes the lost original did.

// The pre-PR10 per-knob builder methods stay exercised here on purpose:
// they are deprecated delegating shims and must keep working unchanged.
#![allow(deprecated)]

use std::path::PathBuf;
use std::sync::Arc;

use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "crowdprompt-resume-test-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

fn keep_world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("record number {i}"));
            w.set_flag(id, "keep", i % 3 == 0);
            id
        })
        .collect();
    (w, items)
}

/// A fresh, fully independent session stack journaling to `journal`:
/// new simulated model, new client (empty cache, zeroed ledger), new
/// budget tracker. Only the journal file carries state between stacks.
fn journaled_session(w: &WorldModel, items: &[ItemId], seed: u64, journal: &PathBuf) -> Session {
    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        seed,
    );
    Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(w, items))
        .criterion("by index")
        .parallelism(1)
        .journal_path(journal)
        .build()
}

/// Everything the resume contract pins, captured after a run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    kept: Vec<ItemId>,
    budget_spend_bits: u64,
    ledger_spend_bits: u64,
    ledger_calls: u64,
    ledger_prompt_tokens: u32,
    ledger_completion_tokens: u32,
}

fn run_filter(session: &Session, items: &[ItemId]) -> Fingerprint {
    let out = session
        .filter(items, "keep", FilterStrategy::Single)
        .expect("perfect-noise filter must succeed");
    let ledger = session.engine().client().ledger();
    let usage = ledger.usage();
    Fingerprint {
        kept: out.value,
        budget_spend_bits: session.spent_usd().to_bits(),
        ledger_spend_bits: ledger.spend_usd().to_bits(),
        ledger_calls: ledger.calls(),
        ledger_prompt_tokens: usage.prompt_tokens,
        ledger_completion_tokens: usage.completion_tokens,
    }
}

proptest! {
    /// Kill the journal at an arbitrary byte and resume on a fresh stack:
    /// results and accounting are bit-identical to the uninterrupted run,
    /// and only the tasks the torn journal lost are re-dispatched.
    #[test]
    fn resume_after_torn_journal_is_bit_identical(
        (n, cut_permille) in (8usize..32, 0u64..1001),
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = keep_world(n);

        // Uninterrupted reference run.
        let clean_path = temp_path("clean");
        let clean_session = journaled_session(&w, &items, seed, &clean_path);
        let reference = run_filter(&clean_session, &items);
        prop_assert_eq!(reference.ledger_calls, n as u64);

        // Simulate a crash: copy the journal and chop it at an arbitrary
        // byte past the header (the header is one flushed write at open,
        // so a real crash can only tear after it).
        let bytes = std::fs::read(&clean_path).unwrap();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut = header_len + (bytes.len() - header_len) * cut_permille as usize / 1000;
        let torn_path = temp_path("torn");
        std::fs::write(&torn_path, &bytes[..cut]).unwrap();

        // How many whole records survived the tear (open() drops the torn
        // tail; count with a scratch handle, then drop it before the
        // resuming session opens the file for real).
        let intact = {
            let scratch = RunJournal::open(&torn_path).unwrap();
            scratch.len()
        };
        prop_assert!(intact <= n);

        // Resume on a completely fresh stack.
        let resumed_session = journaled_session(&w, &items, seed, &torn_path);
        let resumed = run_filter(&resumed_session, &items);

        // Bit-identical results and accounting: same kept set, same budget
        // spend bits, same ledger (calls, tokens, spend bits).
        prop_assert_eq!(&resumed, &reference);

        // Replayed records were NOT re-dispatched: the client saw exactly
        // the gap, and the journal is whole again afterwards.
        let dispatched = resumed_session.engine().client().stats().calls();
        prop_assert_eq!(dispatched, (n - intact) as u64);
        prop_assert_eq!(
            resumed_session.engine().journal().unwrap().len(),
            n,
            "resume must re-journal the gap"
        );

        std::fs::remove_file(&clean_path).ok();
        std::fs::remove_file(&torn_path).ok();
    }
}

#[test]
fn full_journal_resume_dispatches_nothing() {
    let (w, items) = keep_world(20);
    let path = temp_path("full");
    let first = journaled_session(&w, &items, 17, &path);
    let reference = run_filter(&first, &items);
    drop(first);

    // Same journal, untouched: the resumed run is pure replay.
    let resumed = journaled_session(&w, &items, 17, &path);
    let replayed = run_filter(&resumed, &items);
    assert_eq!(replayed, reference);
    assert_eq!(
        resumed.engine().client().stats().calls(),
        0,
        "a complete journal must serve the whole run without dispatching"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn journaling_does_not_change_results_or_spend() {
    // A journaled run and a journal-free run of the same operation agree
    // on results and accounting: the journal is pure durability, invisible
    // to the run it records.
    let (w, items) = keep_world(20);
    let path = temp_path("invisible");
    let journaled = journaled_session(&w, &items, 23, &path);
    let with_journal = run_filter(&journaled, &items);

    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        23,
    );
    let bare = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .parallelism(1)
        .build();
    let without_journal = run_filter(&bare, &items);
    assert_eq!(with_journal, without_journal);
    std::fs::remove_file(&path).ok();
}
