//! Negative tests for the shim's lock diagnostics: prove every detector in
//! `parking_lot::diagnostics` actually fires on the bug shape it exists to
//! catch. Compiled (and run by the CI `lint-and-diagnostics` job) only under
//! `RUSTFLAGS="--cfg lock_diagnostics"`; in the default build this file is
//! empty.
//!
//! Each test builds the smallest program with the target defect — a
//! deliberately inverted lock pair, a cycle through three locks, a
//! re-entrant acquire, a guard held across a blocking boundary — and
//! asserts the detector reports it, while the well-ordered twin stays
//! silent.
#![cfg(lock_diagnostics)]

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use parking_lot::diagnostics::{expect_violations, FindingKind};
use parking_lot::{blocking_region, Condvar, Mutex, RwLock};

#[test]
fn inverted_lock_pair_reports_order_inversion() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    // Establish the order a -> b...
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // ...then deliberately invert it. The diagnostic fires at acquisition
    // time, even though nothing deadlocks in this single-threaded run.
    let (_, findings) = expect_violations(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    });
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].kind, FindingKind::OrderInversion);
    assert!(
        findings[0].message.contains("error[lock-order-inversion]"),
        "message: {}",
        findings[0].message
    );
    // Both the inverting acquisition and the first-observed opposite order
    // are cited, so the report is actionable without a debugger.
    assert!(findings[0].message.contains("--> "));
    assert!(findings[0]
        .message
        .contains("opposite order first observed"));
}

#[test]
fn three_lock_cycle_reports_order_cycle() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    let c = Mutex::new(());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let (_, findings) = expect_violations(|| {
        let _gc = c.lock();
        let _ga = a.lock(); // closes c -> a -> b -> c
    });
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].kind, FindingKind::OrderCycle);
    assert!(findings[0].message.contains("error[lock-order-cycle]"));
}

#[test]
fn mixed_mutex_rwlock_inversion_is_detected() {
    let m = Mutex::new(());
    let rw = RwLock::new(());
    {
        let _gm = m.lock();
        let _gr = rw.read();
    }
    let (_, findings) = expect_violations(|| {
        let _gw = rw.write();
        let _gm = m.lock();
    });
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].kind, FindingKind::OrderInversion);
    assert!(findings[0].message.contains("rwlock"));
}

#[test]
fn self_reacquire_panics_before_the_deadlock() {
    let m = Arc::new(Mutex::new(0u32));
    // SelfReacquire must panic even under expect_violations: returning
    // would relock and genuinely hang the test binary.
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let (_, _) = expect_violations(|| {
            let _g1 = m.lock();
            let _g2 = m.lock();
        });
    }));
    let err = result.expect_err("reacquisition must panic, not hang");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(
        message.contains("error[lock-self-reacquire]"),
        "panic message: {message}"
    );
}

#[test]
fn guard_held_across_blocking_region_is_reported() {
    let m = Mutex::new(());
    let (_, findings) = expect_violations(|| {
        let _g = m.lock();
        blocking_region("backend dispatch (test)");
    });
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].kind, FindingKind::HeldAcrossBlocking);
    assert!(findings[0].message.contains("backend dispatch (test)"));
}

#[test]
fn second_guard_held_across_condvar_wait_is_reported() {
    let outer = Mutex::new(());
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    // A helper thread flips the flag so the wait returns; the finding is
    // about the *outer* guard surviving the park, not the wait itself.
    let waker = {
        let pair = Arc::clone(&pair);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            *pair.0.lock() = true;
            pair.1.notify_all();
        })
    };
    let (_, findings) = expect_violations(|| {
        let _outer = outer.lock();
        let mut ready = pair.0.lock();
        while !*ready {
            pair.1.wait(&mut ready);
        }
    });
    waker.join().expect("waker thread");
    assert_eq!(findings.len(), 1, "findings: {findings:?}");
    assert_eq!(findings[0].kind, FindingKind::HeldAcrossBlocking);
    assert!(findings[0].message.contains("Condvar::wait"));
}

#[test]
fn well_ordered_nesting_stays_silent() {
    let a = Mutex::new(());
    let b = RwLock::new(());
    let (_, findings) = expect_violations(|| {
        // Consistent a -> b order, guards dropped before any blocking
        // boundary: the discipline the whole repo is linted to.
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.read();
        }
        drop(a.lock());
        blocking_region("backend dispatch (clean)");
    });
    assert!(findings.is_empty(), "false positives: {findings:?}");
}
