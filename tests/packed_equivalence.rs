//! Packed/per-item equivalence: for every packing-enabled operator ×
//! strategy, execution with multi-item prompt packing must produce
//! bit-identical results to the per-item path, and the operator's reported
//! spend must agree exactly with the client ledger and the budget tracker.
//!
//! The model profile used here answers with *accuracy 1.0* (verdicts are a
//! pure function of the world) while injecting every formatting hazard the
//! extraction layer handles — heavy chatter, the paper's contradictory
//! malformed pattern, and (in the bisection tests) a fault-injecting sim
//! world whose packed numbered lists come back with dropped or duplicated
//! lines. Equality below therefore pins the *packing mechanics* — chunking,
//! multi-answer parsing, bisection, reassembly — independent of model
//! noise. With answer noise, packed answers are draws from the same
//! calibrated distribution but not the same draws; the bisection guarantee
//! is that any pack the parser rejects degrades, item by item, into exactly
//! the per-item requests.
//!
//! Each comparison runs on two *fresh* engines built from the same world
//! and simulator seed, so neither path can borrow the other's cache.

use std::sync::Arc;

use crowdprompt::core::ops;
use crowdprompt::core::ops::impute::LabeledPool;
use crowdprompt::core::{Budget, Corpus, Engine};
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::oracle::{LlmClient, ModelProfile, SimulatedLlm};
use crowdprompt::prelude::*;

/// Accuracy-1.0 noise with every formatting hazard turned up.
fn chatty_noise(packed_dropout_rate: f64) -> NoiseProfile {
    NoiseProfile {
        chatter_level: 0.9,
        malformed_rate: 0.3,
        packed_dropout_rate,
        ..NoiseProfile::perfect()
    }
}

fn world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let id = w.add_item(format!(
            "catalog record {i:03} vendor {} lot {}",
            i % 7,
            i % 13
        ));
        w.set_flag(id, "active", i % 2 == 0);
        w.set_flag(id, "rare", i % 5 == 0);
        w.set_attr(id, "label", if i % 3 == 0 { "bulk" } else { "retail" });
        ids.push(id);
    }
    (w, ids)
}

/// A fresh engine over a fresh copy of the world (same seed).
fn engine(n: usize, dropout: f64, pack: usize) -> (Engine, Vec<ItemId>) {
    let (w, ids) = world(n);
    let corpus = Corpus::from_world(&w, &ids);
    let profile = ModelProfile::perfect().with_noise(chatty_noise(dropout));
    let llm = Arc::new(SimulatedLlm::new(profile, Arc::new(w), 42));
    let engine = Engine::new(Arc::new(LlmClient::new(llm)), corpus)
        .with_budget(Budget::Unlimited)
        .with_pack_width(pack);
    (engine, ids)
}

/// The operator's reported accounting must agree exactly with the client
/// ledger and the budget tracker (no double counting across packed
/// dispatches, bisection retries, or singleton fallbacks).
fn assert_spend_attribution<T>(engine: &Engine, out: &crowdprompt::core::Outcome<T>) {
    let ledger = engine.client().ledger();
    assert_eq!(out.calls, ledger.calls(), "outcome calls == ledger calls");
    assert_eq!(
        u64::from(out.usage.total()),
        ledger.total_tokens(),
        "outcome usage == ledger usage"
    );
    assert_eq!(
        engine.budget().spent_tokens(),
        ledger.total_tokens(),
        "budget spend == ledger spend"
    );
}

#[test]
fn packed_filter_single_matches_per_item_at_every_width() {
    let (baseline_engine, ids) = engine(53, 0.0, 1);
    let baseline =
        ops::filter::filter(&baseline_engine, &ids, "active", FilterStrategy::Single).unwrap();
    assert_spend_attribution(&baseline_engine, &baseline);
    for width in [2, 7, 16, 64] {
        let (packed_engine, ids) = engine(53, 0.0, width);
        let packed =
            ops::filter::filter(&packed_engine, &ids, "active", FilterStrategy::Single).unwrap();
        assert_eq!(packed.value, baseline.value, "width {width}");
        assert_eq!(
            packed.calls,
            53u64.div_ceil(width as u64),
            "width {width} call count"
        );
        assert_spend_attribution(&packed_engine, &packed);
    }
}

#[test]
fn packed_majority_vote_matches_per_item() {
    let strategy = FilterStrategy::MajorityVote {
        votes: 5,
        temperature_pct: 70,
    };
    let (baseline_engine, ids) = engine(30, 0.0, 1);
    let baseline = ops::filter::filter(&baseline_engine, &ids, "rare", strategy).unwrap();
    let (packed_engine, ids) = engine(30, 0.0, 8);
    let packed = ops::filter::filter(&packed_engine, &ids, "rare", strategy).unwrap();
    assert_eq!(packed.value, baseline.value);
    // 5 vote rounds of ⌈30/8⌉ packs each.
    assert_eq!(packed.calls, 5 * 4);
    assert_spend_attribution(&packed_engine, &packed);
}

#[test]
fn confidence_gated_filter_ignores_the_pack_knob() {
    let strategy = FilterStrategy::ConfidenceGated {
        min_confidence_pct: 65,
        votes: 3,
    };
    let (baseline_engine, ids) = engine(24, 0.0, 1);
    let baseline = ops::filter::filter(&baseline_engine, &ids, "active", strategy).unwrap();
    let (packed_engine, ids) = engine(24, 0.0, 8);
    let gated = ops::filter::filter(&packed_engine, &ids, "active", strategy).unwrap();
    assert_eq!(gated.value, baseline.value);
    assert_eq!(
        gated.calls, baseline.calls,
        "the gate consumes per-answer confidence and must never pack"
    );
}

#[test]
fn forced_bisection_degrades_to_exactly_the_per_item_path() {
    // Every multi-item pack comes back unparseable: the dispatcher must
    // bisect down to singletons, whose requests *are* the per-item path's.
    let (baseline_engine, ids) = engine(37, 0.0, 1);
    let baseline =
        ops::filter::filter(&baseline_engine, &ids, "active", FilterStrategy::Single).unwrap();
    let (packed_engine, ids) = engine(37, 1.0, 16);
    let packed =
        ops::filter::filter(&packed_engine, &ids, "active", FilterStrategy::Single).unwrap();
    assert_eq!(packed.value, baseline.value);
    assert!(
        packed.calls > 37,
        "failed packs plus singleton retries exceed n, got {}",
        packed.calls
    );
    assert_spend_attribution(&packed_engine, &packed);
}

#[test]
fn partial_dropout_still_reassembles_identically() {
    let (baseline_engine, ids) = engine(61, 0.0, 1);
    let baseline =
        ops::filter::filter(&baseline_engine, &ids, "active", FilterStrategy::Single).unwrap();
    // Half the packs fail and bisect; results must be unchanged.
    let (packed_engine, ids) = engine(61, 0.5, 8);
    let packed =
        ops::filter::filter(&packed_engine, &ids, "active", FilterStrategy::Single).unwrap();
    assert_eq!(packed.value, baseline.value);
    assert_spend_attribution(&packed_engine, &packed);
}

#[test]
fn packed_count_matches_per_item() {
    let (baseline_engine, ids) = engine(47, 0.0, 1);
    let baseline =
        ops::count::count(&baseline_engine, &ids, "rare", CountStrategy::PerItem).unwrap();
    let (packed_engine, ids) = engine(47, 0.3, 16);
    let packed = ops::count::count(&packed_engine, &ids, "rare", CountStrategy::PerItem).unwrap();
    assert_eq!(packed.value, baseline.value);
    assert_spend_attribution(&packed_engine, &packed);

    // Eyeball batches are already one-prompt-per-batch: the knob is inert.
    let (a, ids) = engine(40, 0.0, 1);
    let (b, ids_b) = engine(40, 0.0, 16);
    assert_eq!(ids, ids_b);
    let strategy = CountStrategy::Eyeball { batch_size: 10 };
    let coarse_a = ops::count::count(&a, &ids, "rare", strategy).unwrap();
    let coarse_b = ops::count::count(&b, &ids, "rare", strategy).unwrap();
    assert_eq!(coarse_a.value, coarse_b.value);
    assert_eq!(coarse_a.calls, coarse_b.calls);
}

#[test]
fn packed_categorize_matches_per_item() {
    let labels = vec!["bulk".to_owned(), "retail".to_owned()];
    let (baseline_engine, ids) = engine(44, 0.0, 1);
    let baseline = ops::categorize::categorize(&baseline_engine, &ids, &labels).unwrap();
    let (packed_engine, ids) = engine(44, 0.4, 12);
    let packed = ops::categorize::categorize(&packed_engine, &ids, &labels).unwrap();
    assert_eq!(packed.value, baseline.value);
    assert_spend_attribution(&packed_engine, &packed);
}

#[test]
fn packed_keep_label_plan_matches_per_item_plan() {
    let labels = vec!["bulk".to_owned(), "retail".to_owned()];
    let run_with = |pack: usize, dropout: f64| {
        let (engine, ids) = engine(36, dropout, pack);
        let run = Query::over(&ids)
            .keep_label(labels.clone(), "bulk")
            .plan_on(&engine)
            .unwrap()
            .execute_on(&engine)
            .unwrap();
        run.output.items().unwrap().to_vec()
    };
    let baseline = run_with(1, 0.0);
    assert_eq!(run_with(9, 0.0), baseline);
    assert_eq!(run_with(9, 1.0), baseline, "forced bisection");
}

/// Records in two well-separated text clusters plus ambiguous strays, for
/// the impute strategies.
fn impute_world() -> (WorldModel, Vec<ItemId>, Vec<(ItemId, String)>) {
    let mut w = WorldModel::new();
    let mut ids = Vec::new();
    let mut labeled = Vec::new();
    for i in 0..10 {
        let id = w.add_item(format!("mission taqueria {i}; street valencia; area 415"));
        w.set_attr(id, "city", "san francisco");
        labeled.push((id, "san francisco".to_owned()));
        ids.push(id);
    }
    for i in 0..10 {
        let id = w.add_item(format!("shattuck bistro {i}; street shattuck; area 510"));
        w.set_attr(id, "city", "berkeley");
        labeled.push((id, "berkeley".to_owned()));
        ids.push(id);
    }
    for i in 0..6 {
        let id = w.add_item(format!("corner diner {i}; street main"));
        let city = if i % 2 == 0 {
            "san francisco"
        } else {
            "berkeley"
        };
        w.set_attr(id, "city", city);
        ids.push(id);
    }
    (w, ids, labeled)
}

#[test]
fn packed_impute_matches_per_item_for_llm_and_hybrid() {
    let build = |pack: usize, dropout: f64| {
        let (w, ids, labeled) = impute_world();
        let corpus = Corpus::from_world(&w, &ids);
        let profile = ModelProfile::perfect().with_noise(chatty_noise(dropout));
        let llm = Arc::new(SimulatedLlm::new(profile, Arc::new(w), 13));
        let engine = Engine::new(Arc::new(LlmClient::new(llm)), corpus)
            .with_budget(Budget::Unlimited)
            .with_pack_width(pack);
        (engine, ids, labeled)
    };
    for strategy in [
        ImputeStrategy::LlmOnly { shots: 0 },
        ImputeStrategy::LlmOnly { shots: 3 },
        ImputeStrategy::Hybrid { k: 3, shots: 2 },
    ] {
        let (baseline_engine, ids, labeled) = build(1, 0.0);
        let pool = LabeledPool::build(&baseline_engine, &labeled).unwrap();
        let baseline =
            ops::impute::impute(&baseline_engine, &ids, "city", &pool, &strategy).unwrap();

        let (packed_engine, ids, labeled) = build(8, 0.4);
        let pool = LabeledPool::build(&packed_engine, &labeled).unwrap();
        let packed = ops::impute::impute(&packed_engine, &ids, "city", &pool, &strategy).unwrap();
        assert_eq!(packed.value, baseline.value, "{strategy:?}");
        assert!(
            packed.calls <= baseline.calls,
            "{strategy:?}: packing must not add calls ({} vs {})",
            packed.calls,
            baseline.calls
        );
        assert_spend_attribution(&packed_engine, &packed);
    }
}

#[test]
fn packed_session_spends_less_for_the_same_answer() {
    let (per_item_engine, ids) = engine(64, 0.0, 1);
    let per_item =
        ops::filter::filter(&per_item_engine, &ids, "active", FilterStrategy::Single).unwrap();
    let (packed_engine, ids) = engine(64, 0.0, 16);
    let packed =
        ops::filter::filter(&packed_engine, &ids, "active", FilterStrategy::Single).unwrap();
    assert_eq!(packed.value, per_item.value);
    assert!(
        packed.calls * 4 <= per_item.calls,
        "≥4x call reduction: {} vs {}",
        packed.calls,
        per_item.calls
    );
    assert!(
        packed.usage.prompt_tokens < per_item.usage.prompt_tokens,
        "shared instruction prefix amortizes: {} vs {}",
        packed.usage.prompt_tokens,
        per_item.usage.prompt_tokens
    );
}
