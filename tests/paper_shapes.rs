//! Integration tests asserting the *shape* of each paper table at reduced
//! scale: who wins, by roughly what factor, and where the trade-offs fall.
//! The full-scale regenerations live in `crowdprompt-bench` (`table1`–`table4`).

use std::sync::Arc;

use crowdprompt::data::products::{buy, restaurants};
use crowdprompt::data::{CitationDataset, CitationParams, FlavorDataset, WordsDataset};
use crowdprompt::metrics::rank::kendall_tau_b_rankings;
use crowdprompt::metrics::BinaryConfusion;
use crowdprompt::oracle::world::ItemId;
use crowdprompt::prelude::*;

fn session_over(
    profile: ModelProfile,
    world: &crowdprompt::oracle::WorldModel,
    items: &[ItemId],
    seed: u64,
    criterion: &str,
) -> Session {
    let llm = SimulatedLlm::new(profile, Arc::new(world.clone()), seed);
    Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(world, items))
        .budget(Budget::Unlimited)
        .seed(seed)
        .criterion(criterion)
        .build()
}

#[test]
fn table1_shape_pairwise_beats_rating_beats_single_on_average() {
    let trials = 4;
    let mut tau = [0.0f64; 3];
    let mut tokens = [0u64; 3];
    for t in 0..trials {
        let data = FlavorDataset::paper(100 + t);
        let session = session_over(
            ModelProfile::gpt35_like(),
            &data.world,
            &data.items,
            100 + t,
            "by how chocolatey they are",
        );
        for (i, strategy) in [
            SortStrategy::SinglePrompt,
            SortStrategy::Rating {
                scale_min: 1,
                scale_max: 7,
            },
            SortStrategy::Pairwise,
        ]
        .iter()
        .enumerate()
        {
            let out = session
                .sort(&data.items, SortCriterion::LatentScore, strategy)
                .unwrap();
            tau[i] += kendall_tau_b_rankings(&out.value.order, &data.gold).unwrap();
            tokens[i] += u64::from(out.usage.total());
        }
    }
    // Accuracy ordering: pairwise clearly on top; rating >= single-prompt
    // within noise.
    assert!(
        tau[2] > tau[1] + 0.1 * trials as f64,
        "pairwise {:.3} should clearly beat rating {:.3}",
        tau[2],
        tau[1]
    );
    assert!(
        tau[1] > tau[0] - 0.15 * trials as f64,
        "rating {:.3} should be at least comparable to single-prompt {:.3}",
        tau[1],
        tau[0]
    );
    // Cost ordering is strict and large.
    assert!(
        tokens[2] > tokens[1] * 4,
        "pairwise is order-of-magnitude pricier"
    );
    assert!(tokens[1] > tokens[0], "rating costs more than one prompt");
}

#[test]
fn table2_shape_sort_then_insert_repairs_omissions() {
    let mut baseline_missing = 0usize;
    let mut hybrid_tau_sum = 0.0;
    let trials = 3;
    for t in 0..trials {
        let data = WordsDataset::paper(200 + t);
        let session = session_over(
            ModelProfile::claude2_like(),
            &data.world,
            &data.items,
            200 + t,
            "in alphabetical order",
        );
        let base = session
            .sort(
                &data.items,
                SortCriterion::Lexicographic,
                &SortStrategy::SinglePrompt,
            )
            .unwrap();
        baseline_missing += base.value.missing;
        let hybrid = session
            .sort(
                &data.items,
                SortCriterion::Lexicographic,
                &SortStrategy::SortThenInsert,
            )
            .unwrap();
        hybrid_tau_sum += kendall_tau_b_rankings(&hybrid.value.order, &data.gold).unwrap();
        // The hybrid's output is complete.
        assert_eq!(hybrid.value.order.len(), data.items.len());
    }
    assert!(
        baseline_missing as u64 >= trials,
        "baseline should drop words: {baseline_missing} over {trials} trials"
    );
    let avg = hybrid_tau_sum / trials as f64;
    assert!(avg > 0.97, "hybrid tau {avg:.3} should be near-perfect");
}

#[test]
fn table3_shape_transitivity_raises_recall_and_f1() {
    let params = CitationParams {
        n_pairs: 1200,
        n_entities: 600,
        ..CitationParams::paper_scale()
    };
    let data = CitationDataset::generate(&params, 11);
    let session = session_over(
        ModelProfile::gpt35_like(),
        &data.world,
        &data.mentions,
        11,
        "as citations",
    );
    let questions: Vec<(ItemId, ItemId)> = data.pairs.iter().map(|(a, b, _)| (*a, *b)).collect();
    let gold: Vec<bool> = data.pairs.iter().map(|(_, _, d)| *d).collect();
    let index = session.mention_index(&data.mentions).unwrap();

    let score = |verdicts: &[bool]| {
        let c = BinaryConfusion::from_pairs(verdicts, &gold);
        (
            c.f1().unwrap_or(0.0),
            c.recall().unwrap_or(0.0),
            c.precision().unwrap_or(0.0),
        )
    };
    let base = session
        .resolve_pairs(&questions, &ResolveStrategy::Pairwise, None)
        .unwrap();
    let aug = session
        .resolve_pairs(
            &questions,
            &ResolveStrategy::TransitivityAugmented { k: 2 },
            Some(&index),
        )
        .unwrap();
    let (f1_b, rec_b, prec_b) = score(&base.value);
    let (f1_a, rec_a, prec_a) = score(&aug.value);

    assert!(f1_a > f1_b + 0.02, "F1 {f1_b:.3} -> {f1_a:.3} should rise");
    assert!(
        rec_a > rec_b + 0.03,
        "recall {rec_b:.3} -> {rec_a:.3} should rise"
    );
    assert!(
        prec_a > prec_b - 0.08,
        "precision {prec_b:.3} -> {prec_a:.3} should dip only slightly"
    );
    // Baseline is high-precision / low-recall like the paper's.
    assert!(prec_b > 0.85, "baseline precision {prec_b:.3}");
    assert!(rec_b < 0.7, "baseline recall {rec_b:.3}");
    assert!(aug.calls > base.calls, "expansion costs more calls");
}

#[test]
fn table4_shape_hybrid_matches_llm_at_half_cost() {
    for (data, tag) in [(restaurants(250, 31), "restaurants"), (buy(250, 32), "buy")] {
        let session = session_over(
            ModelProfile::claude2_like(),
            &data.world,
            &data.records,
            33,
            tag,
        );
        let labeled: Vec<(ItemId, String)> = data
            .records
            .iter()
            .map(|id| (*id, data.gold_value(*id).to_owned()))
            .collect();
        let pool = session.labeled_pool(&labeled).unwrap();
        let accuracy = |values: &[String]| {
            values
                .iter()
                .zip(&data.records)
                .filter(|(v, id)| v.as_str() == data.gold_value(**id))
                .count() as f64
                / data.records.len() as f64
        };
        let knn = session
            .impute(
                &data.records,
                &data.target,
                &pool,
                &ImputeStrategy::KnnOnly { k: 3 },
            )
            .unwrap();
        let hybrid = session
            .impute(
                &data.records,
                &data.target,
                &pool,
                &ImputeStrategy::Hybrid { k: 3, shots: 3 },
            )
            .unwrap();
        let llm_only = session
            .impute(
                &data.records,
                &data.target,
                &pool,
                &ImputeStrategy::LlmOnly { shots: 3 },
            )
            .unwrap();

        assert_eq!(knn.usage.total(), 0, "{tag}: k-NN must be free");
        assert!(
            accuracy(&hybrid.value) > accuracy(&knn.value),
            "{tag}: hybrid should beat naive k-NN"
        );
        assert!(
            accuracy(&hybrid.value) > accuracy(&llm_only.value) - 0.08,
            "{tag}: hybrid should be within a few points of LLM-only"
        );
        let ratio = hybrid.usage.total() as f64 / llm_only.usage.total() as f64;
        assert!(
            (0.2..=0.75).contains(&ratio),
            "{tag}: hybrid should save roughly half the tokens (ratio {ratio:.2})"
        );
    }
}
