//! Plan/eager equivalence: for every operator, a single-node plan must
//! produce bit-identical results and identical ledger spend to the
//! corresponding eager formulation (the `Session` method / direct operator
//! call) under a fixed seed — the simulator is deterministic, so this is
//! checkable exactly.
//!
//! Each comparison runs on two *fresh* engines built from the same world
//! and simulator seed, so neither path can borrow the other's cache.

use std::sync::Arc;

use crowdprompt::core::ops;
use crowdprompt::core::ops::cluster::{cluster, cluster_blocked};
use crowdprompt::core::ops::impute::LabeledPool;
use crowdprompt::core::ops::resolve::MentionIndex;
use crowdprompt::core::{Corpus, Engine};
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;

/// A world exercising every operator: latent scores, two flags, a label
/// attribute, a city attribute, and near-duplicate cluster structure.
fn world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let ids: Vec<ItemId> = (0..n)
        .map(|i| {
            let id = w.add_item(format!(
                "vendor record {:02} lot {} unit variant {}",
                i / 3,
                i / 3,
                i % 3
            ));
            w.set_score(id, (i as f64 * 1.37).sin().abs());
            w.set_salience(id, 1.0);
            w.set_flag(id, "active", i % 2 == 0);
            w.set_attr(id, "label", if i % 3 == 0 { "bulk" } else { "retail" });
            w.set_attr(id, "city", if i % 2 == 0 { "oakland" } else { "fresno" });
            w.set_cluster(id, (i / 3) as u64);
            id
        })
        .collect();
    (w, ids)
}

/// A fresh engine over a clone of the world — identical simulator stream.
fn engine(w: &WorldModel, ids: &[ItemId]) -> Engine {
    let llm = SimulatedLlm::new(ModelProfile::gpt35_like(), Arc::new(w.clone()), 29);
    Engine::new(
        Arc::new(LlmClient::new(Arc::new(llm))),
        Corpus::from_world(w, ids),
    )
    .with_budget(Budget::Unlimited)
    .with_seed(5)
    .with_criterion_label("by importance")
}

/// Assert two engines spent identically (token ledger + USD ledger).
fn assert_ledgers_match(plan_engine: &Engine, eager_engine: &Engine, what: &str) {
    assert_eq!(
        plan_engine.budget().spent_tokens(),
        eager_engine.budget().spent_tokens(),
        "{what}: token ledgers diverge"
    );
    let a = plan_engine.budget().spent_usd();
    let b = eager_engine.budget().spent_usd();
    assert!(
        (a - b).abs() < 1e-12,
        "{what}: usd ledgers diverge {a} vs {b}"
    );
}

fn assert_accounting_match<T: PartialEq + std::fmt::Debug>(
    plan: &Outcome<T>,
    eager: &Outcome<T>,
    what: &str,
) {
    assert_eq!(plan.value, eager.value, "{what}: values diverge");
    assert_eq!(plan.usage, eager.usage, "{what}: usage diverges");
    assert_eq!(plan.calls, eager.calls, "{what}: calls diverge");
    assert!(
        (plan.cost_usd - eager.cost_usd).abs() < 1e-12,
        "{what}: cost diverges"
    );
}

#[test]
fn sort_plan_matches_eager() {
    let (w, ids) = world(18);
    for strategy in [
        SortStrategy::SinglePrompt,
        SortStrategy::Pairwise,
        SortStrategy::Rating {
            scale_min: 1,
            scale_max: 7,
        },
        SortStrategy::ChunkedMerge { chunk_size: 6 },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(&ids)
            .sort_with(SortCriterion::LatentScore, strategy.clone())
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| match out {
            PlanOutput::Sorted(s) => s,
            other => panic!("expected sort output, got {other:?}"),
        });
        let eager = engine(&w, &ids);
        let eager_out =
            ops::sort::sort(&eager, &ids, SortCriterion::LatentScore, &strategy).unwrap();
        let what = format!("sort/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn filter_plan_matches_eager() {
    let (w, ids) = world(24);
    for strategy in [
        FilterStrategy::Single,
        FilterStrategy::MajorityVote {
            votes: 3,
            temperature_pct: 80,
        },
        FilterStrategy::ConfidenceGated {
            min_confidence_pct: 65,
            votes: 3,
        },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(&ids)
            .filter_with("active", strategy)
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| out.into_items().unwrap());
        let eager = engine(&w, &ids);
        let eager_out = ops::filter::filter(&eager, &ids, "active", strategy).unwrap();
        let what = format!("filter/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn count_plan_matches_eager() {
    let (w, ids) = world(30);
    for strategy in [
        CountStrategy::PerItem,
        CountStrategy::Eyeball { batch_size: 8 },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(&ids)
            .count_with("active", strategy)
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| out.count().unwrap());
        let eager = engine(&w, &ids);
        let eager_out = ops::count::count(&eager, &ids, "active", strategy).unwrap();
        let what = format!("count/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn categorize_plan_matches_eager() {
    let (w, ids) = world(21);
    let labels = vec!["bulk".to_owned(), "retail".to_owned()];
    let planned = engine(&w, &ids);
    let run = Query::over(&ids)
        .categorize(labels.clone())
        .plan_on(&planned)
        .unwrap()
        .execute_on(&planned)
        .unwrap();
    let plan_out = run.into_outcome(|out| match out {
        PlanOutput::Labels(l) => l,
        other => panic!("expected labels, got {other:?}"),
    });
    let eager = engine(&w, &ids);
    let eager_out = ops::categorize::categorize(&eager, &ids, &labels).unwrap();
    assert_accounting_match(&plan_out, &eager_out, "categorize");
    assert_ledgers_match(&planned, &eager, "categorize");
}

#[test]
fn max_plan_matches_eager() {
    let (w, ids) = world(16);
    for strategy in [
        MaxStrategy::Tournament,
        MaxStrategy::RateThenPlayoff {
            buckets: 7,
            playoff_size: 4,
        },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(&ids)
            .max_with(SortCriterion::LatentScore, strategy)
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| out.max_item().unwrap());
        let eager = engine(&w, &ids);
        let eager_out =
            ops::max::find_max(&eager, &ids, SortCriterion::LatentScore, strategy).unwrap();
        let what = format!("max/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn top_k_plan_matches_eager() {
    let (w, ids) = world(20);
    let planned = engine(&w, &ids);
    let run = Query::over(&ids)
        .top_k_with(SortCriterion::LatentScore, 4, 2)
        .plan_on(&planned)
        .unwrap()
        .execute_on(&planned)
        .unwrap();
    let plan_out = run.into_outcome(|out| out.into_items().unwrap());
    let eager = engine(&w, &ids);
    let eager_out = ops::topk::top_k(&eager, &ids, SortCriterion::LatentScore, 4, 2).unwrap();
    assert_accounting_match(&plan_out, &eager_out, "top-k");
    assert_ledgers_match(&planned, &eager, "top-k");
}

#[test]
fn join_plan_matches_eager() {
    let (w, ids) = world(24);
    let (left, right) = ids.split_at(12);
    for strategy in [
        JoinStrategy::AllPairs,
        JoinStrategy::Blocked {
            candidates: 3,
            max_distance: 1.5,
        },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(left)
            .join_with(right, strategy.clone())
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| match out {
            PlanOutput::Join(j) => j,
            other => panic!("expected join output, got {other:?}"),
        });
        let eager = engine(&w, &ids);
        let eager_out = ops::join::fuzzy_join(&eager, left, right, &strategy).unwrap();
        let what = format!("join/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn cluster_plan_matches_eager() {
    let (w, ids) = world(18);
    // Exhaustive probing.
    let planned = engine(&w, &ids);
    let run = Query::over(&ids)
        .cluster_exhaustive(6)
        .plan_on(&planned)
        .unwrap()
        .execute_on(&planned)
        .unwrap();
    let plan_out = run.into_outcome(|out| match out {
        PlanOutput::Groups(g) => g,
        other => panic!("expected groups, got {other:?}"),
    });
    let eager = engine(&w, &ids);
    let eager_out = cluster(&eager, &ids, 6).unwrap();
    assert_accounting_match(&plan_out, &eager_out, "cluster");
    assert_ledgers_match(&planned, &eager, "cluster");

    // Blocked probing.
    let planned = engine(&w, &ids);
    let run = Query::over(&ids)
        .cluster_blocked(6, 2)
        .plan_on(&planned)
        .unwrap()
        .execute_on(&planned)
        .unwrap();
    let plan_out = run.into_outcome(|out| match out {
        PlanOutput::Groups(g) => g,
        other => panic!("expected groups, got {other:?}"),
    });
    let eager = engine(&w, &ids);
    let eager_out = cluster_blocked(&eager, &ids, 6, 2).unwrap();
    assert_accounting_match(&plan_out, &eager_out, "cluster-blocked");
    assert_ledgers_match(&planned, &eager, "cluster-blocked");
}

#[test]
fn dedup_plan_matches_eager() {
    let (w, ids) = world(18);
    let planned = engine(&w, &ids);
    let run = Query::over(&ids)
        .resolve(3, 1.5)
        .plan_on(&planned)
        .unwrap()
        .execute_on(&planned)
        .unwrap();
    let plan_out = run.into_outcome(|out| match out {
        PlanOutput::Groups(g) => g,
        other => panic!("expected groups, got {other:?}"),
    });
    let eager = engine(&w, &ids);
    let index = MentionIndex::build(&eager, &ids).unwrap();
    let eager_out = ops::resolve::dedup(&eager, &ids, &index, 3, 1.5).unwrap();
    assert_accounting_match(&plan_out, &eager_out, "dedup");
    assert_ledgers_match(&planned, &eager, "dedup");
}

#[test]
fn impute_plan_matches_eager() {
    let (w, ids) = world(20);
    let labeled: Vec<(ItemId, String)> = ids
        .iter()
        .map(|id| {
            (
                *id,
                if id.0 % 2 == 0 { "oakland" } else { "fresno" }.to_owned(),
            )
        })
        .collect();
    for strategy in [
        ImputeStrategy::KnnOnly { k: 3 },
        ImputeStrategy::LlmOnly { shots: 2 },
        ImputeStrategy::Hybrid { k: 3, shots: 2 },
    ] {
        let planned = engine(&w, &ids);
        let run = Query::over(&ids)
            .impute_with("city", labeled.clone(), strategy.clone())
            .plan_on(&planned)
            .unwrap()
            .execute_on(&planned)
            .unwrap();
        let plan_out = run.into_outcome(|out| match out {
            PlanOutput::Values(v) => v,
            other => panic!("expected values, got {other:?}"),
        });
        let eager = engine(&w, &ids);
        let pool = LabeledPool::build(&eager, &labeled).unwrap();
        let eager_out = ops::impute::impute(&eager, &ids, "city", &pool, &strategy).unwrap();
        let what = format!("impute/{}", strategy.name());
        assert_accounting_match(&plan_out, &eager_out, &what);
        assert_ledgers_match(&planned, &eager, &what);
    }
}

#[test]
fn session_wrappers_report_plan_identical_outcomes() {
    // The Session operator methods are themselves single-node plan
    // wrappers; spot-check that a session call and an explicit plan agree
    // bit-for-bit on fresh engines.
    let (w, ids) = world(20);
    let session = |w: &WorldModel| {
        Session::builder()
            .client(Arc::new(LlmClient::new(Arc::new(SimulatedLlm::new(
                ModelProfile::gpt35_like(),
                Arc::new(w.clone()),
                29,
            )))))
            .corpus(Corpus::from_world(w, &ids))
            .budget(Budget::Unlimited)
            .seed(5)
            .criterion("by importance")
            .try_build()
            .expect("client configured")
    };
    let s1 = session(&w);
    let via_session = s1.filter(&ids, "active", FilterStrategy::Single).unwrap();
    let s2 = session(&w);
    let plan = s2
        .plan(s2.query(&ids).filter_with("active", FilterStrategy::Single))
        .unwrap();
    let via_plan = plan
        .execute(&s2)
        .unwrap()
        .into_outcome(|out| out.into_items().unwrap());
    assert_eq!(via_session.value, via_plan.value);
    assert_eq!(via_session.calls, via_plan.calls);
    // Spent USD is an f64 accumulated by concurrent pipeline workers, so
    // the summation order (and thus the last few ulps) varies per run —
    // compare with an epsilon, not bit equality.
    assert!(
        (s1.spent_usd() - s2.spent_usd()).abs() < 1e-12,
        "spend differs: {} vs {}",
        s1.spent_usd(),
        s2.spent_usd()
    );
}
