//! Multi-backend routing integration tests: single-backend parity,
//! failure-path accounting (retry and hedging charge exactly one call),
//! circuit breaking through the session API, and cascade escalation over a
//! dead tier.

// The pre-PR10 per-knob builder methods stay exercised here on purpose:
// they are deprecated delegating shims and must keep working unchanged.
#![allow(deprecated)]

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::oracle::backend::CancelToken;
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::types::CompletionResponse;
use crowdprompt::oracle::{LlmError, Pricing};
use crowdprompt::prelude::*;

fn flagged_world(
    n: usize,
) -> (
    crowdprompt::oracle::WorldModel,
    Vec<crowdprompt::oracle::ItemId>,
) {
    let mut w = crowdprompt::oracle::WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("routed record {i}"));
            w.set_flag(id, "keep", i % 2 == 0);
            w.set_score(id, i as f64 / n as f64);
            id
        })
        .collect();
    (w, items)
}

fn shared_model(w: &crowdprompt::oracle::WorldModel, seed: u64) -> Arc<dyn LanguageModel> {
    Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like(),
        Arc::new(w.clone()),
        seed,
    ))
}

/// Routing through a registry of one transparent backend is bit-identical —
/// results, call counts, and spend — to the plain single-client path.
#[test]
fn single_backend_routing_is_bit_identical_to_plain_client() {
    let (w, items) = flagged_world(24);
    let model = shared_model(&w, 5);

    let plain = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::clone(&model))))
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .build();
    let routed = Session::builder()
        .backends(vec![
            Arc::new(SimBackend::new("only", Arc::clone(&model))) as Arc<dyn Backend>
        ])
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .build();

    let plain_filter = plain
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    let routed_filter = routed
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    assert_eq!(plain_filter.value, routed_filter.value);
    assert_eq!(plain_filter.usage, routed_filter.usage);
    assert_eq!(plain_filter.cost_usd, routed_filter.cost_usd);

    let plain_sort = plain
        .sort(
            &items,
            SortCriterion::LatentScore,
            &SortStrategy::SinglePrompt,
        )
        .unwrap();
    let routed_sort = routed
        .sort(
            &items,
            SortCriterion::LatentScore,
            &SortStrategy::SinglePrompt,
        )
        .unwrap();
    assert_eq!(plain_sort.value.order, routed_sort.value.order);

    // Ledger, budget, and client behaviour identical call for call.
    let pc = plain.engine().client();
    let rc = routed.engine().client();
    assert_eq!(pc.ledger().calls(), rc.ledger().calls());
    assert_eq!(pc.ledger().total_tokens(), rc.ledger().total_tokens());
    assert!((pc.ledger().spend_usd() - rc.ledger().spend_usd()).abs() < 1e-12);
    assert!((plain.spent_usd() - routed.spent_usd()).abs() < 1e-12);
    assert_eq!(pc.stats().calls(), rc.stats().calls());
}

/// A backend that fails transiently a fixed number of times, then delegates
/// to a real simulator — deterministic retry shapes by construction.
struct FailsFirst {
    id: String,
    inner: Arc<dyn LanguageModel>,
    failures_left: AtomicU32,
    price_multiplier: f64,
}

impl Backend for FailsFirst {
    fn id(&self) -> &str {
        &self.id
    }
    fn tier(&self) -> &str {
        self.inner.name()
    }
    fn context_window(&self) -> u32 {
        self.inner.context_window()
    }
    fn pricing(&self) -> Pricing {
        let base = self.inner.pricing();
        Pricing::new(
            base.usd_per_1k_input * self.price_multiplier,
            base.usd_per_1k_output * self.price_multiplier,
        )
    }
    fn slots(&self) -> usize {
        0
    }
    fn complete(
        &self,
        request: &CompletionRequest,
        _cancel: &CancelToken,
    ) -> Result<CompletionResponse, LlmError> {
        if self
            .failures_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(LlmError::ServiceUnavailable);
        }
        let mut response = self.inner.complete(request)?;
        response.pricing = self.pricing();
        Ok(response)
    }
}

/// Transient backend error → retry → success charges exactly ONE backend
/// call to the ledger and the budget, priced at the serving backend's
/// schedule.
#[test]
fn retried_transient_failure_charges_exactly_one_call() {
    let (w, items) = flagged_world(1);
    let model = shared_model(&w, 7);
    let flaky = Arc::new(FailsFirst {
        id: "flaky".into(),
        inner: Arc::clone(&model),
        failures_left: AtomicU32::new(2),
        price_multiplier: 1.5,
    });
    let session = Session::builder()
        .backends(vec![Arc::clone(&flaky) as Arc<dyn Backend>])
        .max_retries(3)
        .corpus(Corpus::from_world(&w, &items))
        .budget(Budget::usd(1.0))
        .build();

    let out = session
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    assert_eq!(out.value, items, "item 0 satisfies keep");

    let client = session.engine().client();
    let router = client.router().expect("session is routed");
    assert_eq!(router.stats().retries, 2, "two transient failures retried");
    assert_eq!(
        client.ledger().calls(),
        1,
        "failed attempts are never billed; success charges once"
    );
    // Ledger spend == budget spend == outcome meter, all at the backend's
    // 1.5× schedule.
    let expected = flaky.pricing().cost_usd(out.usage);
    assert!((client.ledger().spend_usd() - expected).abs() < 1e-9);
    assert!((session.spent_usd() - expected).abs() < 1e-9);
    assert!((out.cost_usd - expected).abs() < 1e-9);
}

/// A slow backend that reports whether its cancel token fired.
struct SlowProbe {
    id: String,
    inner: Arc<SimBackend>,
    saw_cancel: AtomicBool,
}

impl Backend for SlowProbe {
    fn id(&self) -> &str {
        &self.id
    }
    fn tier(&self) -> &str {
        self.inner.tier()
    }
    fn context_window(&self) -> u32 {
        self.inner.context_window()
    }
    fn pricing(&self) -> Pricing {
        self.inner.pricing()
    }
    fn slots(&self) -> usize {
        self.inner.slots()
    }
    fn complete(
        &self,
        request: &CompletionRequest,
        cancel: &CancelToken,
    ) -> Result<CompletionResponse, LlmError> {
        let result = self.inner.complete(request, cancel);
        if matches!(result, Err(LlmError::Cancelled)) {
            self.saw_cancel.store(true, Ordering::SeqCst);
        }
        result
    }
}

/// A hedged request's loser is cancelled and contributes zero spend: the
/// ledger and budget charge exactly the winner's one call.
#[test]
fn hedged_loser_is_cancelled_without_spend() {
    let (w, items) = flagged_world(1);
    let model = shared_model(&w, 9);
    // The slow backend is cheapest, so selection makes it primary; the
    // hedge then wins on the fast backend.
    let slow = Arc::new(SlowProbe {
        id: "slow".into(),
        inner: Arc::new(
            SimBackend::new("slow-inner", Arc::clone(&model))
                .with_latency(LatencyProfile::fixed(2_000_000))
                .with_price_multiplier(0.5),
        ),
        saw_cancel: AtomicBool::new(false),
    });
    let fast = Arc::new(SimBackend::new("fast", Arc::clone(&model)).with_price_multiplier(2.0));
    let session = Session::builder()
        .backends(vec![
            Arc::clone(&slow) as Arc<dyn Backend>,
            fast as Arc<dyn Backend>,
        ])
        .hedge_after(Duration::from_millis(2))
        .corpus(Corpus::from_world(&w, &items))
        .budget(Budget::usd(1.0))
        .build();

    let out = session
        .filter(&items, "keep", FilterStrategy::Single)
        .unwrap();
    assert_eq!(out.value, items, "hedged answer matches the model's");

    let client = session.engine().client();
    let router = client.router().expect("session is routed");
    let stats = router.stats();
    assert_eq!(stats.hedges_launched, 1);
    assert_eq!(stats.hedges_won, 1, "the fast duplicate wins");

    // Give the cancelled loser a moment to observe its token and unwind.
    for _ in 0..100 {
        if slow.saw_cancel.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        slow.saw_cancel.load(Ordering::SeqCst),
        "loser saw cancellation"
    );

    // Exactly one charged call, at the WINNER's (2×) schedule — the loser
    // contributes nothing to ledger, budget, or the outcome meter.
    assert_eq!(client.ledger().calls(), 1);
    let winner_pricing = Pricing::new(
        model.pricing().usd_per_1k_input * 2.0,
        model.pricing().usd_per_1k_output * 2.0,
    );
    let expected = winner_pricing.cost_usd(out.usage);
    assert!((client.ledger().spend_usd() - expected).abs() < 1e-9);
    assert!((session.spent_usd() - expected).abs() < 1e-9);
    assert!((out.cost_usd - expected).abs() < 1e-9);
}

/// A USD cap must hold even though estimates are priced at the cheapest
/// backend: admission scales by the worst-case price factor, so a batch
/// that only fits at cheap pricing is refused before any spend.
#[test]
fn usd_cap_admission_accounts_for_priciest_backend() {
    use crowdprompt::core::Engine;
    use crowdprompt::oracle::TaskDescriptor;
    let (w, items) = flagged_world(10);
    let model: Arc<dyn LanguageModel> = Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        19,
    ));
    let client = Arc::new(LlmClient::routed(
        BackendRegistry::new(vec![
            Arc::new(SimBackend::new("cheap", Arc::clone(&model))) as Arc<dyn Backend>,
            Arc::new(SimBackend::new("pricey", Arc::clone(&model)).with_price_multiplier(10.0))
                as Arc<dyn Backend>,
        ])
        .unwrap(),
        RoutePolicy::default(),
    ));
    let tasks: Vec<TaskDescriptor> = items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "keep".into(),
        })
        .collect();
    // Price the batch at the reference (cheap) schedule, then grant twice
    // that: enough for every call at cheap pricing, nowhere near enough if
    // the 10x backend were to serve them.
    let probe = Engine::new(Arc::clone(&client), Corpus::from_world(&w, &items));
    let reference_total: f64 = tasks
        .iter()
        .map(|t| probe.estimate_task(t.clone()).unwrap().0)
        .sum();
    let engine = Engine::new(Arc::clone(&client), Corpus::from_world(&w, &items))
        .with_budget(Budget::usd(reference_total * 2.0));
    let result = engine.run_many(tasks);
    assert!(
        matches!(result, Err(EngineError::BudgetExceeded { .. })),
        "optimistically-priced admission would blow the cap; got {result:?}"
    );
    assert_eq!(
        engine.budget().spent_usd(),
        0.0,
        "refused before any dispatch"
    );
    assert_eq!(client.ledger().calls(), 0);
}

/// EXPLAIN surfaces the backend roster and which schedule estimates use.
#[test]
fn explain_notes_backend_roster_and_reference_pricing() {
    let (w, items) = flagged_world(12);
    let model = shared_model(&w, 3);
    let session = Session::builder()
        .backends(vec![
            Arc::new(SimBackend::new("pricey", Arc::clone(&model)).with_price_multiplier(2.0))
                as Arc<dyn Backend>,
            Arc::new(SimBackend::new("bargain", Arc::clone(&model)).with_price_multiplier(0.25))
                as Arc<dyn Backend>,
        ])
        .corpus(Corpus::from_world(&w, &items))
        .build();
    let plan = session.plan(session.query(&items).filter("keep")).unwrap();
    let note = plan
        .notes()
        .iter()
        .find(|n| n.contains("routing"))
        .expect("routed plans note the backend roster");
    assert!(note.contains("2 backends"), "note: {note}");
    assert!(
        note.contains("'pricey'") && note.contains("'bargain'"),
        "note: {note}"
    );
    assert!(note.contains("cheapest 'bargain'"), "note: {note}");
    assert!(
        plan.explain().contains("routing"),
        "explain renders the note"
    );

    // The engine's reference pricing really is the bargain schedule.
    let reference = session.engine().client().model().pricing();
    assert!((reference.usd_per_1k_input - model.pricing().usd_per_1k_input * 0.25).abs() < 1e-12);
}

/// Builder misuse surfaces as errors, not silent misconfiguration.
#[test]
fn builder_rejects_conflicting_routing_configuration() {
    let (w, _) = flagged_world(1);
    let model = shared_model(&w, 1);
    let backend: Arc<dyn Backend> = Arc::new(SimBackend::new("b", Arc::clone(&model)));
    match Session::builder()
        .client(Arc::new(LlmClient::new(Arc::clone(&model))))
        .backends(vec![Arc::clone(&backend)])
        .try_build()
    {
        Err(EngineError::InvalidInput(msg)) => assert!(msg.contains("not both"), "{msg}"),
        other => panic!("expected conflict error, got {:?}", other.map(|_| ())),
    }
    match Session::builder()
        .client(Arc::new(LlmClient::new(model)))
        .hedge_after(Duration::from_millis(1))
        .try_build()
    {
        Err(EngineError::InvalidInput(msg)) => assert!(msg.contains("backends"), "{msg}"),
        other => panic!("expected routing-knob error, got {:?}", other.map(|_| ())),
    }
}

/// A tier that bills a few calls and then collapses mid-dispatch must not
/// lose that partial spend from the cascade's outcome meter: the meter
/// stays equal to the sum of the tier ledgers.
#[test]
fn cascade_meter_keeps_partial_spend_of_a_failed_tier() {
    use crowdprompt::oracle::TaskDescriptor;

    /// Succeeds for the first `remaining` calls, then fails transiently
    /// forever — a backend dying mid-burst.
    struct DiesAfter {
        inner: Arc<dyn LanguageModel>,
        remaining: AtomicU32,
    }
    impl Backend for DiesAfter {
        fn id(&self) -> &str {
            "dies-after"
        }
        fn tier(&self) -> &str {
            self.inner.name()
        }
        fn context_window(&self) -> u32 {
            self.inner.context_window()
        }
        fn pricing(&self) -> Pricing {
            self.inner.pricing()
        }
        fn slots(&self) -> usize {
            0
        }
        fn complete(
            &self,
            request: &CompletionRequest,
            _cancel: &CancelToken,
        ) -> Result<CompletionResponse, LlmError> {
            if self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_err()
            {
                return Err(LlmError::ServiceUnavailable);
            }
            self.inner.complete(request)
        }
    }

    let (w, items) = flagged_world(10);
    // Priced but noiseless: spend is real, answers are world truth.
    let model: Arc<dyn LanguageModel> = Arc::new(SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        17,
    ));
    let tier0_client = Arc::new(LlmClient::routed(
        BackendRegistry::new(vec![Arc::new(DiesAfter {
            inner: Arc::clone(&model),
            remaining: AtomicU32::new(3),
        }) as Arc<dyn Backend>])
        .unwrap(),
        RoutePolicy {
            max_retries: 0,
            ..RoutePolicy::default()
        },
    ));
    let tier1_client = Arc::new(LlmClient::new(Arc::clone(&model)));
    let cascade = ModelCascade::new(
        vec![
            CascadeTier {
                client: Arc::clone(&tier0_client),
                accuracy: 0.9,
                votes: 1,
                temperature: 0.0,
            },
            CascadeTier {
                client: Arc::clone(&tier1_client),
                accuracy: 0.98,
                votes: 1,
                temperature: 0.0,
            },
        ],
        Corpus::from_world(&w, &items),
    );
    let tasks: Vec<TaskDescriptor> = items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "keep".into(),
        })
        .collect();
    let out = cascade.ask_many(tasks).expect("tier 1 answers everything");
    for (i, verdict) in out.value.iter().enumerate() {
        assert_eq!(verdict.deepest_tier, 1);
        assert_eq!(verdict.answer, i % 2 == 0);
    }
    // Tier 0 billed exactly its 3 pre-collapse successes; the meter must
    // include them even though their responses were discarded.
    assert_eq!(tier0_client.ledger().calls(), 3);
    assert_eq!(tier1_client.ledger().calls(), 10);
    assert_eq!(out.calls, 13, "meter counts both tiers' billed calls");
    let ledger_total = tier0_client.ledger().spend_usd() + tier1_client.ledger().spend_usd();
    assert!(
        (out.cost_usd - ledger_total).abs() < 1e-9,
        "outcome meter equals the tier ledgers: {} vs {}",
        out.cost_usd,
        ledger_total
    );
}

/// A cascade whose cheap tier is completely down (breaker open after
/// repeated failures) escalates to the healthy tier instead of erroring.
#[test]
fn cascade_escalates_over_a_dead_tier() {
    use crowdprompt::oracle::TaskDescriptor;
    let (w, items) = flagged_world(10);
    // A noiseless answer model: the test pins escalation mechanics, not
    // answer accuracy under check noise.
    let model: Arc<dyn LanguageModel> = Arc::new(SimulatedLlm::new(
        ModelProfile::perfect(),
        Arc::new(w.clone()),
        13,
    ));
    let dead_registry = BackendRegistry::new(vec![Arc::new(
        SimBackend::new("dead", Arc::clone(&model))
            .with_transport_noise(NoiseProfile {
                unavailable_prob: 1.0,
                ..NoiseProfile::perfect()
            })
            .with_seed(21),
    ) as Arc<dyn Backend>])
    .unwrap();
    let dead_tier = Arc::new(LlmClient::routed(
        dead_registry,
        RoutePolicy {
            max_retries: 1,
            ..RoutePolicy::default()
        },
    ));
    let healthy_tier = Arc::new(LlmClient::new(Arc::clone(&model)));
    let corpus = Corpus::from_world(&w, &items);
    let cascade = ModelCascade::new(
        vec![
            CascadeTier {
                client: dead_tier,
                accuracy: 0.9,
                votes: 1,
                temperature: 0.0,
            },
            CascadeTier {
                client: healthy_tier,
                accuracy: 0.98,
                votes: 1,
                temperature: 0.0,
            },
        ],
        corpus,
    );
    let tasks: Vec<TaskDescriptor> = items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "keep".into(),
        })
        .collect();
    let out = cascade
        .ask_many(tasks)
        .expect("dead tier escalates, not errors");
    for (i, verdict) in out.value.iter().enumerate() {
        assert_eq!(verdict.deepest_tier, 1, "answered by the healthy tier");
        assert_eq!(verdict.answer, i % 2 == 0);
    }
}
