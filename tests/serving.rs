//! Property tests for the multi-tenant serving layer (PR 10).
//!
//! Two contracts under test, over randomized tenants and workloads:
//!
//! * **Fair shares converge to weights.** The deficit-round-robin feed's
//!   claim ordering, drained while every tenant stays backlogged, hands
//!   each tenant a share of service proportional to its weight — exact per
//!   complete round with integer weights, within one round's quantum at
//!   any cut point.
//! * **Admission protects the ledgers.** A zero-budget tenant is refused
//!   at admission: no backend call is made, nothing is billed to any
//!   ledger. Admitted work bills exactly the tenant that submitted it, and
//!   the per-tenant ledgers partition the shared client ledger to the
//!   cent: meter == ledger == budget.

use std::sync::Arc;

use crowdprompt::core::{Budget, Corpus, FairFeed, ServeError, Session, TenantSpec};
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::task::TaskDescriptor;
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::oracle::{LlmClient, ModelProfile, SimulatedLlm};
use proptest::prelude::*;

fn flag_world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("serving record {i}"));
            w.set_flag(id, "hot", i % 2 == 0);
            id
        })
        .collect();
    (w, items)
}

/// A server over a *priced* simulated model (so admission estimates are
/// non-zero and budget refusals have teeth) with perfect noise (so every
/// admitted task completes).
fn server_over(
    w: &WorldModel,
    items: &[ItemId],
    seed: u64,
    tenants: Vec<TenantSpec>,
) -> crowdprompt::core::Server {
    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        seed,
    );
    let mut builder = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(w, items))
        .build()
        .serve();
    for spec in tenants {
        builder = builder.tenant(spec);
    }
    builder.try_build().expect("serving stack must build")
}

fn check_tasks(items: &[ItemId]) -> Vec<TaskDescriptor> {
    items
        .iter()
        .map(|id| TaskDescriptor::CheckPredicate {
            item: *id,
            predicate: "hot".to_owned(),
        })
        .collect()
}

proptest! {
    /// Random integer weight vectors; every tenant's queue stays backlogged
    /// through the measured window. Claims over whole DRR rounds split
    /// *exactly* proportionally to weight; at an arbitrary cut point each
    /// tenant is within one round's quantum (its own weight) of its
    /// proportional share.
    #[test]
    fn fair_share_claims_converge_to_weights(
        weights in prop::collection::vec(1u32..9, 2..6),
        rounds in 2u32..8,
    ) {
        let feed: FairFeed<usize> = FairFeed::new();
        let total_weight: u32 = weights.iter().sum();
        for (tenant, &w) in weights.iter().enumerate() {
            prop_assert!(feed.register(&format!("t{tenant}"), f64::from(w)));
        }
        // Backlog everyone past what the window can drain.
        let window = (rounds * total_weight) as usize;
        for (tenant, _) in weights.iter().enumerate() {
            for item in 0..window {
                prop_assert!(feed.push(&format!("t{tenant}"), tenant * window + item));
            }
        }

        let mut counts = vec![0usize; weights.len()];
        for _ in 0..window {
            let item = feed.claim().expect("backlogged feed has work");
            counts[item / window] += 1;
        }

        for (tenant, &w) in weights.iter().enumerate() {
            let exact = (rounds * w) as usize; // whole rounds: exact share
            prop_assert!(
                counts[tenant].abs_diff(exact) <= w as usize,
                "tenant {tenant} (weight {w}) claimed {} of {window}, expected ~{exact} \
                 (weights {weights:?})",
                counts[tenant],
            );
        }
        // Shares over the window sum to the window: nothing lost, nothing
        // double-claimed.
        prop_assert_eq!(counts.iter().sum::<usize>(), window);
    }

    /// A zero-budget tenant is refused at admission: the shared client
    /// never dispatches, no ledger is touched, and the refusal is
    /// `BudgetExhausted` (not a rate-limit shed). A solvent tenant on the
    /// same server is unaffected before and after the refusal.
    #[test]
    fn zero_budget_tenant_is_refused_with_nothing_billed(
        n in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = flag_world(n);
        let server = server_over(
            &w,
            &items,
            seed,
            vec![
                TenantSpec::new("broke").with_budget(Budget::usd(0.0)),
                TenantSpec::new("solvent"),
            ],
        );

        match server.submit("broke", check_tasks(&items)) {
            Err(ServeError::BudgetExhausted { needed_usd, remaining_usd }) => {
                prop_assert!(needed_usd > 0.0, "a priced batch must estimate > $0");
                prop_assert!(remaining_usd <= 0.0 + f64::EPSILON);
            }
            other => prop_assert!(false, "expected BudgetExhausted, got {other:?}"),
        }
        let client = server.engine().client();
        prop_assert_eq!(client.stats().calls(), 0, "refusal must precede any backend call");
        let broke = server.ledger("broke").expect("registered tenant");
        prop_assert_eq!(broke.spent_usd(), 0.0);
        prop_assert_eq!(broke.spent_tokens(), 0);

        // The refusal leaves the server fully serviceable for others.
        let run = server
            .submit("solvent", check_tasks(&items))
            .expect("solvent tenant admitted");
        prop_assert!(run.is_complete());
        prop_assert_eq!(run.results.len(), n);
        prop_assert_eq!(broke.spent_usd(), 0.0, "another tenant's work billed to broke");

        let stats = server.stats();
        let broke_stats = stats.iter().find(|s| s.id == "broke").expect("broke listed");
        prop_assert_eq!(broke_stats.completed, 0);
        prop_assert_eq!(broke_stats.shed, 1);
    }

    /// Sequential batches from random tenants: every paid completion lands
    /// on exactly the submitting tenant's ledger, and the tenant ledgers
    /// partition the shared client ledger — meter == ledger == budget.
    #[test]
    fn tenant_ledgers_partition_the_client_ledger(
        batches in prop::collection::vec((0usize..3, 1usize..10), 1..8),
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = flag_world(12);
        let ids = ["a", "b", "c"];
        let server = server_over(
            &w,
            &items,
            seed,
            ids.iter().map(|id| TenantSpec::new(*id)).collect(),
        );

        for (round, &(tenant, len)) in batches.iter().enumerate() {
            // Distinct items per round so the shared cache cannot collapse
            // later batches into free hits (free hits are fine, but paid
            // work exercises the billing invariant harder).
            let slice: Vec<ItemId> = (0..len).map(|k| items[(round + k) % items.len()]).collect();
            let run = server
                .submit(ids[tenant], check_tasks(&slice))
                .expect("unlimited tenants admit");
            prop_assert!(run.is_complete());
        }

        let client = server.engine().client();
        let tenant_total: f64 = ids
            .iter()
            .map(|id| server.ledger(id).expect("registered").spent_usd())
            .sum();
        let client_total = client.ledger().spend_usd();
        prop_assert!(
            (tenant_total - client_total).abs() < 1e-9,
            "tenant ledgers ({tenant_total}) must partition the client ledger ({client_total})"
        );
        prop_assert_eq!(server.leases_in_use(), 0, "every lease released after drain");
    }
}
