//! Crash/recovery property tests for the persistent response store (PR 9).
//!
//! The contract under test: a response store populated on disk, killed at
//! an *arbitrary byte* of the store file, and reopened by a completely
//! fresh process stack recovers **exactly the complete-record prefix** —
//! every record the tear spared is served bit-identically, every record it
//! lost is re-dispatched (and only those), and the store is whole again
//! afterwards. Unlike the run journal (which replays *charges* so resumed
//! accounting matches the uninterrupted run), store hits are free: the
//! recovered prefix costs the resumed run nothing.
//!
//! Also covered: the single-writer/multi-reader process discipline — a
//! second writer on a live store is refused with `WouldBlock` while
//! read-only handles snapshot freely, and the writer lock is released on
//! drop.

// The pre-PR10 per-knob builder methods stay exercised here on purpose:
// they are deprecated delegating shims and must keep working unchanged.
#![allow(deprecated)]

use std::path::PathBuf;
use std::sync::Arc;

use crowdprompt::core::ops::filter::FilterStrategy;
use crowdprompt::oracle::model::NoiseProfile;
use crowdprompt::oracle::store::{ResponseStore, StoreConfig};
use crowdprompt::oracle::world::{ItemId, WorldModel};
use crowdprompt::prelude::*;
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "crowdprompt-store-resume-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
    let mut lock = path.as_os_str().to_os_string();
    lock.push(".lock");
    std::fs::remove_file(PathBuf::from(lock)).ok();
}

fn keep_world(n: usize) -> (WorldModel, Vec<ItemId>) {
    let mut w = WorldModel::new();
    let items = (0..n)
        .map(|i| {
            let id = w.add_item(format!("record number {i}"));
            w.set_flag(id, "keep", i % 3 == 0);
            id
        })
        .collect();
    (w, items)
}

/// A fresh, fully independent session stack persisting to `store`: new
/// simulated model, new client (empty in-memory cache, zeroed ledger), new
/// budget tracker. Only the store file carries state between stacks.
fn store_session(w: &WorldModel, items: &[ItemId], seed: u64, store: &PathBuf) -> Session {
    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        seed,
    );
    Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(w, items))
        .criterion("by index")
        .parallelism(1)
        .store_path(store)
        .try_build()
        .expect("store session must build")
}

fn run_filter(session: &Session, items: &[ItemId]) -> Vec<ItemId> {
    session
        .filter(items, "keep", FilterStrategy::Single)
        .expect("perfect-noise filter must succeed")
        .value
}

proptest! {
    /// Kill the store file at an arbitrary byte and reopen on a fresh
    /// stack: exactly the complete-record prefix survives, the fresh run
    /// re-dispatches only the gap, results are bit-identical, and the
    /// meter == ledger == budget invariant holds throughout.
    #[test]
    fn torn_store_recovers_exact_complete_prefix(
        (n, cut_permille) in (8usize..32, 0u64..1001),
        seed in 0u64..1_000_000,
    ) {
        let (w, items) = keep_world(n);

        // Populate a store with one record per item, then capture the
        // reference results.
        let clean_path = temp_path("clean");
        let cold = store_session(&w, &items, seed, &clean_path);
        let reference = run_filter(&cold, &items);
        prop_assert_eq!(cold.engine().client().stats().calls(), n as u64);
        drop(cold); // releases the writer lock, flushed records stay

        // Simulate a crash: chop the file at an arbitrary byte past the
        // header (the header is one flushed write at open, so a real
        // crash can only tear after it).
        let bytes = std::fs::read(&clean_path).unwrap();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut = header_len + (bytes.len() - header_len) * cut_permille as usize / 1000;
        let torn_path = temp_path("torn");
        std::fs::write(&torn_path, &bytes[..cut]).unwrap();

        // The exact complete-record prefix: every record is one flushed
        // line, so the recoverable prefix is precisely the whole lines the
        // cut spared. A read-only probe (no truncation) must agree.
        let intact = bytes[header_len..cut].iter().filter(|&&b| b == b'\n').count();
        let probe = ResponseStore::open_read_only(&torn_path, StoreConfig::default()).unwrap();
        prop_assert_eq!(probe.len(), intact);
        drop(probe);

        // Resume on a completely fresh stack: same results, and only the
        // torn-off gap is re-dispatched.
        let warm = store_session(&w, &items, seed, &torn_path);
        let resumed = run_filter(&warm, &items);
        prop_assert_eq!(&resumed, &reference);
        let stats = warm.engine().client().stats();
        prop_assert_eq!(stats.calls(), (n - intact) as u64);
        prop_assert_eq!(stats.store_hits(), intact as u64);

        // Store hits are free: the budget and the ledger both saw only the
        // gap dispatches. (The ledger stores integer nanodollars while the
        // budget sums raw f64s, so they agree to rounding, not to bits.)
        let ledger = warm.engine().client().ledger();
        prop_assert!((warm.spent_usd() - ledger.spend_usd()).abs() < 1e-6);
        prop_assert_eq!(ledger.calls(), (n - intact) as u64);
        if intact == n {
            prop_assert_eq!(warm.spent_usd().to_bits(), 0f64.to_bits());
        }

        // The gap was re-admitted: the store is whole again.
        let store = warm.engine().client().store().expect("store attached");
        prop_assert_eq!(store.len(), n);

        cleanup(&clean_path);
        cleanup(&torn_path);
    }
}

#[test]
fn second_writer_refused_while_readers_snapshot_freely() {
    let (w, items) = keep_world(12);
    let path = temp_path("writers");
    let writer = store_session(&w, &items, 17, &path);
    let reference = run_filter(&writer, &items);

    // Two handles, one file: the second writer is refused while the first
    // session's store handle is alive...
    match ResponseStore::open(&path, StoreConfig::default()) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock),
        Ok(_) => panic!("second writer must be refused while the lock is held"),
    }

    // ...but read-only handles snapshot concurrently and see every record
    // the writer has flushed so far.
    let reader = ResponseStore::open_read_only(&path, StoreConfig::default()).unwrap();
    assert_eq!(reader.len(), items.len());
    assert!(reader.is_read_only());
    drop(reader);

    // Dropping the writing session releases the lock; a fresh writer both
    // opens and serves the stored records without re-dispatching.
    drop(writer);
    let successor = store_session(&w, &items, 17, &path);
    assert_eq!(run_filter(&successor, &items), reference);
    assert_eq!(successor.engine().client().stats().calls(), 0);
    cleanup(&path);
}

#[test]
fn store_is_invisible_to_results() {
    // A store-backed run and a store-less run of the same operation agree
    // exactly: the persistent tier changes dispatch counts, never results.
    let (w, items) = keep_world(20);
    let path = temp_path("invisible");
    let stored = store_session(&w, &items, 23, &path);
    let with_store = run_filter(&stored, &items);

    let llm = SimulatedLlm::new(
        ModelProfile::gpt35_like().with_noise(NoiseProfile::perfect()),
        Arc::new(w.clone()),
        23,
    );
    let bare = Session::builder()
        .client(Arc::new(LlmClient::new(Arc::new(llm))))
        .corpus(Corpus::from_world(&w, &items))
        .criterion("by index")
        .parallelism(1)
        .build();
    let without_store = run_filter(&bare, &items);
    assert_eq!(with_store, without_store);
    cleanup(&path);
}
