//! Repo-invariant lint driver.
//!
//! A deny-by-default source scanner for invariants that rustc and clippy
//! cannot express, because they are *repo policies*, not language rules:
//!
//! | rule          | invariant                                                        |
//! |---------------|------------------------------------------------------------------|
//! | `sync-facade` | no direct `std::sync` lock types outside the `parking_lot` shim  |
//! | `no-unwrap`   | no `.unwrap()` / `.expect(..)` in non-test library code          |
//! | `clock`       | no `Instant::now` / `SystemTime::now` outside approved sites     |
//! | `money-eq`    | money-valued f64s compare via bit-pattern helpers, never `==`    |
//! | `bench-keys`  | every `BENCH_*.json` series key is guarded by the baseline script|
//!
//! Pure std, no crates.io: scanning is lexical but *mask-accurate* — a small
//! lexer blanks out comments, strings, and char literals first, so a banned
//! token inside a doc comment or a format string never fires, and a brace
//! tracker excludes `#[cfg(test)]` items and `tests/`/`benches/` trees from
//! the library-only rules.
//!
//! Every rule is deny-by-default. The only escape hatch is an inline pragma
//! on the same or the preceding line, which is intentionally greppable:
//!
//! ```text
//! let started = Instant::now(); // lint: allow(clock) — bench harness timing
//! ```
//!
//! Exit status: 0 when clean, 1 on any finding, 2 on I/O errors.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Lock types whose `std::sync` spelling is banned outside the shim facade.
const FACADE_LOCKS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Vendored third-party shims: stand-ins for crates.io code, not ours to
/// police. The `parking_lot` shim is deliberately absent — it is first-party
/// and subject to every rule except `sync-facade` (it IS the facade).
const VENDORED: &[&str] = &[
    "crates/shims/rand/",
    "crates/shims/rand_chacha/",
    "crates/shims/proptest/",
    "crates/shims/criterion/",
];

/// The paths allowed to name `std::sync` lock types: the facade itself, and
/// the interleaving explorer — a *scheduler* that implements model-checked
/// locks on top of raw primitives, necessarily below the facade.
const FACADE_PATHS: &[&str] = &["crates/shims/parking_lot/", "crates/shims/interleave/"];

const BASELINE_GUARD: &str = "ci/check_bench_baselines.sh";

#[derive(Debug, Clone)]
struct Finding {
    rule: &'static str,
    message: String,
    path: String,
    line: usize,
    col: usize,
    help: &'static str,
}

fn main() {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    match run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("repolint: clean");
        }
        Ok(mut findings) => {
            findings.sort_by(|a, b| {
                (a.path.as_str(), a.line, a.col, a.rule).cmp(&(
                    b.path.as_str(),
                    b.line,
                    b.col,
                    b.rule,
                ))
            });
            for f in &findings {
                eprintln!("error[{}]: {}", f.rule, f.message);
                eprintln!("  --> {}:{}:{}", f.path, f.line, f.col);
                eprintln!("  = help: {}", f.help);
            }
            eprintln!("repolint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("repolint: error: {e}");
            std::process::exit(2);
        }
    }
}

fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut rust_files = Vec::new();
    let mut bench_jsons = Vec::new();
    walk(root, Path::new(""), &mut rust_files, &mut bench_jsons)?;
    rust_files.sort();
    bench_jsons.sort();

    let mut findings = Vec::new();
    for rel in &rust_files {
        let rel_str = unix_path(rel);
        if VENDORED.iter().any(|v| rel_str.starts_with(v)) {
            continue;
        }
        let src = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel_str}: {e}"))?;
        findings.extend(lint_rust_source(&rel_str, &src));
    }
    findings.extend(lint_bench_keys(root, &bench_jsons)?);
    Ok(findings)
}

fn unix_path(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn walk(
    root: &Path,
    rel: &Path,
    rust: &mut Vec<PathBuf>,
    jsons: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let sub = rel.join(&name);
        let ftype = entry
            .file_type()
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        if ftype.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | "node_modules") {
                continue;
            }
            walk(root, &sub, rust, jsons)?;
        } else if name.ends_with(".rs") {
            rust.push(sub);
        } else if name.starts_with("BENCH_") && name.ends_with(".json") {
            jsons.push(sub);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lexical masking
// ---------------------------------------------------------------------------

/// Returns `src` with the *contents* of comments, string literals, and char
/// literals replaced by spaces (newlines preserved, so line/col arithmetic
/// still works). String delimiter quotes are kept; everything between them
/// is blanked. Handles nested block comments, escapes, raw strings with any
/// `#` count, byte strings, and the char-literal-vs-lifetime ambiguity.
fn mask_source(src: &str) -> Vec<char> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = chars.clone();
    let n = chars.len();
    let mut i = 0;
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < n {
        let c = chars[i];
        let prev_is_ident = i > 0 && is_ident(chars[i - 1]);
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                out[i] = ' ';
                i += 1;
            }
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            out[i] = ' ';
            out[i + 1] = ' ';
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    i += 2;
                } else {
                    if chars[i] != '\n' {
                        out[i] = ' ';
                    }
                    i += 1;
                }
            }
        } else if c == '"' {
            i = mask_plain_string(&chars, &mut out, i);
        } else if (c == 'r' || c == 'b') && !prev_is_ident {
            if let Some(next) = try_mask_prefixed_string(&chars, &mut out, i) {
                i = next;
            } else {
                i += 1;
            }
        } else if c == '\'' {
            i = mask_char_or_lifetime(&chars, &mut out, i);
        } else {
            i += 1;
        }
    }
    out
}

/// Masks a `"..."` string starting at the opening quote; returns the index
/// one past the closing quote (or end of input if unterminated).
fn mask_plain_string(chars: &[char], out: &mut [char], start: usize) -> usize {
    let n = chars.len();
    let mut i = start + 1;
    while i < n {
        match chars[i] {
            '\\' => {
                out[i] = ' ';
                if i + 1 < n && chars[i + 1] != '\n' {
                    out[i + 1] = ' ';
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => i += 1,
            _ => {
                out[i] = ' ';
                i += 1;
            }
        }
    }
    n
}

/// Handles `r"..."`, `r#"..."#` (any `#` count), `b"..."`, `br#"..."#`, and
/// `b'x'`. Returns `None` when `start` is just an identifier beginning with
/// `r`/`b`, leaving the caller to advance normally.
fn try_mask_prefixed_string(chars: &[char], out: &mut [char], start: usize) -> Option<usize> {
    let n = chars.len();
    let mut i = start + 1;
    if chars[start] == 'b' {
        if i < n && chars[i] == '\'' {
            return Some(mask_char_or_lifetime(chars, out, i));
        }
        if i < n && chars[i] == '"' {
            return Some(mask_plain_string(chars, out, i));
        }
        if i < n && chars[i] == 'r' {
            i += 1;
        } else {
            return None;
        }
    }
    // At this point we are past `r` / `br`; count `#`s then expect `"`.
    let hashes_start = i;
    while i < n && chars[i] == '#' {
        i += 1;
    }
    let hashes = i - hashes_start;
    if i >= n || chars[i] != '"' {
        return None;
    }
    i += 1; // past opening quote
    while i < n {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == '#')
                .count()
                == hashes
        {
            return Some(i + 1 + hashes);
        }
        if chars[i] != '\n' {
            out[i] = ' ';
        }
        i += 1;
    }
    Some(n)
}

/// Distinguishes `'a'` / `'\n'` char literals from `'a` lifetimes; masks the
/// former, leaves the latter untouched.
fn mask_char_or_lifetime(chars: &[char], out: &mut [char], start: usize) -> usize {
    let n = chars.len();
    if start + 1 >= n {
        return start + 1;
    }
    if chars[start + 1] == '\\' {
        // Escaped char literal: mask through the closing quote.
        let mut i = start + 1;
        while i < n && chars[i] != '\'' {
            out[i] = ' ';
            i += 1;
        }
        return (i + 1).min(n);
    }
    if start + 2 < n && chars[start + 2] == '\'' {
        out[start + 1] = ' ';
        return start + 3;
    }
    // Lifetime: leave as-is.
    start + 1
}

// ---------------------------------------------------------------------------
// Pragmas, positions, test regions
// ---------------------------------------------------------------------------

/// Inline allow pragmas: `// lint: allow(rule)` or `// lint: allow(a, b)`.
/// Keyed by 1-indexed line; a pragma covers its own line and the next.
fn collect_pragmas(src: &str) -> HashMap<usize, HashSet<String>> {
    let mut map: HashMap<usize, HashSet<String>> = HashMap::new();
    for (idx, raw) in src.lines().enumerate() {
        let Some(pos) = raw.find("// lint: allow(") else {
            continue;
        };
        let rest = &raw[pos + "// lint: allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let rules = map.entry(idx + 1).or_default();
        for rule in rest[..end].split(',') {
            rules.insert(rule.trim().to_string());
        }
    }
    map
}

fn allowed(pragmas: &HashMap<usize, HashSet<String>>, line: usize, rule: &str) -> bool {
    let hit = |l: usize| pragmas.get(&l).is_some_and(|s| s.contains(rule));
    hit(line) || (line > 1 && hit(line - 1))
}

/// Char-index → (1-indexed line, 1-indexed column).
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(chars: &[char]) -> Self {
        let mut starts = vec![0];
        for (i, &c) in chars.iter().enumerate() {
            if c == '\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    fn locate(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.starts[line] + 1)
    }
}

/// Char ranges covered by `#[cfg(test)]`-gated items (attribute through the
/// end of the following item, tracked brace-aware).
fn test_regions(masked: &[char]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    let n = masked.len();
    while i < n {
        if masked[i] != '#' || i + 1 >= n || masked[i + 1] != '[' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(masked, i + 1, '[', ']') else {
            break;
        };
        let attr: String = masked[i + 2..attr_end].iter().collect();
        let is_test_cfg = attr.trim_start().starts_with("cfg")
            && attr
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|w| w == "test");
        i = attr_end + 1;
        if !is_test_cfg {
            continue;
        }
        // Skip whitespace and any further attributes, then swallow the item:
        // it ends at the first top-level `;` or the close of its first block.
        let mut j = i;
        loop {
            while j < n && masked[j].is_whitespace() {
                j += 1;
            }
            if j + 1 < n && masked[j] == '#' && masked[j + 1] == '[' {
                match matching(masked, j + 1, '[', ']') {
                    Some(end) => j = end + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        let mut end = n;
        let mut k = j;
        while k < n {
            match masked[k] {
                ';' => {
                    end = k + 1;
                    break;
                }
                '{' => {
                    end = matching(masked, k, '{', '}').map_or(n, |e| e + 1);
                    break;
                }
                _ => k += 1,
            }
        }
        regions.push((attr_start, end));
        i = end;
    }
    regions
}

/// Index of the delimiter closing the `open` at `start`, honoring nesting.
fn matching(chars: &[char], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in chars.iter().enumerate().skip(start) {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Whole files outside library scope for the library-only rules: test and
/// bench trees, examples, and `src/bin/` CLI entrypoints (table-regeneration
/// binaries fail loudly by design — `main` is the top of the call stack).
fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.contains("/src/bin/")
        || rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.ends_with("build.rs")
}

// ---------------------------------------------------------------------------
// Rule scanners
// ---------------------------------------------------------------------------

fn lint_rust_source(rel: &str, src: &str) -> Vec<Finding> {
    let masked = mask_source(src);
    let index = LineIndex::new(&masked);
    let pragmas = collect_pragmas(src);
    let regions = test_regions(&masked);
    let file_is_test = is_test_path(rel);

    let mut findings = Vec::new();
    let mut push = |rule: &'static str, message: String, help: &'static str, offset: usize| {
        let (line, col) = index.locate(offset);
        if !allowed(&pragmas, line, rule) {
            findings.push(Finding {
                rule,
                message,
                path: rel.to_string(),
                line,
                col,
                help,
            });
        }
    };
    let library_code = |offset: usize| -> bool { !file_is_test && !in_regions(&regions, offset) };

    if !FACADE_PATHS.iter().any(|p| rel.starts_with(p)) {
        for (offset, name) in find_std_sync_locks(&masked) {
            if library_code(offset) {
                push(
                    "sync-facade",
                    format!("direct `std::sync::{name}` bypasses the workspace sync facade"),
                    "import the lock from the `parking_lot` shim so lock-order diagnostics cover this site",
                    offset,
                );
            }
        }
    }

    for offset in find_method_call(&masked, "unwrap", true)
        .into_iter()
        .chain(find_method_call(&masked, "expect", false))
    {
        if library_code(offset) {
            push(
                "no-unwrap",
                "`.unwrap()`/`.expect(..)` in non-test library code".to_string(),
                "return a typed error or recover; if the invariant truly holds, justify with `// lint: allow(no-unwrap)`",
                offset,
            );
        }
    }

    for needle in ["Instant::now", "SystemTime::now"] {
        for offset in find_token(&masked, needle) {
            if library_code(offset) {
                push(
                    "clock",
                    format!("raw `{needle}` outside an approved clock site"),
                    "thread a deadline/now parameter in from the caller, or approve the site with `// lint: allow(clock)`",
                    offset,
                );
            }
        }
    }

    for offset in find_money_eq(&masked, &index) {
        if library_code(offset) {
            push(
                "money-eq",
                "raw f64 equality on a money value".to_string(),
                "compare via `.to_bits()` (exact identity) or an explicit tolerance, never `==` on money f64s",
                offset,
            );
        }
    }

    findings
}

/// Occurrences of `std::sync::<Lock>` or a lock name inside a
/// `use std::sync::{...}` group. Returns (offset-of-lock-name, lock-name).
fn find_std_sync_locks(masked: &[char]) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = find_from(masked, "std::sync::", from) {
        from = pos + 1;
        if pos > 0 && is_ident(masked[pos - 1]) {
            continue; // e.g. `mystd::sync::`
        }
        let after = pos + "std::sync::".len();
        if after >= masked.len() {
            break;
        }
        if masked[after] == '{' {
            // Group import: flag each lock identifier inside the braces.
            let end = matching(masked, after, '{', '}').unwrap_or(masked.len());
            let mut i = after + 1;
            while i < end {
                if is_ident(masked[i]) && (i == 0 || !is_ident(masked[i - 1])) {
                    let start = i;
                    while i < end && is_ident(masked[i]) {
                        i += 1;
                    }
                    let word: String = masked[start..i].iter().collect();
                    if let Some(name) = FACADE_LOCKS.iter().find(|&&l| l == word) {
                        hits.push((start, *name));
                    }
                } else {
                    i += 1;
                }
            }
        } else {
            let start = after;
            let mut i = after;
            while i < masked.len() && is_ident(masked[i]) {
                i += 1;
            }
            let word: String = masked[start..i].iter().collect();
            if let Some(name) = FACADE_LOCKS.iter().find(|&&l| l == word) {
                hits.push((start, *name));
            }
        }
    }
    hits
}

/// Offsets of `.name()` (when `require_empty_args`) or `.name(` calls.
/// `.unwrap_or(..)` does not match `.unwrap` because the token is
/// boundary-checked.
fn find_method_call(masked: &[char], name: &str, require_empty_args: bool) -> Vec<usize> {
    let mut hits = Vec::new();
    let needle: Vec<char> = format!(".{name}").chars().collect();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let n = masked.len();
    let mut from = 0;
    while let Some(pos) = find_chars_from(masked, &needle, from) {
        from = pos + 1;
        let mut i = pos + needle.len();
        if i < n && is_ident(masked[i]) {
            continue; // `.unwrap_or`, `.expect_err`, ...
        }
        while i < n && masked[i].is_whitespace() {
            i += 1;
        }
        if i >= n || masked[i] != '(' {
            continue;
        }
        if require_empty_args {
            let mut j = i + 1;
            while j < n && masked[j].is_whitespace() {
                j += 1;
            }
            if j >= n || masked[j] != ')' {
                continue;
            }
        }
        hits.push(pos);
    }
    hits
}

/// Boundary-checked occurrences of a path token like `Instant::now`,
/// required to be followed by a call `(`.
fn find_token(masked: &[char], token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let needle: Vec<char> = token.chars().collect();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let n = masked.len();
    let mut from = 0;
    while let Some(pos) = find_chars_from(masked, &needle, from) {
        from = pos + 1;
        if pos > 0 && is_ident(masked[pos - 1]) {
            continue;
        }
        let mut i = pos + needle.len();
        if i < n && is_ident(masked[i]) {
            continue;
        }
        while i < n && masked[i].is_whitespace() {
            i += 1;
        }
        if i < n && masked[i] == '(' {
            hits.push(pos);
        }
    }
    hits
}

/// Lines where an `==`/`!=` operator shares a line with an identifier
/// containing `usd` and no `.to_bits(` call: money f64s must compare by bit
/// pattern or explicit tolerance.
fn find_money_eq(masked: &[char], index: &LineIndex) -> Vec<usize> {
    let mut hits = Vec::new();
    for (li, &start) in index.starts.iter().enumerate() {
        let end = index
            .starts
            .get(li + 1)
            .map_or(masked.len(), |&next| next - 1);
        let line: String = masked[start..end].iter().collect();
        let has_eq = line.char_indices().any(|(i, c)| {
            let bytes = line.as_bytes();
            let prev = i.checked_sub(1).map(|p| bytes[p] as char);
            let next2 = line[i..].chars().nth(2);
            match c {
                '=' if line[i..].starts_with("==") => {
                    !matches!(prev, Some('=' | '!' | '<' | '>')) && next2 != Some('=')
                }
                '!' if line[i..].starts_with("!=") => next2 != Some('='),
                _ => false,
            }
        });
        if !has_eq || line.contains(".to_bits(") {
            continue;
        }
        let mentions_money = line
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .any(|w| w.to_ascii_lowercase().contains("usd"));
        if mentions_money {
            // Anchor the finding at the first operator on the line.
            let op = line.find("==").or_else(|| line.find("!=")).unwrap_or(0);
            hits.push(start + line[..op].chars().count());
        }
    }
    hits
}

fn find_from(hay: &[char], needle: &str, from: usize) -> Option<usize> {
    let needle: Vec<char> = needle.chars().collect();
    find_chars_from(hay, &needle, from)
}

fn find_chars_from(hay: &[char], needle: &[char], from: usize) -> Option<usize> {
    if needle.is_empty() || hay.len() < needle.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| hay[i..i + needle.len()] == *needle)
}

// ---------------------------------------------------------------------------
// bench-keys
// ---------------------------------------------------------------------------

/// Every `"name": "<key>"` series in a `BENCH_*.json` baseline must appear in
/// `ci/check_bench_baselines.sh` — otherwise a renamed or added series
/// silently escapes the regression guard.
fn lint_bench_keys(root: &Path, jsons: &[PathBuf]) -> Result<Vec<Finding>, String> {
    if jsons.is_empty() {
        return Ok(Vec::new());
    }
    let guard = std::fs::read_to_string(root.join(BASELINE_GUARD)).unwrap_or_default();
    let mut findings = Vec::new();
    for rel in jsons {
        let rel_str = unix_path(rel);
        let text =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel_str}: {e}"))?;
        for (key, line, col) in bench_series_keys(&text) {
            if guard.is_empty() {
                findings.push(Finding {
                    rule: "bench-keys",
                    message: format!(
                        "bench series `{key}` has no baseline guard ({BASELINE_GUARD} missing)"
                    ),
                    path: rel_str.clone(),
                    line,
                    col,
                    help: "add the guard script and a `require` line for this series",
                });
            } else if !guard.contains(&key) {
                findings.push(Finding {
                    rule: "bench-keys",
                    message: format!("bench series `{key}` is not guarded by {BASELINE_GUARD}"),
                    path: rel_str.clone(),
                    line,
                    col,
                    help: "add this series to the guard script's `require` list so regressions fail CI",
                });
            }
        }
    }
    Ok(findings)
}

/// Extracts `"name": "<key>"` values with their 1-indexed positions.
fn bench_series_keys(text: &str) -> Vec<(String, usize, usize)> {
    let mut keys = Vec::new();
    for (li, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut consumed = 0;
        while let Some(pos) = rest.find("\"name\"") {
            let after = &rest[pos + "\"name\"".len()..];
            let trimmed = after.trim_start();
            if let Some(value) = trimmed.strip_prefix(':') {
                let value = value.trim_start();
                if let Some(stripped) = value.strip_prefix('"') {
                    if let Some(end) = stripped.find('"') {
                        keys.push((stripped[..end].to_string(), li + 1, consumed + pos + 1));
                    }
                }
            }
            consumed += pos + 1;
            rest = &rest[pos + 1..];
        }
    }
    keys
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn sync_facade_flags_direct_and_grouped_imports() {
        let src = "use std::sync::Mutex;\nuse std::sync::{Arc, RwLock};\n";
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec!["sync-facade", "sync-facade"]);
        assert_eq!((f[0].line, f[1].line), (1, 2));
    }

    #[test]
    fn sync_facade_ignores_arc_mpsc_and_facade_path() {
        let src = "use std::sync::{Arc, mpsc};\nuse std::sync::atomic::AtomicU64;\n";
        assert!(lint_rust_source("crates/core/src/x.rs", src).is_empty());
        let lock = "use std::sync::Mutex;\n";
        assert!(lint_rust_source("crates/shims/parking_lot/src/lib.rs", lock).is_empty());
    }

    #[test]
    fn no_unwrap_flags_unwrap_and_expect_but_not_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\nfn h(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec!["no-unwrap", "no-unwrap"]);
    }

    #[test]
    fn clock_flags_raw_now_calls() {
        let src = "fn t() { let a = Instant::now(); let b = std::time::SystemTime::now(); }\n";
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec!["clock", "clock"]);
    }

    #[test]
    fn money_eq_flags_raw_equality_but_not_bit_pattern() {
        let flagged = "fn c(a: f64, spend_usd: f64) -> bool { a == spend_usd }\n";
        assert_eq!(
            codes(&lint_rust_source("crates/core/src/x.rs", flagged)),
            vec!["money-eq"]
        );
        let ok = "fn c(a: f64, spend_usd: f64) -> bool { a.to_bits() == spend_usd.to_bits() }\n";
        assert!(lint_rust_source("crates/core/src/x.rs", ok).is_empty());
        let unrelated = "fn c(a: u64, b: u64) -> bool { a == b }\n";
        assert!(lint_rust_source("crates/core/src/x.rs", unrelated).is_empty());
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let same = "fn t() { let a = Instant::now(); } // lint: allow(clock)\n";
        assert!(lint_rust_source("crates/core/src/x.rs", same).is_empty());
        let next = "// lint: allow(clock) -- harness timing\nfn t() { let a = Instant::now(); }\n";
        assert!(lint_rust_source("crates/core/src/x.rs", next).is_empty());
        let wrong_rule = "fn t() { let a = Instant::now(); } // lint: allow(no-unwrap)\n";
        assert_eq!(
            codes(&lint_rust_source("crates/core/src/x.rs", wrong_rule)),
            vec!["clock"]
        );
    }

    #[test]
    fn masking_hides_strings_and_comments_from_rules() {
        let src = concat!(
            "// std::sync::Mutex in a comment\n",
            "/* Instant::now() in a block\n   comment */\n",
            "fn t() -> &'static str { \".unwrap() and std::sync::Mutex\" }\n",
            "fn r() -> &'static str { r#\"Instant::now()\"# }\n",
        );
        assert!(lint_rust_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_confuse_the_masker() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; q }\nfn g() { let _ = Instant::now(); }\n";
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec!["clock"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn cfg_test_items_and_test_paths_are_exempt() {
        let src = concat!(
            "fn lib() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { Some(1).unwrap(); let _ = Instant::now(); }\n",
            "}\n",
        );
        assert!(lint_rust_source("crates/core/src/x.rs", src).is_empty());
        let bad = "fn lib(x: Option<u8>) { x.unwrap(); }\n";
        assert!(lint_rust_source("crates/core/tests/t.rs", bad).is_empty());
        assert!(lint_rust_source("crates/bench/benches/b.rs", bad).is_empty());
        assert_eq!(
            codes(&lint_rust_source("crates/core/src/lib.rs", bad)),
            vec!["no-unwrap"]
        );
    }

    #[test]
    fn cfg_test_fn_item_is_exempt_but_following_code_is_not() {
        let src = concat!(
            "#[cfg(test)]\n",
            "fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n",
            "fn lib(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        let f = lint_rust_source("crates/core/src/x.rs", src);
        assert_eq!(codes(&f), vec!["no-unwrap"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn bench_keys_extracts_series_names() {
        let json = "[{\"name\":\"exec_cold\",\"ns\":1},\n {\"name\": \"exec_warm\", \"ns\": 2}]\n";
        let keys = bench_series_keys(json);
        assert_eq!(
            keys.iter().map(|(k, _, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["exec_cold", "exec_warm"]
        );
        assert_eq!(keys[0].1, 1);
        assert_eq!(keys[1].1, 2);
    }

    #[test]
    fn self_reacquire_of_rules_on_own_source_is_clean() {
        // Dogfood: repolint's own main.rs must pass its own rules.
        let src = include_str!("main.rs");
        let f = lint_rust_source("tools/repolint/src/main.rs", src);
        assert!(f.is_empty(), "repolint fails its own lints: {f:?}");
    }
}
