//! End-to-end negative tests: seed a synthetic repo with one violation of
//! every rule, run the real `repolint` binary over it, and assert each rule
//! fires with rustc-style positions — then prove the pragma escape hatch and
//! the clean-tree exit code. Finally, dogfood: the binary must run clean on
//! this repository itself (that is the CI invariant this tool exists for).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

struct TempRepo {
    root: PathBuf,
}

impl TempRepo {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("repolint-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create temp repo");
        TempRepo { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create parent dirs");
        }
        std::fs::write(path, contents).expect("write fixture");
    }
}

impl Drop for TempRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn run_repolint(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repolint"))
        .arg(root)
        .output()
        .expect("spawn repolint")
}

#[test]
fn seeded_violations_of_every_rule_fail_with_positions() {
    let repo = TempRepo::new("seeded");
    repo.write(
        "crates/core/src/bad_sync.rs",
        "use std::sync::Mutex;\nuse std::sync::{Arc, RwLock, Condvar};\n",
    );
    repo.write(
        "crates/core/src/bad_unwrap.rs",
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\npub fn g(x: Option<u8>) -> u8 { x.expect(\"set\") }\n",
    );
    repo.write(
        "crates/core/src/bad_clock.rs",
        "pub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    repo.write(
        "crates/core/src/bad_money.rs",
        "pub fn same(spend_usd: f64, budget_usd: f64) -> bool { spend_usd == budget_usd }\n",
    );
    repo.write(
        "BENCH_seeded.json",
        "[{\"name\":\"group/unguarded\",\"ns\":1}]\n",
    );
    repo.write("ci/check_bench_baselines.sh", "# no require lines\n");

    let out = run_repolint(&repo.root);
    assert_eq!(out.status.code(), Some(1), "seeded violations must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in [
        "error[sync-facade]",
        "error[no-unwrap]",
        "error[clock]",
        "error[money-eq]",
        "error[bench-keys]",
        "--> crates/core/src/bad_sync.rs:1:16",
        "--> crates/core/src/bad_clock.rs:1:47",
        "--> BENCH_seeded.json:1:3",
        "`group/unguarded` is not guarded",
    ] {
        assert!(stderr.contains(needle), "missing {needle:?} in:\n{stderr}");
    }
    // Three lock names across the two imports, two unwrap forms, one each of
    // the rest: 3 + 2 + 1 + 1 + 1.
    assert!(
        stderr.contains("8 finding(s)"),
        "unexpected total in:\n{stderr}"
    );
}

#[test]
fn pragmas_suppress_and_clean_tree_exits_zero() {
    let repo = TempRepo::new("clean");
    repo.write(
        "crates/core/src/lib.rs",
        concat!(
            "pub fn t() -> std::time::Instant {\n",
            "    std::time::Instant::now() // lint: allow(clock) — approved site\n",
            "}\n",
            "// lint: allow(no-unwrap) — invariant: caller checked\n",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn free_for_all() { None::<u8>.unwrap(); }\n",
            "}\n",
        ),
    );
    repo.write(
        "crates/core/tests/integration.rs",
        "fn t() { let _ = std::time::Instant::now(); Some(1).unwrap(); }\n",
    );
    let out = run_repolint(&repo.root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "expected clean, got:\n{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("repolint: clean"));
}

#[test]
fn this_repository_is_clean() {
    // The repo root is two levels above this crate's manifest dir. This is
    // the deny-by-default contract: adding an unjustified unwrap, raw clock
    // read, direct std::sync lock, raw money equality, or unguarded bench
    // series anywhere in the tree fails the test suite, not just the CI
    // lint job.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_repolint(&root);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "repolint findings:\n{stderr}");
}
